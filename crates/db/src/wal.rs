//! The write-ahead log: serialization, the log buffer, and group commit.
//!
//! The database log file is the paper's synchronous-write hot spot: "the
//! database log file is opened with the `O_SYNC` flag, so that each write
//! to the database log will be a synchronous one." Group commit is modeled
//! exactly as the paper does (§5.2): "log records in the log buffer are
//! forced to disk once the size of the log records exceeds the chosen log
//! buffer size" — Table 3 counts those forces.
//!
//! The engine writes each flushed chunk as a sequence of synchronous
//! writes of the configured granularity (see [`FlushJob`]); that
//! granularity is what makes large group-commit forces expensive on a
//! mechanical disk.

use trail_disk::SECTOR_SIZE;
use trail_sim::{Completion, SimDuration, SimTime};

/// When the log buffer is forced to disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Force at every transaction commit (no group commit).
    EveryCommit,
    /// Force when the buffered log records exceed `buffer_bytes` (the
    /// paper's group-commit simulation; Table 3 varies this knob).
    GroupCommit {
        /// The log-buffer size in bytes.
        buffer_bytes: usize,
    },
}

/// One logical WAL record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A row write.
    Put {
        /// Transaction id.
        txn: u32,
        /// Table id.
        table: u8,
        /// Row key.
        key: u64,
        /// Row image.
        value: Vec<u8>,
    },
    /// A row deletion.
    Delete {
        /// Transaction id.
        txn: u32,
        /// Table id.
        table: u8,
        /// Row key.
        key: u64,
    },
    /// Transaction commit.
    Commit {
        /// Transaction id.
        txn: u32,
    },
    /// Transaction abort.
    Abort {
        /// Transaction id.
        txn: u32,
    },
}

const REC_PUT: u8 = 1;
const REC_DELETE: u8 = 2;
const REC_COMMIT: u8 = 3;
const REC_ABORT: u8 = 4;

/// Magic number starting every flushed chunk.
pub const CHUNK_MAGIC: u32 = 0x5741_4C21; // "WAL!"
const CHUNK_HDR: usize = 16; // magic u32, chunk_seq u64, len u32

impl WalRecord {
    /// Appends the record's wire form (with `lsn`) to `out`.
    fn encode(&self, lsn: u64, out: &mut Vec<u8>) {
        out.extend_from_slice(&lsn.to_le_bytes());
        match self {
            WalRecord::Put {
                txn,
                table,
                key,
                value,
            } => {
                out.push(REC_PUT);
                out.extend_from_slice(&txn.to_le_bytes());
                out.push(*table);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                out.extend_from_slice(value);
            }
            WalRecord::Delete { txn, table, key } => {
                out.push(REC_DELETE);
                out.extend_from_slice(&txn.to_le_bytes());
                out.push(*table);
                out.extend_from_slice(&key.to_le_bytes());
            }
            WalRecord::Commit { txn } => {
                out.push(REC_COMMIT);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            WalRecord::Abort { txn } => {
                out.push(REC_ABORT);
                out.extend_from_slice(&txn.to_le_bytes());
            }
        }
    }

    /// Decodes one record from `buf`, returning it, its LSN, and the bytes
    /// consumed. Returns `None` on truncation or an unknown tag.
    pub fn decode(buf: &[u8]) -> Option<(u64, WalRecord, usize)> {
        if buf.len() < 9 {
            return None;
        }
        let lsn = u64::from_le_bytes(buf[0..8].try_into().expect("len checked"));
        let tag = buf[8];
        let rest = &buf[9..];
        match tag {
            REC_PUT => {
                if rest.len() < 17 {
                    return None;
                }
                let txn = u32::from_le_bytes(rest[0..4].try_into().expect("len"));
                let table = rest[4];
                let key = u64::from_le_bytes(rest[5..13].try_into().expect("len"));
                let vlen = u32::from_le_bytes(rest[13..17].try_into().expect("len")) as usize;
                if rest.len() < 17 + vlen {
                    return None;
                }
                Some((
                    lsn,
                    WalRecord::Put {
                        txn,
                        table,
                        key,
                        value: rest[17..17 + vlen].to_vec(),
                    },
                    9 + 17 + vlen,
                ))
            }
            REC_DELETE => {
                if rest.len() < 13 {
                    return None;
                }
                let txn = u32::from_le_bytes(rest[0..4].try_into().expect("len"));
                let table = rest[4];
                let key = u64::from_le_bytes(rest[5..13].try_into().expect("len"));
                Some((lsn, WalRecord::Delete { txn, table, key }, 9 + 13))
            }
            REC_COMMIT | REC_ABORT => {
                if rest.len() < 4 {
                    return None;
                }
                let txn = u32::from_le_bytes(rest[0..4].try_into().expect("len"));
                let rec = if tag == REC_COMMIT {
                    WalRecord::Commit { txn }
                } else {
                    WalRecord::Abort { txn }
                };
                Some((lsn, rec, 9 + 4))
            }
            _ => None,
        }
    }
}

/// A commit whose caller is waiting for durability.
pub struct PendingCommit {
    /// Transaction id.
    pub txn: u32,
    /// When the transaction started (for response-time accounting).
    pub started: SimTime,
    /// Delivered with the durability instant when the commit's records
    /// reach the disk; cancelled if the engine shuts down first.
    pub on_durable: Completion<SimTime>,
}

/// A flush the engine must now submit to the stack.
///
/// The engine writes `data` as a sequence of `write_granularity`-byte
/// synchronous writes, modeling Berkeley DB's flush loop: on a mechanical
/// disk each subsequent sequential O_SYNC write has just missed its
/// rotational window and pays nearly a full revolution — the paper's "I/O
/// clustering" effect, and the reason a 50-KB group-commit force costs
/// ~60 ms on the baseline (Table 2).
pub struct FlushJob {
    /// Absolute sector on the log device for the chunk write.
    pub lba: u64,
    /// Sector-padded chunk bytes.
    pub data: Vec<u8>,
    /// Commits that become durable when this flush completes.
    pub commits: Vec<PendingCommit>,
    /// When the flush was created.
    pub issued: SimTime,
}

/// WAL counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct WalStats {
    /// Synchronous log forces — the paper's "number of group commits"
    /// (Table 3).
    pub flushes: u64,
    /// Bytes of log chunks written (including sector padding).
    pub bytes_flushed: u64,
    /// Logical records appended.
    pub records: u64,
    /// Total wall time spent with a log flush outstanding — the paper's
    /// "Disk I/O Time for Logging" (Table 2).
    pub logging_io_time: SimDuration,
}

/// The write-ahead log state machine (the engine drives the actual I/O).
///
/// # Examples
///
/// ```
/// use trail_db::{FlushPolicy, Wal, WalRecord};
/// use trail_sim::{SimTime, Simulator};
///
/// let sim = Simulator::new();
/// let mut wal = Wal::new(0, 64, 100_000, FlushPolicy::EveryCommit);
/// wal.append(WalRecord::Put { txn: 1, table: 0, key: 9, value: vec![1, 2] });
/// wal.append(WalRecord::Commit { txn: 1 });
/// wal.register_commit(trail_db::PendingCommit {
///     txn: 1,
///     started: SimTime::ZERO,
///     on_durable: sim.completion(|_, _: trail_sim::Delivered<SimTime>| {}),
/// });
/// assert!(wal.wants_flush());
/// let job = wal.begin_flush(SimTime::ZERO, false).unwrap();
/// assert_eq!(job.commits.len(), 1);
/// ```
pub struct Wal {
    dev: usize,
    region_start: u64,
    capacity_sectors: u64,
    append_pos: u64,
    next_lsn: u64,
    chunk_seq: u64,
    /// Encoded records awaiting a force, in append order.
    pending: std::collections::VecDeque<Vec<u8>>,
    pending_bytes: usize,
    /// Cumulative bytes ever appended / flushed (durability watermark).
    appended_bytes: u64,
    flushed_bytes: u64,
    waiting: Vec<(u64, PendingCommit)>,
    flush_inflight: bool,
    policy: FlushPolicy,
    stats: WalStats,
}

impl Wal {
    /// Creates a WAL appending into `[region_start, region_start +
    /// capacity_sectors)` on device `dev`.
    pub fn new(dev: usize, region_start: u64, capacity_sectors: u64, policy: FlushPolicy) -> Self {
        Wal {
            dev,
            region_start,
            capacity_sectors,
            append_pos: 0,
            next_lsn: 0,
            chunk_seq: 0,
            pending: std::collections::VecDeque::new(),
            pending_bytes: 0,
            appended_bytes: 0,
            flushed_bytes: 0,
            waiting: Vec::new(),
            flush_inflight: false,
            policy,
            stats: WalStats::default(),
        }
    }

    /// The log device index.
    pub fn dev(&self) -> usize {
        self.dev
    }

    /// The flush policy in effect.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Counters so far.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Bytes currently buffered (not yet forced).
    pub fn buffered_bytes(&self) -> usize {
        self.pending_bytes
    }

    /// Commits currently waiting for a force.
    pub fn waiting_commits(&self) -> usize {
        self.waiting.len()
    }

    /// Whether a flush is outstanding.
    pub fn flush_inflight(&self) -> bool {
        self.flush_inflight
    }

    /// Appends a record to the log buffer, returning its LSN.
    pub fn append(&mut self, record: WalRecord) -> u64 {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let mut bytes = Vec::new();
        record.encode(lsn, &mut bytes);
        self.pending_bytes += bytes.len();
        self.appended_bytes += bytes.len() as u64;
        self.pending.push_back(bytes);
        self.stats.records += 1;
        lsn
    }

    /// Registers a commit awaiting durability of everything appended so
    /// far.
    pub fn register_commit(&mut self, commit: PendingCommit) {
        self.waiting.push((self.appended_bytes, commit));
    }

    /// Whether the commit that just appended must *block* until the next
    /// force completes: the force runs synchronously in the committing
    /// thread (as Berkeley DB's `log_write` does), so the triggering
    /// transaction cannot proceed. Unlike [`wants_flush`](Self::wants_flush)
    /// this ignores an in-flight force — the caller would queue behind it.
    pub fn commit_blocks_control(&self) -> bool {
        match self.policy {
            FlushPolicy::EveryCommit => true,
            FlushPolicy::GroupCommit { buffer_bytes } => self.pending_bytes >= buffer_bytes,
        }
    }

    /// Whether the policy calls for a force right now.
    pub fn wants_flush(&self) -> bool {
        if self.flush_inflight || self.pending.is_empty() {
            return false;
        }
        match self.policy {
            FlushPolicy::EveryCommit => !self.waiting.is_empty(),
            FlushPolicy::GroupCommit { buffer_bytes } => self.pending_bytes >= buffer_bytes,
        }
    }

    /// Drains (up to) one log buffer's worth of records into a
    /// [`FlushJob`]. Under group commit the physical log buffer holds only
    /// `buffer_bytes`, so one force writes at most that much (plus the
    /// record that crossed the boundary); the remainder waits for the next
    /// force — this is what makes a 4-KB buffer produce *more* forces than
    /// transactions in the paper's Table 3. `force_all` drains everything
    /// (end-of-run).
    ///
    /// Returns `None` if there is nothing to flush or a flush is already
    /// outstanding.
    ///
    /// # Panics
    ///
    /// Panics if the log file would wrap its region — the benches size the
    /// region so this never happens (see `DESIGN.md`).
    pub fn begin_flush(&mut self, now: SimTime, force_all: bool) -> Option<FlushJob> {
        if self.flush_inflight || self.pending.is_empty() {
            return None;
        }
        let cap = match (force_all, self.policy) {
            (true, _) | (_, FlushPolicy::EveryCommit) => usize::MAX,
            (false, FlushPolicy::GroupCommit { buffer_bytes }) => buffer_bytes,
        };
        let mut payload = Vec::new();
        while let Some(front) = self.pending.front() {
            if !payload.is_empty() && payload.len() + front.len() > cap {
                break;
            }
            let rec = self.pending.pop_front().expect("front observed");
            self.pending_bytes -= rec.len();
            payload.extend_from_slice(&rec);
            if payload.len() >= cap {
                break;
            }
        }
        let covers = self.flushed_bytes + payload.len() as u64;
        let mut data = Vec::with_capacity(CHUNK_HDR + payload.len() + SECTOR_SIZE);
        data.extend_from_slice(&CHUNK_MAGIC.to_le_bytes());
        data.extend_from_slice(&self.chunk_seq.to_le_bytes());
        data.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        data.extend_from_slice(&payload);
        let pad = (SECTOR_SIZE - data.len() % SECTOR_SIZE) % SECTOR_SIZE;
        data.resize(data.len() + pad, 0);
        let sectors = (data.len() / SECTOR_SIZE) as u64;
        assert!(
            self.append_pos + sectors <= self.capacity_sectors,
            "log file wrapped its region; enlarge the log device allocation"
        );
        let lba = self.region_start + self.append_pos;
        self.append_pos += sectors;
        self.chunk_seq += 1;
        self.flush_inflight = true;
        self.stats.flushes += 1;
        self.stats.bytes_flushed += data.len() as u64;
        // Commits whose records are fully inside this force become durable
        // with it; later commits keep waiting.
        let (ready, still): (Vec<_>, Vec<_>) = std::mem::take(&mut self.waiting)
            .into_iter()
            .partition(|(needs, _)| *needs <= covers);
        self.waiting = still;
        self.flushed_bytes = covers;
        Some(FlushJob {
            lba,
            data,
            commits: ready.into_iter().map(|(_, c)| c).collect(),
            issued: now,
        })
    }

    /// Marks the outstanding flush complete at `now`, accumulating the
    /// logging I/O time.
    ///
    /// # Panics
    ///
    /// Panics if no flush was outstanding.
    pub fn finish_flush(&mut self, now: SimTime, issued: SimTime) {
        assert!(self.flush_inflight, "finish_flush without begin_flush");
        self.flush_inflight = false;
        self.stats.logging_io_time += now.duration_since(issued);
    }

    /// Parses the records out of one chunk's bytes (as read from disk).
    ///
    /// Returns `None` if the chunk is invalid or its sequence number does
    /// not match `expected_seq`.
    pub fn parse_chunk(data: &[u8], expected_seq: u64) -> Option<(Vec<(u64, WalRecord)>, u64)> {
        if data.len() < CHUNK_HDR {
            return None;
        }
        let magic = u32::from_le_bytes(data[0..4].try_into().expect("len"));
        if magic != CHUNK_MAGIC {
            return None;
        }
        let seq = u64::from_le_bytes(data[4..12].try_into().expect("len"));
        if seq != expected_seq {
            return None;
        }
        let len = u32::from_le_bytes(data[12..16].try_into().expect("len")) as usize;
        if CHUNK_HDR + len > data.len() {
            return None;
        }
        let mut records = Vec::new();
        let mut off = CHUNK_HDR;
        let end = CHUNK_HDR + len;
        while off < end {
            let (lsn, rec, used) = WalRecord::decode(&data[off..end])?;
            records.push((lsn, rec));
            off += used;
        }
        let sectors = data.len().div_ceil(SECTOR_SIZE) as u64;
        Some((records, sectors))
    }

    /// The number of sectors a chunk of `payload_len` record bytes
    /// occupies on disk.
    pub fn chunk_sectors(payload_len: usize) -> u64 {
        (CHUNK_HDR + payload_len).div_ceil(SECTOR_SIZE) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_encode_decode_round_trip() {
        let records = [
            WalRecord::Put {
                txn: 7,
                table: 2,
                key: 0xDEAD_BEEF,
                value: vec![1, 2, 3, 4, 5],
            },
            WalRecord::Delete {
                txn: 7,
                table: 2,
                key: 42,
            },
            WalRecord::Commit { txn: 7 },
            WalRecord::Abort { txn: 8 },
        ];
        let mut buf = Vec::new();
        for (i, r) in records.iter().enumerate() {
            r.encode(i as u64, &mut buf);
        }
        let mut off = 0;
        for (i, expect) in records.iter().enumerate() {
            let (lsn, rec, used) = WalRecord::decode(&buf[off..]).expect("decodes");
            assert_eq!(lsn, i as u64);
            assert_eq!(&rec, expect);
            off += used;
        }
        assert_eq!(off, buf.len());
    }

    #[test]
    fn decode_rejects_truncation_and_garbage() {
        assert!(WalRecord::decode(&[]).is_none());
        assert!(WalRecord::decode(&[0; 8]).is_none());
        let mut buf = Vec::new();
        WalRecord::Put {
            txn: 1,
            table: 0,
            key: 1,
            value: vec![9; 100],
        }
        .encode(0, &mut buf);
        assert!(WalRecord::decode(&buf[..buf.len() - 1]).is_none());
        buf[8] = 200; // unknown tag
        assert!(WalRecord::decode(&buf).is_none());
    }

    fn noop_durable(sim: &trail_sim::Simulator) -> Completion<SimTime> {
        sim.completion(|_, _| {})
    }

    #[test]
    fn every_commit_policy_forces_immediately() {
        let sim = trail_sim::Simulator::new();
        let mut wal = Wal::new(0, 64, 1000, FlushPolicy::EveryCommit);
        wal.append(WalRecord::Put {
            txn: 1,
            table: 0,
            key: 1,
            value: vec![0; 10],
        });
        assert!(!wal.wants_flush(), "no waiting commit yet");
        wal.append(WalRecord::Commit { txn: 1 });
        wal.register_commit(PendingCommit {
            txn: 1,
            started: SimTime::ZERO,
            on_durable: noop_durable(&sim),
        });
        assert!(wal.wants_flush());
    }

    #[test]
    fn group_commit_waits_for_the_buffer_to_fill() {
        let sim = trail_sim::Simulator::new();
        let mut wal = Wal::new(0, 64, 1000, FlushPolicy::GroupCommit { buffer_bytes: 500 });
        for txn in 0..5u32 {
            wal.append(WalRecord::Put {
                txn,
                table: 0,
                key: u64::from(txn),
                value: vec![0; 50],
            });
            wal.append(WalRecord::Commit { txn });
            wal.register_commit(PendingCommit {
                txn,
                started: SimTime::ZERO,
                on_durable: noop_durable(&sim),
            });
        }
        // 5 × (~88 bytes) < 500: no force yet.
        assert!(!wal.wants_flush(), "buffered {}", wal.buffered_bytes());
        for txn in 5..10u32 {
            wal.append(WalRecord::Put {
                txn,
                table: 0,
                key: u64::from(txn),
                value: vec![0; 50],
            });
            wal.append(WalRecord::Commit { txn });
        }
        assert!(wal.wants_flush(), "buffered {}", wal.buffered_bytes());
    }

    #[test]
    fn flush_job_layout_and_chunk_parse() {
        let sim = trail_sim::Simulator::new();
        let mut wal = Wal::new(0, 64, 1000, FlushPolicy::EveryCommit);
        wal.append(WalRecord::Put {
            txn: 1,
            table: 3,
            key: 77,
            value: vec![0xAA; 600],
        });
        wal.append(WalRecord::Commit { txn: 1 });
        wal.register_commit(PendingCommit {
            txn: 1,
            started: SimTime::ZERO,
            on_durable: noop_durable(&sim),
        });
        let job = wal
            .begin_flush(SimTime::from_nanos(100), false)
            .expect("flushes");
        assert_eq!(job.lba, 64);
        assert_eq!(job.data.len() % SECTOR_SIZE, 0);
        assert_eq!(job.commits.len(), 1);
        assert!(wal.flush_inflight());
        assert!(wal.begin_flush(SimTime::from_nanos(101), false).is_none());
        let (records, sectors) = Wal::parse_chunk(&job.data, 0).expect("parses");
        assert_eq!(records.len(), 2);
        assert_eq!(sectors as usize * SECTOR_SIZE, job.data.len());
        wal.finish_flush(SimTime::from_nanos(2_100), job.issued);
        assert!(!wal.flush_inflight());
        assert_eq!(wal.stats().flushes, 1);
        assert_eq!(wal.stats().logging_io_time.as_nanos(), 2_000);
        // Second flush appends after the first chunk.
        wal.append(WalRecord::Commit { txn: 2 });
        wal.register_commit(PendingCommit {
            txn: 2,
            started: SimTime::ZERO,
            on_durable: noop_durable(&sim),
        });
        let job2 = wal
            .begin_flush(SimTime::from_nanos(3_000), false)
            .expect("flushes");
        assert_eq!(job2.lba, 64 + sectors);
        assert!(Wal::parse_chunk(&job2.data, 0).is_none(), "wrong seq");
        assert!(Wal::parse_chunk(&job2.data, 1).is_some());
    }

    #[test]
    #[should_panic(expected = "wrapped its region")]
    fn region_overflow_panics() {
        let sim = trail_sim::Simulator::new();
        let mut wal = Wal::new(0, 0, 1, FlushPolicy::EveryCommit);
        wal.append(WalRecord::Put {
            txn: 1,
            table: 0,
            key: 0,
            value: vec![0; 2000],
        });
        wal.register_commit(PendingCommit {
            txn: 1,
            started: SimTime::ZERO,
            on_durable: noop_durable(&sim),
        });
        let _ = wal.begin_flush(SimTime::ZERO, false);
    }
}
