//! The transaction engine: op-list transactions over a page cache, a WAL,
//! and a pluggable storage stack.
//!
//! Transactions are *op lists* (reads, then writes/deletes), the standard
//! simulation idiom: the TPC-C generator picks keys up front, and the
//! engine executes the ops asynchronously, suspending at every cache miss.
//! Commit follows the paper's logging discipline: log records accumulate
//! in the log buffer and are forced according to the [`FlushPolicy`]
//! (every commit, or group commit by buffer size). The transaction's
//! response time is measured to *durability* — under group commit that
//! includes waiting for the buffer to fill, which is exactly why the
//! paper's `EXT2+GC` shows a 0.90 s response time at 663 tpmC (Table 2).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use trail_blockio::IoDone;
use trail_core::TrailError;
use trail_disk::{Lba, SECTOR_SIZE};
use trail_sim::{Completion, Delivered, LatencySummary, SimDuration, SimTime, Simulator};
use trail_telemetry::{null_recorder, Event, EventKind, Layer, RecorderHandle};

use crate::cache::{BufferPool, CacheStats};
use crate::page::{Page, PageId, Rid, PAGE_SIZE, SECTORS_PER_PAGE};
use crate::stack::BlockStack;
use crate::wal::{FlushPolicy, PendingCommit, Wal, WalRecord, WalStats};

/// Identifies a table.
pub type TableId = u8;

/// One transaction operation.
#[derive(Clone, Debug)]
pub enum Op {
    /// Read the row at `(table, key)` (a missing key is counted and
    /// skipped).
    Read(TableId, u64),
    /// Insert or update the row at `(table, key)`.
    Write(TableId, u64, Vec<u8>),
    /// Delete the row at `(table, key)` (missing keys are skipped).
    Delete(TableId, u64),
}

/// A transaction to execute: CPU time plus an op list.
#[derive(Clone, Debug, Default)]
pub struct TxnSpec {
    /// CPU time charged before any I/O.
    pub cpu: SimDuration,
    /// Operations, executed in order.
    pub ops: Vec<Op>,
}

/// The completion record of a durable transaction.
#[derive(Clone, Copy, Debug)]
pub struct TxnResult {
    /// Transaction id.
    pub txn: u32,
    /// When the transaction started.
    pub started: SimTime,
    /// When its commit record became durable.
    pub durable_at: SimTime,
}

impl TxnResult {
    /// Response time: start to durability.
    pub fn response(&self) -> SimDuration {
        self.durable_at.duration_since(self.started)
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct DbConfig {
    /// Buffer-pool capacity in pages.
    pub cache_pages: usize,
    /// Log-force policy.
    pub flush_policy: FlushPolicy,
    /// Device index carrying the log file.
    pub log_dev: usize,
    /// First sector of the log file's data region.
    pub log_region_start: Lba,
    /// Size of the log region in sectors.
    pub log_region_sectors: u64,
    /// Each log force is issued as synchronous writes of at most this many
    /// bytes (Berkeley DB's flush loop writes the buffer in pieces; on a
    /// mechanical disk each subsequent sequential piece pays nearly a full
    /// rotation — the paper's "I/O clustering" effect).
    pub flush_write_bytes: usize,
    /// Devices carrying table pages (must not include `log_dev`).
    pub table_devices: Vec<usize>,
    /// Background page flushing starts above this many dirty pages.
    pub dirty_high_watermark: usize,
    /// Pages flushed per background batch.
    pub flush_batch: usize,
    /// Log the before-image of updated rows as well (undo + redo, as
    /// Berkeley DB does); roughly doubles the log volume of updates,
    /// which is what makes the paper's Table 3 group-commit counts line
    /// up (~4.4 KB of log per TPC-C transaction).
    pub log_before_images: bool,
    /// Model CPU as a single serially-shared resource (the paper's
    /// testbed has one 300-MHz Pentium II): concurrent transactions'
    /// CPU bursts queue instead of overlapping. `false` lets CPU time
    /// overlap freely (an idealized SMP).
    pub single_cpu: bool,
}

impl DbConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on an empty table-device list, a table device equal to the
    /// log device, or a zero cache.
    pub fn validate(&self) {
        assert!(self.cache_pages > 0, "cache must hold at least one page");
        assert!(
            !self.table_devices.is_empty(),
            "need at least one table device"
        );
        assert!(
            !self.table_devices.contains(&self.log_dev),
            "the log device is dedicated (paper: one disk for logging)"
        );
        assert!(self.flush_batch > 0, "flush batch must be positive");
        assert!(
            self.flush_write_bytes >= SECTOR_SIZE,
            "flush write granularity must be at least one sector"
        );
    }
}

/// Engine counters.
#[derive(Clone, Debug, Default)]
pub struct DbStats {
    /// Transactions made durable.
    pub committed: u64,
    /// Response times (start → durable).
    pub response: LatencySummary,
    /// Reads of keys that do not exist.
    pub missing_reads: u64,
    /// Background page write-backs issued.
    pub page_flushes: u64,
    /// Data-page reads issued to the stack (cache misses).
    pub page_reads: u64,
}

struct TxnCtx {
    txn: u32,
    started: SimTime,
    ops: Vec<Op>,
    pos: usize,
    on_durable: Completion<TxnResult>,
}

struct DbInner {
    stack: Rc<dyn BlockStack>,
    config: DbConfig,
    wal: Wal,
    cache: BufferPool,
    index: HashMap<(TableId, u64), Rid>,
    open_page: HashMap<TableId, PageId>,
    next_page: HashMap<usize, u64>,
    /// Pages with an in-flight write-back; reads are served from these
    /// copies so a racing disk read cannot observe stale bytes.
    flushing: HashMap<PageId, Vec<u8>>,
    /// Control tokens of commits that triggered a force and therefore
    /// block until the next force completes.
    control_waiters: Vec<Completion<()>>,
    flusher_active: bool,
    next_txn: u32,
    active_txns: usize,
    /// When the (single) CPU frees up; only consulted under `single_cpu`.
    cpu_free_at: SimTime,
    stats: DbStats,
    recorder: RecorderHandle,
}

enum StepOutcome {
    /// Suspend: fetch this page, then resume the transaction.
    NeedPage(PageId),
    /// All ops applied and the commit record is buffered.
    Committed,
}

/// The database engine. Clones share the engine.
///
/// # Examples
///
/// See the `database_logging` example and the crate tests; the engine
/// needs a simulated storage stack, which makes an inline doc example
/// unhelpfully long.
#[derive(Clone)]
pub struct Database {
    inner: Rc<RefCell<DbInner>>,
}

impl Database {
    /// Creates an engine over `stack`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn new(stack: Rc<dyn BlockStack>, config: DbConfig) -> Self {
        config.validate();
        let wal = Wal::new(
            config.log_dev,
            config.log_region_start,
            config.log_region_sectors,
            config.flush_policy,
        );
        let cache = BufferPool::new(config.cache_pages);
        let next_page = config.table_devices.iter().map(|&d| (d, 0u64)).collect();
        Database {
            inner: Rc::new(RefCell::new(DbInner {
                stack,
                config,
                wal,
                cache,
                index: HashMap::new(),
                open_page: HashMap::new(),
                next_page,
                flushing: HashMap::new(),
                control_waiters: Vec::new(),
                flusher_active: false,
                next_txn: 0,
                active_txns: 0,
                cpu_free_at: SimTime::ZERO,
                stats: DbStats::default(),
                recorder: null_recorder(),
            })),
        }
    }

    /// Engine counters.
    pub fn with_stats<R>(&self, f: impl FnOnce(&DbStats) -> R) -> R {
        f(&self.inner.borrow().stats)
    }

    /// Attaches a telemetry recorder, cascading to the storage stack
    /// below (and through it, every driver and disk).
    pub fn set_recorder(&self, recorder: RecorderHandle) {
        let mut d = self.inner.borrow_mut();
        d.stack.set_recorder(Rc::clone(&recorder));
        d.recorder = recorder;
    }

    /// Records a db-layer event.
    fn emit(&self, at: SimTime, dur: SimDuration, kind: EventKind) {
        let recorder = {
            let d = self.inner.borrow();
            if !d.recorder.enabled() {
                return;
            }
            Rc::clone(&d.recorder)
        };
        recorder.record(Event {
            at,
            dur,
            layer: Layer::Db,
            source: "wal".to_string(),
            req: None,
            kind,
        });
    }

    /// WAL counters (group commits, logging I/O time).
    pub fn wal_stats(&self) -> WalStats {
        self.inner.borrow().wal.stats()
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.borrow().cache.stats()
    }

    /// Rows currently indexed.
    pub fn row_count(&self) -> usize {
        self.inner.borrow().index.len()
    }

    /// Transactions in flight (executing or awaiting durability).
    pub fn active_txns(&self) -> usize {
        self.inner.borrow().active_txns
    }

    /// Bulk-loads rows without timing (the "restore from backup" path used
    /// to populate benchmarks). Returns the page images the caller must
    /// place onto the devices (e.g. via [`trail_disk::Disk::poke_sector`]).
    ///
    /// # Panics
    ///
    /// Panics if a row is too large for a page.
    pub fn load(
        &self,
        table: TableId,
        rows: impl IntoIterator<Item = (u64, Vec<u8>)>,
    ) -> Vec<(PageId, Vec<u8>)> {
        let mut d = self.inner.borrow_mut();
        let dev = d.table_device(table);
        let mut images: Vec<(PageId, Page)> = Vec::new();
        let mut current: Option<(PageId, Page)> = None;
        for (key, value) in rows {
            loop {
                if current.is_none() {
                    let page_no = d.next_page.get_mut(&dev).expect("device registered");
                    let pid = PageId {
                        dev: dev as u8,
                        page_no: *page_no,
                    };
                    *page_no += 1;
                    current = Some((pid, Page::new()));
                }
                let (pid, page) = current.as_mut().expect("just ensured");
                if let Some(slot) = page.insert(&value) {
                    d.index.insert((table, key), Rid { page: *pid, slot });
                    break;
                }
                images.push(current.take().expect("full page"));
            }
        }
        if let Some(last) = current.take() {
            d.open_page.insert(table, last.0);
            images.push(last);
        }
        images
            .into_iter()
            .map(|(pid, p)| (pid, p.as_bytes().to_vec()))
            .collect()
    }

    /// Pre-warms the cache with a loaded page image. Silently does nothing
    /// once the cache is full (warming never evicts).
    pub fn warm(&self, pid: PageId, bytes: &[u8]) {
        let mut d = self.inner.borrow_mut();
        if d.cache.resident() >= d.cache.capacity() || d.cache.contains(pid) {
            return;
        }
        d.cache.insert(pid, Page::from_bytes(bytes));
    }

    /// Executes a transaction. `on_control` is delivered when the engine
    /// has finished processing it (commit record buffered — the moment a
    /// closed-loop client may submit its next transaction under group
    /// commit); `on_durable` is delivered when the commit is forced to
    /// disk. Both tokens are cancelled if the run tears down first.
    ///
    /// # Errors
    ///
    /// This call itself never fails; the `Result` is reserved for parity
    /// with the storage API and future admission control.
    pub fn execute(
        &self,
        sim: &mut Simulator,
        spec: TxnSpec,
        on_control: Completion<()>,
        on_durable: Completion<TxnResult>,
    ) -> Result<u32, TrailError> {
        let (txn, cpu_done_at) = {
            let mut d = self.inner.borrow_mut();
            let txn = d.next_txn;
            d.next_txn += 1;
            d.active_txns += 1;
            let done_at = if d.config.single_cpu {
                // One CPU: this transaction's burst queues behind whatever
                // is already scheduled on it.
                let start = d.cpu_free_at.max(sim.now());
                d.cpu_free_at = start + spec.cpu;
                d.cpu_free_at
            } else {
                sim.now() + spec.cpu
            };
            (txn, done_at)
        };
        let ctx = TxnCtx {
            txn,
            started: sim.now(),
            ops: spec.ops,
            pos: 0,
            on_durable,
        };
        let db = self.clone();
        let mut on_control = Some(on_control);
        sim.schedule_at(cpu_done_at, move |sim| {
            db.advance(sim, ctx, on_control.take().expect("fires once"));
        });
        Ok(txn)
    }

    /// Drives a transaction forward until it suspends on a page read or
    /// commits.
    fn advance(&self, sim: &mut Simulator, mut ctx: TxnCtx, on_control: Completion<()>) {
        let mut evict_writes: Vec<(PageId, Vec<u8>)> = Vec::new();
        let outcome = {
            let mut d = self.inner.borrow_mut();
            d.step_ops(&mut ctx, &mut evict_writes)
        };
        for (pid, bytes) in evict_writes {
            self.write_page(sim, pid, bytes);
        }
        match outcome {
            StepOutcome::NeedPage(pid) => {
                // Serve from an in-flight write-back copy if present.
                let from_flushing = {
                    let d = self.inner.borrow();
                    d.flushing.get(&pid).cloned()
                };
                match from_flushing {
                    Some(bytes) => {
                        let mut more_evictions = Vec::new();
                        {
                            let mut d = self.inner.borrow_mut();
                            if !d.cache.contains(pid) {
                                if let Some((vid, vbytes, dirty)) =
                                    d.cache.insert(pid, Page::from_bytes(&bytes))
                                {
                                    if dirty {
                                        more_evictions.push((vid, vbytes));
                                    }
                                }
                            }
                        }
                        for (vid, vbytes) in more_evictions {
                            self.write_page(sim, vid, vbytes);
                        }
                        self.advance(sim, ctx, on_control);
                    }
                    None => {
                        let db = self.clone();
                        let (stack, lba) = {
                            let mut d = self.inner.borrow_mut();
                            d.stats.page_reads += 1;
                            (Rc::clone(&d.stack), pid.first_lba())
                        };
                        let done = sim.completion(move |sim, d: Delivered<IoDone>| {
                            // A cancelled read (teardown) drops the txn
                            // context, cascade-cancelling its tokens.
                            let Ok(done) = d else { return };
                            let bytes = done.data.expect("page read returns data");
                            let mut evictions = Vec::new();
                            {
                                let mut d = db.inner.borrow_mut();
                                if !d.cache.contains(pid) {
                                    if let Some((vid, vbytes, dirty)) =
                                        d.cache.insert(pid, Page::from_bytes(&bytes))
                                    {
                                        if dirty {
                                            evictions.push((vid, vbytes));
                                        }
                                    }
                                }
                            }
                            for (vid, vbytes) in evictions {
                                db.write_page(sim, vid, vbytes);
                            }
                            db.advance(sim, ctx, on_control);
                        });
                        stack
                            .read(sim, pid.dev as usize, lba, SECTORS_PER_PAGE, done)
                            .expect("page read within device bounds");
                    }
                }
            }
            StepOutcome::Committed => {
                let deferred_control = {
                    let mut d = self.inner.borrow_mut();
                    let blocks_control = d.wal.commit_blocks_control();
                    let db = self.clone();
                    let user_done = ctx.on_durable;
                    let txn = ctx.txn;
                    let started = ctx.started;
                    let on_durable = sim.completion(move |sim, del: Delivered<SimTime>| {
                        let Ok(durable_at) = del else {
                            // Teardown before the force: cascade the
                            // cancellation to the submitter's token.
                            user_done.cancel(sim);
                            return;
                        };
                        let result = TxnResult {
                            txn,
                            started,
                            durable_at,
                        };
                        {
                            let mut d = db.inner.borrow_mut();
                            d.stats.committed += 1;
                            d.stats.response.record(result.response());
                            d.active_txns -= 1;
                        }
                        user_done.complete(sim, result);
                    });
                    d.wal.register_commit(PendingCommit {
                        txn,
                        started,
                        on_durable,
                    });
                    if blocks_control {
                        // This commit triggered a force: it runs the force
                        // synchronously (as Berkeley DB's log_write does),
                        // so its caller blocks until the force completes.
                        d.control_waiters.push(on_control);
                        None
                    } else {
                        Some(on_control)
                    }
                };
                if let Some(token) = deferred_control {
                    token.complete(sim, ());
                }
                self.maybe_flush_wal(sim);
                self.maybe_flush_pages(sim);
            }
        }
    }

    /// Issues a page write-back, tracking it for read consistency.
    fn write_page(&self, sim: &mut Simulator, pid: PageId, bytes: Vec<u8>) {
        let stack = {
            let mut d = self.inner.borrow_mut();
            d.flushing.insert(pid, bytes.clone());
            d.stats.page_flushes += 1;
            Rc::clone(&d.stack)
        };
        let db = self.clone();
        let done = sim.completion(move |sim, d: Delivered<IoDone>| {
            {
                let mut inner = db.inner.borrow_mut();
                inner.flushing.remove(&pid);
            }
            if d.is_ok() {
                db.maybe_flush_pages(sim);
            }
        });
        stack
            .write(sim, pid.dev as usize, pid.first_lba(), bytes, done)
            .expect("page write within device bounds");
    }

    /// Forces the WAL if the policy calls for it.
    fn maybe_flush_wal(&self, sim: &mut Simulator) {
        let job = {
            let mut d = self.inner.borrow_mut();
            if !d.wal.wants_flush() {
                return;
            }
            d.wal.begin_flush(sim.now(), false)
        };
        let Some(job) = job else { return };
        self.submit_flush(sim, job);
    }

    /// Forces whatever is buffered regardless of policy (used to drain at
    /// the end of a run so the last group's commits become durable).
    pub fn force_log(&self, sim: &mut Simulator) {
        let job = {
            let mut d = self.inner.borrow_mut();
            d.wal.begin_flush(sim.now(), true)
        };
        if let Some(job) = job {
            self.submit_flush(sim, job);
        }
    }

    /// Writes a flush job as a chain of `flush_write_bytes`-sized
    /// synchronous writes (Berkeley DB's flush loop). On the baseline
    /// stack each subsequent sequential O_SYNC write has just missed its
    /// rotational window and pays nearly a full revolution; on Trail each
    /// piece costs only transfer + command overhead.
    fn submit_flush(&self, sim: &mut Simulator, job: crate::wal::FlushJob) {
        let granularity = {
            let d = self.inner.borrow();
            let g = d.config.flush_write_bytes;
            g - g % SECTOR_SIZE
        };
        let pieces: Vec<(u64, Vec<u8>)> = job
            .data
            .chunks(granularity)
            .scan(job.lba, |lba, chunk| {
                let this = *lba;
                *lba += (chunk.len() / SECTOR_SIZE) as u64;
                Some((this, chunk.to_vec()))
            })
            .collect();
        self.write_flush_pieces(sim, pieces, 0, job.commits, job.issued);
    }

    fn write_flush_pieces(
        &self,
        sim: &mut Simulator,
        pieces: Vec<(u64, Vec<u8>)>,
        next: usize,
        commits: Vec<PendingCommit>,
        issued: SimTime,
    ) {
        if next >= pieces.len() {
            let durable_at = sim.now();
            let waiters = {
                let mut d = self.inner.borrow_mut();
                d.wal.finish_flush(durable_at, issued);
                std::mem::take(&mut d.control_waiters)
            };
            let flushed_bytes: usize = pieces.iter().map(|(_, data)| data.len()).sum();
            self.emit(
                issued,
                durable_at.duration_since(issued),
                EventKind::WalForce {
                    bytes: flushed_bytes as u64,
                },
            );
            self.emit(
                durable_at,
                SimDuration::ZERO,
                EventKind::GroupCommit {
                    group: commits.len() as u32,
                },
            );
            for c in commits {
                self.emit(
                    durable_at,
                    SimDuration::ZERO,
                    EventKind::TxnCommit {
                        txn: u64::from(c.txn),
                    },
                );
                c.on_durable.complete(sim, durable_at);
            }
            // Commits that blocked on this force resume.
            for w in waiters {
                w.complete(sim, ());
            }
            // More commits may have buffered meanwhile.
            self.maybe_flush_wal(sim);
            return;
        }
        let (stack, dev) = {
            let d = self.inner.borrow();
            (Rc::clone(&d.stack), d.wal.dev())
        };
        let (lba, data) = pieces[next].clone();
        let db = self.clone();
        let done = sim.completion(move |sim, d: Delivered<IoDone>| {
            // A cancelled piece (teardown) drops the pending commits,
            // cascade-cancelling their durability tokens.
            if d.is_ok() {
                db.write_flush_pieces(sim, pieces, next + 1, commits, issued);
            }
        });
        stack
            .write(sim, dev, lba, data, done)
            .expect("log chunk write within device bounds");
    }

    /// Starts a background dirty-page flush batch when above the
    /// high-watermark.
    fn maybe_flush_pages(&self, sim: &mut Simulator) {
        let batch = {
            let mut d = self.inner.borrow_mut();
            if d.flusher_active || d.cache.dirty_pages() <= d.config.dirty_high_watermark {
                return;
            }
            d.flusher_active = true;
            let n = d.config.flush_batch;
            d.cache.take_dirty_batch(n)
        };
        if batch.is_empty() {
            self.inner.borrow_mut().flusher_active = false;
            return;
        }
        // Track batch completion to re-check the watermark.
        let remaining = Rc::new(std::cell::Cell::new(batch.len()));
        for (pid, bytes) in batch {
            let db = self.clone();
            let remaining = Rc::clone(&remaining);
            let stack = {
                let mut d = self.inner.borrow_mut();
                d.flushing.insert(pid, bytes.clone());
                d.stats.page_flushes += 1;
                Rc::clone(&d.stack)
            };
            let done = sim.completion(move |sim, d: Delivered<IoDone>| {
                {
                    let mut inner = db.inner.borrow_mut();
                    inner.flushing.remove(&pid);
                }
                remaining.set(remaining.get() - 1);
                if remaining.get() == 0 {
                    db.inner.borrow_mut().flusher_active = false;
                    if d.is_ok() {
                        db.maybe_flush_pages(sim);
                    }
                }
            });
            stack
                .write(sim, pid.dev as usize, pid.first_lba(), bytes, done)
                .expect("page write within device bounds");
        }
    }

    /// Flushes every dirty page (end-of-run checkpoint).
    pub fn flush_all_pages(&self, sim: &mut Simulator) {
        let batch = {
            let mut d = self.inner.borrow_mut();
            let n = d.cache.dirty_pages();
            d.cache.take_dirty_batch(n)
        };
        for (pid, bytes) in batch {
            self.write_page(sim, pid, bytes);
        }
    }

    /// Work outstanding anywhere in the engine or the stack below it.
    pub fn pending_work(&self) -> usize {
        let d = self.inner.borrow();
        d.active_txns
            + usize::from(d.wal.flush_inflight())
            + d.flushing.len()
            + d.stack.pending_work()
    }

    /// Runs the simulation until all transactions are durable and all
    /// write-backs have drained, forcing the final partial log group.
    ///
    /// # Panics
    ///
    /// Panics if the event queue drains while work remains (an engine
    /// bug).
    pub fn run_until_quiescent(&self, sim: &mut Simulator) {
        loop {
            if self.pending_work() == 0 {
                let buffered = self.inner.borrow().wal.buffered_bytes();
                if buffered > 0 {
                    self.force_log(sim);
                    continue;
                }
                // Completion delivery is deferred: queued handlers may
                // still fire (and may submit new transactions).
                if sim.step() {
                    continue;
                }
                break;
            }
            if !sim.step() {
                // No events but commits may be parked in a partial group.
                let buffered = self.inner.borrow().wal.buffered_bytes();
                assert!(buffered > 0, "event queue empty with work pending");
                self.force_log(sim);
            }
        }
    }

    /// Reads a row's current value directly from engine state (index +
    /// cache + in-flight copies), bypassing timing — for test assertions.
    pub fn peek_row(&self, table: TableId, key: u64) -> Option<Vec<u8>> {
        let mut d = self.inner.borrow_mut();
        let rid = *d.index.get(&(table, key))?;
        if let Some(page) = d.cache.get_mut(rid.page) {
            return page.get(rid.slot).map(<[u8]>::to_vec);
        }
        if let Some(bytes) = d.flushing.get(&rid.page) {
            return Page::from_bytes(bytes).get(rid.slot).map(<[u8]>::to_vec);
        }
        None
    }
}

impl DbInner {
    fn table_device(&self, table: TableId) -> usize {
        self.config.table_devices[table as usize % self.config.table_devices.len()]
    }

    /// Processes ops until a page miss or completion. Dirty evictions are
    /// pushed to `evict_writes` for the caller to submit.
    fn step_ops(
        &mut self,
        ctx: &mut TxnCtx,
        evict_writes: &mut Vec<(PageId, Vec<u8>)>,
    ) -> StepOutcome {
        while ctx.pos < ctx.ops.len() {
            let op = ctx.ops[ctx.pos].clone();
            match op {
                Op::Read(table, key) => {
                    match self.index.get(&(table, key)).copied() {
                        None => {
                            self.stats.missing_reads += 1;
                        }
                        Some(rid) => {
                            if self.cache.get_mut(rid.page).is_none()
                                && !self.flushing.contains_key(&rid.page)
                            {
                                return StepOutcome::NeedPage(rid.page);
                            }
                            if !self.cache.contains(rid.page) {
                                // Re-admit the in-flight copy so repeated
                                // reads stay hits.
                                let bytes = self.flushing[&rid.page].clone();
                                if let Some((vid, vbytes, dirty)) =
                                    self.cache.insert(rid.page, Page::from_bytes(&bytes))
                                {
                                    if dirty {
                                        evict_writes.push((vid, vbytes));
                                    }
                                }
                            }
                        }
                    }
                    ctx.pos += 1;
                }
                Op::Write(table, key, value) => {
                    match self.index.get(&(table, key)).copied() {
                        Some(rid) => {
                            if !self.cache.contains(rid.page) {
                                if let Some(bytes) = self.flushing.get(&rid.page).cloned() {
                                    if let Some((vid, vbytes, dirty)) =
                                        self.cache.insert(rid.page, Page::from_bytes(&bytes))
                                    {
                                        if dirty {
                                            evict_writes.push((vid, vbytes));
                                        }
                                    }
                                } else {
                                    return StepOutcome::NeedPage(rid.page);
                                }
                            }
                            if self.config.log_before_images {
                                let before = self
                                    .cache
                                    .get_mut(rid.page)
                                    .expect("just ensured resident")
                                    .get(rid.slot)
                                    .map(<[u8]>::to_vec)
                                    .unwrap_or_default();
                                if !before.is_empty() {
                                    self.wal.append(WalRecord::Put {
                                        txn: ctx.txn,
                                        table,
                                        key,
                                        value: before,
                                    });
                                }
                            }
                            let updated = self
                                .cache
                                .get_mut(rid.page)
                                .expect("just ensured resident")
                                .update(rid.slot, &value);
                            if updated {
                                self.cache.mark_dirty(rid.page);
                            } else {
                                // Grew past its slot: delete + reinsert.
                                self.cache
                                    .get_mut(rid.page)
                                    .expect("resident")
                                    .delete(rid.slot);
                                self.cache.mark_dirty(rid.page);
                                self.insert_new(table, key, &value, evict_writes);
                            }
                        }
                        None => {
                            self.insert_new(table, key, &value, evict_writes);
                        }
                    }
                    self.wal.append(WalRecord::Put {
                        txn: ctx.txn,
                        table,
                        key,
                        value,
                    });
                    ctx.pos += 1;
                }
                Op::Delete(table, key) => {
                    if let Some(rid) = self.index.get(&(table, key)).copied() {
                        if !self.cache.contains(rid.page) {
                            if let Some(bytes) = self.flushing.get(&rid.page).cloned() {
                                if let Some((vid, vbytes, dirty)) =
                                    self.cache.insert(rid.page, Page::from_bytes(&bytes))
                                {
                                    if dirty {
                                        evict_writes.push((vid, vbytes));
                                    }
                                }
                            } else {
                                return StepOutcome::NeedPage(rid.page);
                            }
                        }
                        self.cache
                            .get_mut(rid.page)
                            .expect("resident")
                            .delete(rid.slot);
                        self.cache.mark_dirty(rid.page);
                        self.index.remove(&(table, key));
                        self.wal.append(WalRecord::Delete {
                            txn: ctx.txn,
                            table,
                            key,
                        });
                    }
                    ctx.pos += 1;
                }
            }
        }
        self.wal.append(WalRecord::Commit { txn: ctx.txn });
        StepOutcome::Committed
    }

    /// Inserts a fresh row into the table's open page, allocating pages as
    /// needed (fresh pages never require a disk read).
    fn insert_new(
        &mut self,
        table: TableId,
        key: u64,
        value: &[u8],
        evict_writes: &mut Vec<(PageId, Vec<u8>)>,
    ) {
        assert!(
            value.len() <= PAGE_SIZE - 8,
            "row of {} bytes exceeds a page",
            value.len()
        );
        loop {
            let open = self.open_page.get(&table).copied();
            if let Some(pid) = open {
                if self.cache.contains(pid) {
                    let slot = self
                        .cache
                        .get_mut(pid)
                        .expect("checked resident")
                        .insert(value);
                    if let Some(slot) = slot {
                        self.cache.mark_dirty(pid);
                        self.index.insert((table, key), Rid { page: pid, slot });
                        return;
                    }
                    // Page full: fall through to allocate a fresh one.
                }
            }
            let dev = self.table_device(table);
            let page_no = self.next_page.get_mut(&dev).expect("device registered");
            let pid = PageId {
                dev: dev as u8,
                page_no: *page_no,
            };
            *page_no += 1;
            if let Some((vid, vbytes, dirty)) = self.cache.insert(pid, Page::new()) {
                if dirty {
                    evict_writes.push((vid, vbytes));
                }
            }
            self.open_page.insert(table, pid);
        }
    }
}
