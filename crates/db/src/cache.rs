//! The buffer pool: a clock-eviction page cache.
//!
//! The paper's testbed gives Berkeley DB a 300-MByte cache over a ~1-GByte
//! database; the reproduction keeps the same cache:database *ratio* at a
//! reduced scale (see `EXPERIMENTS.md`). Misses and dirty write-backs are
//! what generate the data-disk traffic whose scheduling Trail improves.

use std::collections::HashMap;

use crate::page::{Page, PageId};

/// Cache counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Lookups that found the page resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Evicted pages that were dirty (had to be written out).
    pub dirty_evictions: u64,
}

struct Frame {
    id: PageId,
    page: Page,
    dirty: bool,
    referenced: bool,
}

/// A fixed-capacity page cache with clock (second-chance) eviction.
///
/// # Examples
///
/// ```
/// use trail_db::{BufferPool, Page, PageId};
///
/// let mut pool = BufferPool::new(2);
/// let a = PageId { dev: 0, page_no: 1 };
/// pool.insert(a, Page::new());
/// assert!(pool.get_mut(a).is_some());
/// ```
pub struct BufferPool {
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    hand: usize,
    dirty: usize,
    stats: CacheStats,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("resident", &self.frames.len())
            .field("capacity", &self.capacity)
            .field("dirty", &self.dirty)
            .finish()
    }
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            frames: Vec::with_capacity(capacity.min(1 << 20)),
            map: HashMap::new(),
            hand: 0,
            dirty: 0,
            stats: CacheStats::default(),
        }
    }

    /// Maximum resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently resident pages.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Currently dirty pages.
    pub fn dirty_pages(&self) -> usize {
        self.dirty
    }

    /// A copy of the counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether `id` is resident (does not count as a lookup).
    pub fn contains(&self, id: PageId) -> bool {
        self.map.contains_key(&id)
    }

    /// Looks up `id`, marking it recently used and counting hit/miss.
    pub fn get_mut(&mut self, id: PageId) -> Option<&mut Page> {
        match self.map.get(&id) {
            Some(&i) => {
                self.stats.hits += 1;
                let f = &mut self.frames[i];
                f.referenced = true;
                Some(&mut f.page)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Marks a resident page dirty.
    ///
    /// # Panics
    ///
    /// Panics if the page is not resident.
    pub fn mark_dirty(&mut self, id: PageId) {
        let &i = self.map.get(&id).expect("mark_dirty on non-resident page");
        let f = &mut self.frames[i];
        if !f.dirty {
            f.dirty = true;
            self.dirty += 1;
        }
    }

    /// Inserts a page, evicting a victim if the pool is full.
    ///
    /// Returns the evicted `(id, page_bytes, was_dirty)` if any — a dirty
    /// victim must be written to disk by the caller.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already resident.
    pub fn insert(&mut self, id: PageId, page: Page) -> Option<(PageId, Vec<u8>, bool)> {
        assert!(
            !self.map.contains_key(&id),
            "page {id:?} is already resident"
        );
        let evicted = if self.frames.len() >= self.capacity {
            Some(self.evict())
        } else {
            None
        };
        let idx = self.frames.len();
        self.frames.push(Frame {
            id,
            page,
            dirty: false,
            referenced: true,
        });
        self.map.insert(id, idx);
        evicted
    }

    fn evict(&mut self) -> (PageId, Vec<u8>, bool) {
        // Clock: skip referenced frames once, take the first unreferenced.
        loop {
            if self.hand >= self.frames.len() {
                self.hand = 0;
            }
            if self.frames[self.hand].referenced {
                self.frames[self.hand].referenced = false;
                self.hand += 1;
                continue;
            }
            let victim = self.frames.swap_remove(self.hand);
            self.map.remove(&victim.id);
            // The frame swapped into this position changed index.
            if self.hand < self.frames.len() {
                let moved = self.frames[self.hand].id;
                self.map.insert(moved, self.hand);
            }
            self.stats.evictions += 1;
            if victim.dirty {
                self.dirty -= 1;
                self.stats.dirty_evictions += 1;
            }
            return (victim.id, victim.page.as_bytes().to_vec(), victim.dirty);
        }
    }

    /// Snapshots up to `n` dirty pages (oldest-indexed first) and marks
    /// them clean; the caller writes the snapshots to disk. A page
    /// re-dirtied after the snapshot will simply be flushed again later.
    pub fn take_dirty_batch(&mut self, n: usize) -> Vec<(PageId, Vec<u8>)> {
        let mut out = Vec::with_capacity(n.min(self.dirty));
        for f in self.frames.iter_mut() {
            if out.len() >= n {
                break;
            }
            if f.dirty {
                f.dirty = false;
                self.dirty -= 1;
                out.push((f.id, f.page.as_bytes().to_vec()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> PageId {
        PageId { dev: 0, page_no: n }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut pool = BufferPool::new(4);
        pool.insert(pid(1), Page::new());
        assert!(pool.get_mut(pid(1)).is_some());
        assert!(pool.get_mut(pid(2)).is_none());
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn eviction_respects_capacity_and_reference_bits() {
        let mut pool = BufferPool::new(2);
        pool.insert(pid(1), Page::new());
        pool.insert(pid(2), Page::new());
        // Touch page 1 so its reference bit protects it for one pass.
        pool.get_mut(pid(1));
        // Clear reference bits via one clock pass, then insert.
        let evicted = pool.insert(pid(3), Page::new()).expect("pool was full");
        assert_eq!(pool.resident(), 2);
        assert!(pool.contains(pid(3)));
        assert!(!evicted.2, "clean page eviction carries dirty=false");
    }

    #[test]
    fn dirty_eviction_returns_bytes() {
        let mut pool = BufferPool::new(1);
        let mut page = Page::new();
        page.insert(b"payload").unwrap();
        pool.insert(pid(1), page);
        pool.mark_dirty(pid(1));
        assert_eq!(pool.dirty_pages(), 1);
        let (id, bytes, dirty) = pool.insert(pid(2), Page::new()).expect("evicts");
        assert_eq!(id, pid(1));
        assert!(dirty);
        let back = Page::from_bytes(&bytes);
        assert_eq!(back.get(0), Some(&b"payload"[..]));
        assert_eq!(pool.dirty_pages(), 0);
        assert_eq!(pool.stats().dirty_evictions, 1);
    }

    #[test]
    fn take_dirty_batch_cleans() {
        let mut pool = BufferPool::new(8);
        for i in 0..5 {
            pool.insert(pid(i), Page::new());
            pool.mark_dirty(pid(i));
        }
        let batch = pool.take_dirty_batch(3);
        assert_eq!(batch.len(), 3);
        assert_eq!(pool.dirty_pages(), 2);
        let rest = pool.take_dirty_batch(10);
        assert_eq!(rest.len(), 2);
        assert_eq!(pool.dirty_pages(), 0);
    }

    #[test]
    fn mark_dirty_is_idempotent() {
        let mut pool = BufferPool::new(2);
        pool.insert(pid(1), Page::new());
        pool.mark_dirty(pid(1));
        pool.mark_dirty(pid(1));
        assert_eq!(pool.dirty_pages(), 1);
    }

    #[test]
    fn map_stays_consistent_across_many_evictions() {
        let mut pool = BufferPool::new(8);
        for i in 0..200u64 {
            if !pool.contains(pid(i)) {
                pool.insert(pid(i), Page::new());
            }
            // Interleave hits on a working set.
            pool.get_mut(pid(i.saturating_sub(3)));
        }
        assert_eq!(pool.resident(), 8);
        // Every mapped entry must point at a frame with the same id.
        for i in 0..200u64 {
            if pool.contains(pid(i)) {
                assert!(pool.get_mut(pid(i)).is_some());
            }
        }
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_insert_panics() {
        let mut pool = BufferPool::new(2);
        pool.insert(pid(1), Page::new());
        pool.insert(pid(1), Page::new());
    }
}
