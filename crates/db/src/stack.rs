//! The storage-stack abstraction: the same database engine runs on Trail
//! or on the standard disk subsystem, which is exactly the comparison
//! Table 2 makes (`EXT2+Trail` vs. `EXT2` vs. `EXT2+GC`).

use std::rc::Rc;

use trail_blockio::{Clook, IoDone, IoRequest, Priority, Scheduler, StandardDriver, TapHandle};
use trail_core::{MultiTrail, TrailDriver, TrailError};
use trail_disk::{Disk, Lba};
use trail_sim::{Completion, Simulator};
use trail_telemetry::{RecorderHandle, StreamId};

/// A stack of block devices the database reads and writes through.
///
/// `dev` indexes are stable across the stack's lifetime; writes are
/// synchronous in the database's sense — the completion is delivered when
/// the stack guarantees durability (for Trail, that is the *log-disk*
/// write). A rejected or abandoned submission cancels its token.
pub trait BlockStack {
    /// Submits a durable write of `data` at `lba` on device `dev`.
    ///
    /// # Errors
    ///
    /// Rejects malformed requests without side effects.
    fn write(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        data: Vec<u8>,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError>;

    /// Submits a read of `count` sectors at `lba` on device `dev`.
    ///
    /// # Errors
    ///
    /// Rejects malformed requests without side effects.
    fn read(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        count: u32,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError>;

    /// [`write`](BlockStack::write) with an explicit stream tag.
    ///
    /// The default implementation drops the tag and delegates to
    /// [`write`](BlockStack::write); stacks that can carry streams to
    /// their taps or routing decisions override it.
    ///
    /// # Errors
    ///
    /// As [`write`](BlockStack::write).
    fn write_tagged(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        data: Vec<u8>,
        stream: StreamId,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        let _ = stream;
        self.write(sim, dev, lba, data, done)
    }

    /// [`read`](BlockStack::read) with an explicit stream tag; defaults
    /// to dropping the tag like [`write_tagged`](BlockStack::write_tagged).
    ///
    /// # Errors
    ///
    /// As [`read`](BlockStack::read).
    fn read_tagged(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        count: u32,
        stream: StreamId,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        let _ = stream;
        self.read(sim, dev, lba, count, done)
    }

    /// Outstanding work inside the stack (used to drain at shutdown).
    fn pending_work(&self) -> usize;

    /// Number of devices.
    fn devices(&self) -> usize;

    /// Attaches a telemetry recorder to every layer below this stack.
    /// The default implementation drops the recorder (no instrumentation).
    fn set_recorder(&self, _recorder: RecorderHandle) {}

    /// Installs a workload-capture tap ([`trail_blockio::SubmitTap`]) that
    /// observes every request submitted through this stack, tagged with
    /// the stack-level device index. The default implementation drops the
    /// tap (no capture).
    fn set_tap(&self, _tap: TapHandle) {}
}

/// The Trail stack: every device sits behind one [`TrailDriver`].
#[derive(Clone)]
pub struct TrailStack {
    driver: TrailDriver,
    devices: usize,
}

impl TrailStack {
    /// Wraps a running Trail driver serving `devices` data disks.
    pub fn new(driver: TrailDriver, devices: usize) -> Self {
        TrailStack { driver, devices }
    }

    /// The wrapped driver (for statistics).
    pub fn driver(&self) -> &TrailDriver {
        &self.driver
    }
}

impl BlockStack for TrailStack {
    fn write(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        data: Vec<u8>,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.driver.write(sim, dev, lba, data, done)
    }

    fn read(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        count: u32,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.driver.read(sim, dev, lba, count, done)
    }

    fn write_tagged(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        data: Vec<u8>,
        stream: StreamId,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.driver.write_tagged(sim, dev, lba, data, stream, done)
    }

    fn read_tagged(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        count: u32,
        stream: StreamId,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.driver.read_tagged(sim, dev, lba, count, stream, done)
    }

    fn pending_work(&self) -> usize {
        self.driver.pending_work()
    }

    fn devices(&self) -> usize {
        self.devices
    }

    fn set_recorder(&self, recorder: RecorderHandle) {
        self.driver.set_recorder(recorder);
    }

    fn set_tap(&self, tap: TapHandle) {
        self.driver.set_tap(tap);
    }
}

/// The baseline stack: each device is a plain queueing driver; writes pay
/// full seek + rotational latency at their target address.
#[derive(Clone)]
pub struct StandardStack {
    drivers: Vec<StandardDriver>,
}

impl StandardStack {
    /// Builds a baseline stack over `disks` with C-LOOK scheduling and no
    /// read priority (Linux-of-the-era behavior).
    pub fn new(disks: Vec<Disk>) -> Self {
        Self::with_policy(disks, || Box::new(Clook::default()), Priority::None)
    }

    /// Builds a baseline stack with an explicit scheduling policy;
    /// `make_scheduler` is called once per disk.
    pub fn with_policy(
        disks: Vec<Disk>,
        mut make_scheduler: impl FnMut() -> Box<dyn Scheduler>,
        priority: Priority,
    ) -> Self {
        StandardStack {
            drivers: disks
                .into_iter()
                .map(|d| StandardDriver::with_policy(d, make_scheduler(), priority))
                .collect(),
        }
    }

    /// The driver for device `dev` (for statistics).
    ///
    /// # Panics
    ///
    /// Panics if `dev` is out of range.
    pub fn driver(&self, dev: usize) -> &StandardDriver {
        &self.drivers[dev]
    }
}

impl BlockStack for StandardStack {
    fn write(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        data: Vec<u8>,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.write_tagged(sim, dev, lba, data, StreamId::UNTAGGED, done)
    }

    fn read(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        count: u32,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.read_tagged(sim, dev, lba, count, StreamId::UNTAGGED, done)
    }

    fn write_tagged(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        data: Vec<u8>,
        stream: StreamId,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        let drv = self.drivers.get(dev).ok_or(TrailError::BadDevice)?;
        drv.submit(sim, IoRequest::write(lba, data).tagged(stream), done)
            .map(|_| ())
            .map_err(TrailError::Disk)
    }

    fn read_tagged(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        count: u32,
        stream: StreamId,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        let drv = self.drivers.get(dev).ok_or(TrailError::BadDevice)?;
        drv.submit(sim, IoRequest::read(lba, count).tagged(stream), done)
            .map(|_| ())
            .map_err(TrailError::Disk)
    }

    fn pending_work(&self) -> usize {
        self.drivers
            .iter()
            .map(|d| d.queue_depth() + usize::from(d.is_busy()))
            .sum()
    }

    fn devices(&self) -> usize {
        self.drivers.len()
    }

    fn set_recorder(&self, recorder: RecorderHandle) {
        for d in &self.drivers {
            d.set_recorder(Rc::clone(&recorder));
        }
    }

    fn set_tap(&self, tap: TapHandle) {
        for (dev, d) in self.drivers.iter().enumerate() {
            d.set_tap(Rc::clone(&tap), dev as u32);
        }
    }
}

/// A baseline stack over arbitrary block targets — typically
/// `trail-volume` RAID arrays. Every write pays the target's full cost
/// synchronously (for RAID-5, the read-modify-write parity cycle), which
/// is the standard-stack side of the Trail-vs-RAID comparison.
#[derive(Clone)]
pub struct VolumeStack {
    targets: Vec<trail_blockio::SharedBlockDevice>,
}

impl VolumeStack {
    /// Builds a stack where device `dev` is `targets[dev]`.
    pub fn new(targets: Vec<trail_blockio::SharedBlockDevice>) -> Self {
        VolumeStack { targets }
    }

    /// The target behind device `dev` (for statistics).
    ///
    /// # Panics
    ///
    /// Panics if `dev` is out of range.
    pub fn target(&self, dev: usize) -> &trail_blockio::SharedBlockDevice {
        &self.targets[dev]
    }
}

impl BlockStack for VolumeStack {
    fn write(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        data: Vec<u8>,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.write_tagged(sim, dev, lba, data, StreamId::UNTAGGED, done)
    }

    fn read(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        count: u32,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.read_tagged(sim, dev, lba, count, StreamId::UNTAGGED, done)
    }

    fn write_tagged(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        data: Vec<u8>,
        stream: StreamId,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        let tgt = self.targets.get(dev).ok_or(TrailError::BadDevice)?;
        tgt.submit(sim, IoRequest::write(lba, data).tagged(stream), done)
            .map(|_| ())
            .map_err(TrailError::Disk)
    }

    fn read_tagged(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        count: u32,
        stream: StreamId,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        let tgt = self.targets.get(dev).ok_or(TrailError::BadDevice)?;
        tgt.submit(sim, IoRequest::read(lba, count).tagged(stream), done)
            .map(|_| ())
            .map_err(TrailError::Disk)
    }

    fn pending_work(&self) -> usize {
        self.targets.iter().map(|t| t.pending()).sum()
    }

    fn devices(&self) -> usize {
        self.targets.len()
    }

    fn set_recorder(&self, recorder: RecorderHandle) {
        for t in &self.targets {
            t.set_recorder(Rc::clone(&recorder));
        }
    }

    fn set_tap(&self, tap: TapHandle) {
        for (dev, t) in self.targets.iter().enumerate() {
            t.set_tap(Rc::clone(&tap), dev as u32);
        }
    }
}

/// A Trail-array stack: every device sits behind a [`MultiTrail`] (one
/// Trail instance per log disk, shared data disks). Stream tags reach the
/// array's router, so [`trail_core::LogRouting::StreamAffinity`] can pin
/// each stream to one log disk.
#[derive(Clone)]
pub struct MultiTrailStack {
    multi: MultiTrail,
    devices: usize,
}

impl MultiTrailStack {
    /// Wraps a running Trail array serving `devices` data disks.
    pub fn new(multi: MultiTrail, devices: usize) -> Self {
        MultiTrailStack { multi, devices }
    }

    /// The wrapped array (for statistics and routing control).
    pub fn multi(&self) -> &MultiTrail {
        &self.multi
    }
}

impl BlockStack for MultiTrailStack {
    fn write(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        data: Vec<u8>,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.multi.write(sim, dev, lba, data, done)
    }

    fn read(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        count: u32,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.multi.read(sim, dev, lba, count, done)
    }

    fn write_tagged(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        data: Vec<u8>,
        stream: StreamId,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.multi.write_tagged(sim, dev, lba, data, stream, done)
    }

    fn read_tagged(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        count: u32,
        stream: StreamId,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.multi.read_tagged(sim, dev, lba, count, stream, done)
    }

    fn pending_work(&self) -> usize {
        self.multi.pending_work()
    }

    fn devices(&self) -> usize {
        self.devices
    }

    fn set_recorder(&self, recorder: RecorderHandle) {
        self.multi.set_recorder(recorder);
    }

    fn set_tap(&self, tap: TapHandle) {
        self.multi.set_tap(tap);
    }
}

/// Convenience alias used throughout the engine.
pub type SharedStack = Rc<dyn BlockStack>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use trail_disk::{profiles, SECTOR_SIZE};

    #[test]
    fn standard_stack_round_trips() {
        let mut sim = Simulator::new();
        let stack = StandardStack::new(vec![
            Disk::new("a", profiles::tiny_test_disk()),
            Disk::new("b", profiles::tiny_test_disk()),
        ]);
        assert_eq!(stack.devices(), 2);
        let hit = Rc::new(Cell::new(false));
        let h = Rc::clone(&hit);
        let done = sim.completion(|_, _| {});
        stack
            .write(&mut sim, 1, 9, vec![0x3C; SECTOR_SIZE], done)
            .unwrap();
        sim.run();
        let done = sim.completion(move |_, d: trail_sim::Delivered<IoDone>| {
            assert_eq!(d.expect("read delivered").data.unwrap()[0], 0x3C);
            h.set(true);
        });
        stack.read(&mut sim, 1, 9, 1, done).unwrap();
        sim.run();
        assert!(hit.get());
        assert_eq!(stack.pending_work(), 0);
    }

    #[test]
    fn standard_stack_rejects_bad_device() {
        let mut sim = Simulator::new();
        let stack = StandardStack::new(vec![Disk::new("a", profiles::tiny_test_disk())]);
        let done = sim.completion(|_, _| {});
        assert!(matches!(
            stack.write(&mut sim, 7, 0, vec![0; SECTOR_SIZE], done),
            Err(TrailError::BadDevice)
        ));
        let done = sim.completion(|_, _| {});
        assert!(matches!(
            stack.read(&mut sim, 7, 0, 1, done),
            Err(TrailError::BadDevice)
        ));
    }

    #[test]
    fn trail_stack_round_trips() {
        use trail_core::{format_log_disk, FormatOptions, TrailConfig};
        let mut sim = Simulator::new();
        let log = Disk::new("log", profiles::tiny_test_disk());
        let data = Disk::new("d", profiles::tiny_test_disk());
        format_log_disk(&mut sim, &log, FormatOptions::default()).unwrap();
        let (drv, _) =
            TrailDriver::start(&mut sim, log, vec![data], TrailConfig::default()).unwrap();
        let stack = TrailStack::new(drv.clone(), 1);
        let done = sim.completion(|_, d: trail_sim::Delivered<IoDone>| {
            assert!(d.expect("durable").latency().as_millis_f64() < 5.0);
        });
        stack
            .write(&mut sim, 0, 3, vec![0x7E; SECTOR_SIZE], done)
            .unwrap();
        drv.run_until_quiescent(&mut sim);
        assert_eq!(stack.pending_work(), 0);
        let got = Rc::new(Cell::new(0u8));
        let g = Rc::clone(&got);
        let done = sim.completion(move |_, d: trail_sim::Delivered<IoDone>| {
            g.set(d.expect("read delivered").data.unwrap()[0]);
        });
        stack.read(&mut sim, 0, 3, 1, done).unwrap();
        sim.run();
        assert_eq!(got.get(), 0x7E);
    }
}
