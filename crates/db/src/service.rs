//! The storage-service adapter: the engine's block stack exposed as the
//! verb set a network front-end serves (`get` / `put` / `commit`).
//!
//! A serving layer (see `trail-serve`) wants three things a raw
//! [`BlockStack`](crate::BlockStack) does not provide directly:
//!
//! - **Admissible addressing** — client-supplied LBAs are folded into the
//!   device's capacity (the same `lba % (capacity - sectors + 1)` rule the
//!   trace-replay engine uses), so a request can never be rejected for
//!   pointing past the end of the disk.
//! - **Stream-tagged routing** — every verb carries the session's
//!   [`StreamId`], so a Trail array underneath can pin a session's log
//!   writes to one log disk (`LogRouting::StreamAffinity`).
//! - **Durability barriers** — `commit(stream)` completes when every write
//!   the stream issued *before* the commit is durable, the same
//!   "volume-durable up to this point" contract a write-ahead service
//!   advertises. Writes already durable → the commit completes
//!   immediately; otherwise it parks until the stream's outstanding
//!   write count drains to zero.
//!
//! The adapter is deliberately thin: it owns no queueing and no policy
//! (that is the server's job) — just addressing, per-stream durability
//! state, and the completion plumbing.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use trail_blockio::IoDone;
use trail_core::TrailError;
use trail_sim::{Completion, Simulator};
use trail_telemetry::StreamId;

use crate::stack::SharedStack;

struct ServiceInner {
    stack: SharedStack,
    /// Per-device capacity in sectors, in device order.
    capacity: Vec<u64>,
    /// Writes in flight per stream (commit-barrier state).
    outstanding: BTreeMap<StreamId, u32>,
    /// Commits parked until their stream's outstanding count drains.
    barriers: BTreeMap<StreamId, Vec<Completion<()>>>,
}

/// A cloneable handle to the storage service; see the module docs.
#[derive(Clone)]
pub struct StorageService {
    inner: Rc<RefCell<ServiceInner>>,
}

impl StorageService {
    /// Wraps `stack`; `capacity[dev]` is device `dev`'s total sectors
    /// (what [`StorageService::clamp`] folds addresses into).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` does not list every stack device, or any
    /// device has zero capacity.
    #[must_use]
    pub fn new(stack: SharedStack, capacity: Vec<u64>) -> Self {
        assert_eq!(
            capacity.len(),
            stack.devices(),
            "one capacity per stack device"
        );
        assert!(capacity.iter().all(|&c| c > 0), "zero-capacity device");
        StorageService {
            inner: Rc::new(RefCell::new(ServiceInner {
                stack,
                capacity,
                outstanding: BTreeMap::new(),
                barriers: BTreeMap::new(),
            })),
        }
    }

    /// Number of devices behind the service.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.inner.borrow().stack.devices()
    }

    /// The smallest device capacity, in sectors — a safe address space
    /// for workload generators that do not pick a device first.
    #[must_use]
    pub fn min_capacity(&self) -> u64 {
        self.inner
            .borrow()
            .capacity
            .iter()
            .copied()
            .min()
            .unwrap_or(0)
    }

    /// Folds `(dev, lba)` into an admissible `(dev, lba)` for a
    /// `sectors`-long request: the device index wraps modulo the device
    /// count and the LBA modulo `capacity - sectors + 1`.
    #[must_use]
    pub fn clamp(&self, dev: u16, lba: u64, sectors: u32) -> (usize, u64) {
        let inner = self.inner.borrow();
        let dev = usize::from(dev) % inner.capacity.len();
        let cap = inner.capacity[dev];
        let span = cap.saturating_sub(u64::from(sectors)).saturating_add(1);
        (dev, lba % span.max(1))
    }

    /// Writes the stream's outstanding count, for barrier inspection.
    #[must_use]
    pub fn outstanding(&self, stream: StreamId) -> u32 {
        self.inner
            .borrow()
            .outstanding
            .get(&stream)
            .copied()
            .unwrap_or(0)
    }

    /// Submits a stream-tagged read of `sectors` at the clamped address.
    ///
    /// # Errors
    ///
    /// Propagates the stack's rejection (the token is cancelled by the
    /// stack in that case).
    pub fn get(
        &self,
        sim: &mut Simulator,
        stream: StreamId,
        dev: u16,
        lba: u64,
        sectors: u32,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        let (dev, lba) = self.clamp(dev, lba, sectors);
        let stack = Rc::clone(&self.inner.borrow().stack);
        stack.read_tagged(sim, dev, lba, sectors, stream, done)
    }

    /// Submits a stream-tagged durable write at the clamped address,
    /// tracking it in the stream's commit barrier until the stack
    /// acknowledges durability (or cancels).
    ///
    /// # Errors
    ///
    /// Propagates the stack's rejection; a rejected write never enters
    /// the barrier.
    pub fn put(
        &self,
        sim: &mut Simulator,
        stream: StreamId,
        dev: u16,
        lba: u64,
        data: Vec<u8>,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        let sectors = (data.len() / trail_disk::SECTOR_SIZE).max(1) as u32;
        let (dev, lba) = self.clamp(dev, lba, sectors);
        let stack = Rc::clone(&self.inner.borrow().stack);
        let barrier = Rc::clone(&self.inner);
        let tracked = sim.completion(move |sim, delivered| {
            let released = {
                let mut inner = barrier.borrow_mut();
                let count = inner.outstanding.entry(stream).or_insert(0);
                *count = count.saturating_sub(1);
                if *count == 0 {
                    inner.barriers.remove(&stream).unwrap_or_default()
                } else {
                    Vec::new()
                }
            };
            for commit in released {
                commit.complete(sim, ());
            }
            match delivered {
                Ok(io) => done.complete(sim, io),
                Err(_) => done.cancel(sim),
            }
        });
        // Count before submitting: a synchronous rejection cancels
        // `tracked`, whose handler then decrements and releases.
        *self
            .inner
            .borrow_mut()
            .outstanding
            .entry(stream)
            .or_insert(0) += 1;
        stack.write_tagged(sim, dev, lba, data, stream, tracked)
    }

    /// Completes `done` when every `put` the stream issued before this
    /// call is durable — immediately if none is outstanding.
    pub fn commit(&self, sim: &mut Simulator, stream: StreamId, done: Completion<()>) {
        let mut inner = self.inner.borrow_mut();
        if inner.outstanding.get(&stream).copied().unwrap_or(0) == 0 {
            drop(inner);
            done.complete(sim, ());
        } else {
            inner.barriers.entry(stream).or_default().push(done);
        }
    }

    /// Outstanding work inside the underlying stack.
    #[must_use]
    pub fn pending_work(&self) -> usize {
        self.inner.borrow().stack.pending_work()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StandardStack;
    use std::cell::Cell;
    use trail_disk::{profiles, Disk, SECTOR_SIZE};

    fn service(sim_devices: usize) -> (Simulator, StorageService) {
        let sim = Simulator::new();
        let disks: Vec<Disk> = (0..sim_devices)
            .map(|i| Disk::new(format!("d{i}"), profiles::tiny_test_disk()))
            .collect();
        let capacity = disks.iter().map(|d| d.geometry().total_sectors()).collect();
        let stack: SharedStack = Rc::new(StandardStack::new(disks));
        (sim, StorageService::new(stack, capacity))
    }

    #[test]
    fn clamp_folds_wild_addresses_into_capacity() {
        let (_, svc) = service(2);
        let cap = svc.min_capacity();
        assert!(cap > 0);
        let (dev, lba) = svc.clamp(7, u64::MAX - 3, 8);
        assert!(dev < 2);
        assert!(lba + 8 <= cap);
    }

    #[test]
    fn put_round_trips_through_get() {
        let (mut sim, svc) = service(1);
        let done = sim.completion(|_, d: trail_sim::Delivered<IoDone>| {
            d.expect("durable");
        });
        svc.put(&mut sim, StreamId(1), 0, 5, vec![0xA5; SECTOR_SIZE], done)
            .unwrap();
        sim.run();
        assert_eq!(svc.outstanding(StreamId(1)), 0);
        let seen = Rc::new(Cell::new(false));
        let s = Rc::clone(&seen);
        let done = sim.completion(move |_, d: trail_sim::Delivered<IoDone>| {
            assert_eq!(d.expect("read").data.unwrap()[0], 0xA5);
            s.set(true);
        });
        svc.get(&mut sim, StreamId(1), 0, 5, 1, done).unwrap();
        sim.run();
        assert!(seen.get());
    }

    #[test]
    fn commit_waits_for_outstanding_writes() {
        let (mut sim, svc) = service(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        let o = Rc::clone(&order);
        let wrote = sim.completion(move |_, _: trail_sim::Delivered<IoDone>| {
            o.borrow_mut().push("write");
        });
        svc.put(&mut sim, StreamId(2), 0, 0, vec![1; SECTOR_SIZE], wrote)
            .unwrap();
        assert_eq!(svc.outstanding(StreamId(2)), 1);
        let o = Rc::clone(&order);
        let committed = sim.completion(move |_, d: trail_sim::Delivered<()>| {
            d.expect("committed");
            o.borrow_mut().push("commit");
        });
        svc.commit(&mut sim, StreamId(2), committed);
        assert!(order.borrow().is_empty(), "commit must not fire inline");
        sim.run();
        assert_eq!(*order.borrow(), vec!["commit", "write"]);
    }

    #[test]
    fn commit_with_nothing_outstanding_fires_immediately() {
        let (mut sim, svc) = service(1);
        let seen = Rc::new(Cell::new(false));
        let s = Rc::clone(&seen);
        let done = sim.completion(move |_, d: trail_sim::Delivered<()>| {
            d.expect("committed");
            s.set(true);
        });
        svc.commit(&mut sim, StreamId(3), done);
        sim.run();
        assert!(seen.get());
    }

    #[test]
    fn commits_are_per_stream() {
        let (mut sim, svc) = service(1);
        let wrote = sim.completion(|_, _: trail_sim::Delivered<IoDone>| {});
        svc.put(&mut sim, StreamId(1), 0, 0, vec![1; SECTOR_SIZE], wrote)
            .unwrap();
        // Stream 9 has nothing outstanding: its commit is immediate even
        // though stream 1's write is still in flight.
        let seen = Rc::new(Cell::new(false));
        let s = Rc::clone(&seen);
        let done = sim.completion(move |_, _: trail_sim::Delivered<()>| s.set(true));
        svc.commit(&mut sim, StreamId(9), done);
        assert!(sim.step());
        assert!(seen.get());
        sim.run();
    }
}
