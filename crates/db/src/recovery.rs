//! Redo recovery from the write-ahead log.
//!
//! After a crash, the committed database image is reconstructed by
//! scanning the log file's chunks in order and replaying, in LSN order,
//! every `Put`/`Delete` belonging to a transaction whose `Commit` record
//! made it to disk. Combined with Trail underneath, this exercises the
//! full layered story: Trail's recovery first restores the *block*
//! device's durability guarantee, then WAL redo restores *transaction*
//! atomicity on top of it.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use trail_core::TrailError;
use trail_disk::Lba;
use trail_sim::Simulator;

use crate::engine::TableId;
use crate::stack::BlockStack;
use crate::wal::{Wal, WalRecord};

/// Structured timing/volume breakdown of one WAL redo pass — the
/// database-layer counterpart of `trail_core::RecoveryReport`, so a
/// layered crash experiment can report both halves of the recovery story
/// (block durability below, transaction atomicity above) in one place.
#[derive(Clone, Debug, Default)]
pub struct WalRecoveryReport {
    /// Log chunks parsed before the tail was reached.
    pub chunks_scanned: u64,
    /// WAL records recovered, across all scanned chunks.
    pub records: usize,
    /// Distinct transactions whose `Commit` record made it to disk.
    pub committed_txns: usize,
    /// Rows applied to the committed image (puts + deletes).
    pub rows_applied: usize,
    /// Virtual time spent scanning the log region.
    pub scan_time: trail_sim::SimDuration,
}

impl WalRecoveryReport {
    /// Serializes the report (times in virtual milliseconds).
    pub fn to_json(&self) -> trail_telemetry::JsonValue {
        use trail_telemetry::JsonValue as J;
        J::obj(vec![
            ("chunks_scanned", J::Num(self.chunks_scanned as f64)),
            ("records", J::Num(self.records as f64)),
            ("committed_txns", J::Num(self.committed_txns as f64)),
            ("rows_applied", J::Num(self.rows_applied as f64)),
            ("scan_ms", J::Num(self.scan_time.as_millis_f64())),
        ])
    }
}

/// Reads `count` sectors through the stack, blocking (drains the event
/// queue — recovery owns the simulation).
///
/// # Errors
///
/// Propagates stack errors.
///
/// # Panics
///
/// Panics if the read never completes.
pub fn read_blocking(
    sim: &mut Simulator,
    stack: &dyn BlockStack,
    dev: usize,
    lba: Lba,
    count: u32,
) -> Result<Vec<u8>, TrailError> {
    let slot: Rc<RefCell<Option<Vec<u8>>>> = Rc::new(RefCell::new(None));
    let out = Rc::clone(&slot);
    let done = sim.completion(move |_, d: trail_sim::Delivered<trail_blockio::IoDone>| {
        if let Ok(done) = d {
            *out.borrow_mut() = done.data;
        }
    });
    stack.read(sim, dev, lba, count, done)?;
    sim.run();
    let data = slot.borrow_mut().take();
    Ok(data.expect("recovery read did not complete"))
}

/// Scans the log region, returning every record of every chunk in LSN
/// order. Stops at the first invalid or out-of-sequence chunk (the tail of
/// the log).
///
/// # Errors
///
/// Propagates stack errors.
pub fn scan_wal(
    sim: &mut Simulator,
    stack: &dyn BlockStack,
    dev: usize,
    region_start: Lba,
    region_sectors: u64,
) -> Result<Vec<(u64, WalRecord)>, TrailError> {
    Ok(scan_wal_inner(sim, stack, dev, region_start, region_sectors)?.0)
}

/// The scan worker: returns the records plus the number of chunks parsed.
fn scan_wal_inner(
    sim: &mut Simulator,
    stack: &dyn BlockStack,
    dev: usize,
    region_start: Lba,
    region_sectors: u64,
) -> Result<(Vec<(u64, WalRecord)>, u64), TrailError> {
    let mut records = Vec::new();
    let mut pos = 0u64;
    let mut seq = 0u64;
    while pos < region_sectors {
        // Read the chunk's first sector to learn its length.
        let head = read_blocking(sim, stack, dev, region_start + pos, 1)?;
        let len_guess = if head.len() >= 16 {
            u32::from_le_bytes(head[12..16].try_into().expect("len")) as usize
        } else {
            break;
        };
        let sectors = Wal::chunk_sectors(len_guess);
        if sectors == 0 || pos + sectors > region_sectors {
            break;
        }
        let mut chunk = head;
        if sectors > 1 {
            let rest = read_blocking(
                sim,
                stack,
                dev,
                region_start + pos + 1,
                (sectors - 1) as u32,
            )?;
            chunk.extend_from_slice(&rest);
        }
        match Wal::parse_chunk(&chunk, seq) {
            Some((recs, used)) => {
                records.extend(recs);
                pos += used;
                seq += 1;
            }
            None => break,
        }
    }
    // Chunks are flushed in order, so LSNs are already sorted; assert the
    // invariant rather than trusting it silently.
    debug_assert!(records.windows(2).all(|w| w[0].0 < w[1].0));
    Ok((records, seq))
}

/// One-call redo recovery with a structured report: scans the log region
/// (timed in virtual time) and replays committed transactions into the
/// row image.
///
/// # Errors
///
/// Propagates stack errors from the scan.
pub fn recover_committed(
    sim: &mut Simulator,
    stack: &dyn BlockStack,
    dev: usize,
    region_start: Lba,
    region_sectors: u64,
) -> Result<(RecoveredImage, WalRecoveryReport), TrailError> {
    let t0 = sim.now();
    let (records, chunks) = scan_wal_inner(sim, stack, dev, region_start, region_sectors)?;
    let scan_time = sim.now().duration_since(t0);
    let image = replay_committed(&records);
    let report = WalRecoveryReport {
        chunks_scanned: chunks,
        records: records.len(),
        committed_txns: committed_set(&records).len(),
        rows_applied: image.len(),
        scan_time,
    };
    Ok((image, report))
}

fn committed_set(records: &[(u64, WalRecord)]) -> HashSet<u32> {
    records
        .iter()
        .filter_map(|(_, r)| match r {
            WalRecord::Commit { txn } => Some(*txn),
            _ => None,
        })
        .collect()
}

/// The committed row image recovery rebuilds: the value (`Some`) or
/// tombstone (`None`) of every row touched by a committed transaction.
pub type RecoveredImage = HashMap<(TableId, u64), Option<Vec<u8>>>;

/// Replays scanned records into the committed row image: the value (or
/// absence) of every row touched by a *committed* transaction.
pub fn replay_committed(records: &[(u64, WalRecord)]) -> RecoveredImage {
    let committed: HashSet<u32> = committed_set(records);
    let mut image: RecoveredImage = HashMap::new();
    for (_, rec) in records {
        match rec {
            WalRecord::Put {
                txn,
                table,
                key,
                value,
            } if committed.contains(txn) => {
                image.insert((*table, *key), Some(value.clone()));
            }
            WalRecord::Delete { txn, table, key } if committed.contains(txn) => {
                image.insert((*table, *key), None);
            }
            _ => {}
        }
    }
    image
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_applies_only_committed_transactions() {
        let records = vec![
            (
                0,
                WalRecord::Put {
                    txn: 1,
                    table: 0,
                    key: 5,
                    value: vec![1],
                },
            ),
            (
                1,
                WalRecord::Put {
                    txn: 2,
                    table: 0,
                    key: 6,
                    value: vec![2],
                },
            ),
            (2, WalRecord::Commit { txn: 1 }),
            // txn 2 never commits.
            (
                3,
                WalRecord::Put {
                    txn: 3,
                    table: 0,
                    key: 5,
                    value: vec![9],
                },
            ),
            (4, WalRecord::Commit { txn: 3 }),
            (
                5,
                WalRecord::Delete {
                    txn: 4,
                    table: 0,
                    key: 7,
                },
            ),
            (6, WalRecord::Commit { txn: 4 }),
        ];
        let image = replay_committed(&records);
        assert_eq!(image.get(&(0, 5)), Some(&Some(vec![9])), "later txn wins");
        assert_eq!(image.get(&(0, 6)), None, "uncommitted txn invisible");
        assert_eq!(image.get(&(0, 7)), Some(&None), "committed delete");
    }
}
