//! # trail-db: a Berkeley-DB-like transactional storage engine
//!
//! The database substrate of the Trail reproduction (Chiueh & Huang,
//! *Track-Based Disk Logging*, DSN 2002). The paper's headline application
//! result (Tables 2 and 3) runs TPC-C on Berkeley DB with its log file
//! opened `O_SYNC`; what matters for the experiment is the engine's **I/O
//! pattern** — synchronous commit-time log forces, cache-miss page reads,
//! and background dirty-page write-back — all of which this crate
//! reproduces over a pluggable storage stack:
//!
//! - [`BlockStack`] with [`TrailStack`] / [`StandardStack`] — the same
//!   engine binary-compares `EXT2+Trail`, `EXT2`, and `EXT2+GC`;
//! - [`Page`] / [`BufferPool`] — 4-KiB slotted pages under a clock cache;
//! - [`Wal`] with [`FlushPolicy::EveryCommit`] and
//!   [`FlushPolicy::GroupCommit`] — Table 3 counts the group commits;
//!   every force writes the chunk *and* the file's inode block, the
//!   `O_SYNC`-on-ext2 behavior that makes baseline logging expensive;
//! - [`Database`] — op-list transactions with response time measured to
//!   durability;
//! - [`StorageService`] — the serving layer's adapter over a stack:
//!   clamped addressing, stream-tagged `get`/`put`, and per-stream
//!   `commit` durability barriers;
//! - [`scan_wal`] / [`replay_committed`] — redo recovery, composable with
//!   Trail's own block-level recovery underneath.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod engine;
mod page;
mod recovery;
mod service;
mod stack;
mod wal;

pub use cache::{BufferPool, CacheStats};
pub use engine::{Database, DbConfig, DbStats, Op, TableId, TxnResult, TxnSpec};
pub use page::{Page, PageId, Rid, PAGE_SIZE, SECTORS_PER_PAGE};
pub use recovery::{
    read_blocking, recover_committed, replay_committed, scan_wal, RecoveredImage, WalRecoveryReport,
};
pub use service::StorageService;
pub use stack::{BlockStack, MultiTrailStack, SharedStack, StandardStack, TrailStack, VolumeStack};
pub use wal::{FlushJob, FlushPolicy, PendingCommit, Wal, WalRecord, WalStats, CHUNK_MAGIC};
