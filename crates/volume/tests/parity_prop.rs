//! Parity algebra, property-tested: the invariants the RAID layouts are
//! built on, checked against the raw member disks after arbitrary
//! workloads rather than against the volume's own read path.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use rand::Rng;
use trail_blockio::{IoDone, IoRequest, StandardDriver};
use trail_disk::{profiles, Disk, SECTOR_SIZE};
use trail_sim::{Delivered, Simulator};
use trail_volume::{RaidVolume, VolumeLayout};

fn volume(layout: VolumeLayout, members: usize) -> RaidVolume {
    let drivers: Vec<StandardDriver> = (0..members)
        .map(|i| StandardDriver::new(Disk::new(format!("m{i}"), profiles::tiny_test_disk())))
        .collect();
    RaidVolume::new("vol", layout, drivers)
}

fn write_ok(sim: &mut Simulator, vol: &RaidVolume, lba: u64, data: Vec<u8>) {
    let done = sim.completion(|_, d: Delivered<IoDone>| {
        d.expect("write completes");
    });
    vol.submit(sim, IoRequest::write(lba, data), done)
        .expect("write accepted");
    sim.run();
}

fn read_back(sim: &mut Simulator, vol: &RaidVolume, lba: u64, count: u32) -> Vec<u8> {
    let out: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = Rc::clone(&out);
    let done = sim.completion(move |_, d: Delivered<IoDone>| {
        let done = d.expect("read completes");
        *sink.borrow_mut() = done.data.expect("read returns data");
    });
    vol.submit(sim, IoRequest::read(lba, count), done)
        .expect("read accepted");
    sim.run();
    Rc::try_unwrap(out).expect("read landed").into_inner()
}

/// Writes a random workload into the low LBAs of `vol`, maintaining a
/// byte-exact shadow of the logical address space.
fn random_workload(
    sim: &mut Simulator,
    vol: &RaidVolume,
    seed: u64,
    writes: usize,
    span_sectors: u64,
) -> Vec<u8> {
    let mut shadow = vec![0u8; (span_sectors as usize) * SECTOR_SIZE];
    let mut rng = trail_sim::rng(seed);
    for _ in 0..writes {
        let len = rng.gen_range(1..=12u64).min(span_sectors);
        let lba = rng.gen_range(0..=(span_sectors - len));
        let fill: u8 = rng.gen();
        let data: Vec<u8> = (0..(len as usize) * SECTOR_SIZE)
            .map(|i| fill.wrapping_add(i as u8).wrapping_mul(13))
            .collect();
        shadow[(lba as usize) * SECTOR_SIZE..((lba + len) as usize) * SECTOR_SIZE]
            .copy_from_slice(&data);
        write_ok(sim, vol, lba, data);
    }
    shadow
}

/// RAID-5 invariant: after any sequence of writes (small RMWs, full
/// stripes, anything in between), the XOR of every physical row across
/// all members is zero — unwritten sectors read back as zeros, so the
/// identity holds over the whole array, not just touched stripes.
fn raid5_parity_holds(seed: u64, writes: usize, members: usize, chunk: u32) -> Result<(), String> {
    let mut sim = Simulator::new();
    let vol = volume(
        VolumeLayout::Raid5 {
            chunk_sectors: chunk,
        },
        members,
    );
    let span = 6 * u64::from(chunk) * (members as u64 - 1);
    random_workload(&mut sim, &vol, seed, writes, span);
    let disks = vol.member_disks();
    let rows = vol.capacity_sectors() / (members as u64 - 1);
    for row in 0..rows {
        let mut acc = [0u8; SECTOR_SIZE];
        for d in &disks {
            let sector = d.peek_sector(row);
            for (a, b) in acc.iter_mut().zip(sector.iter()) {
                *a ^= b;
            }
        }
        if acc.iter().any(|&b| b != 0) {
            return Err(format!("row {row}: XOR across members is non-zero"));
        }
    }
    Ok(())
}

/// RAID-5 degraded reads: fail one member after an arbitrary workload
/// and every logical byte must still read back exactly — the missing
/// member's contribution reconstructed from data XOR parity.
fn raid5_degraded_reads_reconstruct(
    seed: u64,
    writes: usize,
    members: usize,
    chunk: u32,
    victim: usize,
) -> Result<(), String> {
    let mut sim = Simulator::new();
    let vol = volume(
        VolumeLayout::Raid5 {
            chunk_sectors: chunk,
        },
        members,
    );
    let span = 6 * u64::from(chunk) * (members as u64 - 1);
    let shadow = random_workload(&mut sim, &vol, seed, writes, span);
    vol.fail_member(sim.now(), victim % members);
    let step = 16u64;
    let mut lba = 0;
    while lba < span {
        let count = step.min(span - lba) as u32;
        let got = read_back(&mut sim, &vol, lba, count);
        let want = &shadow[(lba as usize) * SECTOR_SIZE..][..(count as usize) * SECTOR_SIZE];
        if got != want {
            return Err(format!(
                "degraded read at lba {lba}+{count} diverged from the written bytes"
            ));
        }
        lba += u64::from(count);
    }
    let degraded = vol.with_stats(|s| s.degraded_reads);
    if degraded == 0 {
        return Err("degraded sweep never exercised reconstruction".into());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn raid5_rows_always_xor_to_zero(
        seed in any::<u64>(),
        writes in 1usize..40,
        members in 3usize..=5,
        chunk_idx in 0usize..4,
    ) {
        let chunk = [1u32, 2, 4, 8][chunk_idx];
        raid5_parity_holds(seed, writes, members, chunk)
            .map_err(TestCaseError::fail)?;
    }

    #[test]
    fn raid5_degraded_reads_return_written_bytes(
        seed in any::<u64>(),
        writes in 1usize..40,
        members in 3usize..=5,
        chunk_idx in 0usize..4,
        victim in 0usize..5,
    ) {
        let chunk = [1u32, 2, 4, 8][chunk_idx];
        raid5_degraded_reads_reconstruct(seed, writes, members, chunk, victim)
            .map_err(TestCaseError::fail)?;
    }
}
