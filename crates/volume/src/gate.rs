//! A keyed serialization gate for stripe-atomic operations.
//!
//! RAID-5 parity updates and degraded-read reconstructions must not
//! interleave on the same stripe: two concurrent read-modify-write cycles
//! that both read old parity before either writes new parity would lose
//! one delta. The [`Gate`] serializes operations that share any key
//! (stripe ids for RAID-5, mirror regions for RAID-1) while letting
//! disjoint operations proceed concurrently.
//!
//! An operation acquires **all** its keys atomically — there is no
//! incremental lock ordering, so multi-stripe writes cannot deadlock —
//! and grants go out in arrival order for any contested key.

use std::collections::{BTreeSet, VecDeque};

use trail_sim::{Completion, Simulator};

/// Serializes operations that share keys. Grants are delivered through
/// [`Completion`] tokens, so a grant is always a fresh simulator event —
/// never a synchronous callback into the acquirer.
#[derive(Debug, Default)]
pub struct Gate {
    active: BTreeSet<u64>,
    waiting: VecDeque<(Vec<u64>, Completion<()>)>,
}

impl Gate {
    /// Creates an empty gate.
    #[must_use]
    pub fn new() -> Self {
        Gate::default()
    }

    /// Requests `keys`; `granted` completes when all of them are held.
    ///
    /// An operation whose keys are free *and* uncontested by earlier
    /// waiters is granted immediately (still delivered as its own event);
    /// otherwise it queues in arrival order.
    pub fn acquire(&mut self, sim: &mut Simulator, keys: Vec<u64>, granted: Completion<()>) {
        let conflict = keys.iter().any(|k| self.active.contains(k))
            || self
                .waiting
                .iter()
                .any(|(wk, _)| wk.iter().any(|k| keys.contains(k)));
        if conflict {
            self.waiting.push_back((keys, granted));
        } else {
            self.active.extend(keys.iter().copied());
            granted.complete(sim, ());
        }
    }

    /// Releases `keys` and grants queued waiters, front first, stopping at
    /// the first waiter whose keys are still partly held.
    pub fn release(&mut self, sim: &mut Simulator, keys: &[u64]) {
        for k in keys {
            self.active.remove(k);
        }
        while let Some((wk, _)) = self.waiting.front() {
            if wk.iter().any(|k| self.active.contains(k)) {
                break;
            }
            let (wk, granted) = self.waiting.pop_front().expect("front just observed");
            self.active.extend(wk.iter().copied());
            granted.complete(sim, ());
        }
    }

    /// Keys currently held.
    #[must_use]
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Operations queued for contested keys.
    #[must_use]
    pub fn waiting_len(&self) -> usize {
        self.waiting.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn probe(sim: &mut Simulator, log: &Rc<RefCell<Vec<u32>>>, tag: u32) -> Completion<()> {
        let log = Rc::clone(log);
        sim.completion(move |_, d| {
            d.expect("grant delivered");
            log.borrow_mut().push(tag);
        })
    }

    #[test]
    fn disjoint_keys_run_concurrently() {
        let mut sim = Simulator::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut gate = Gate::new();
        let a = probe(&mut sim, &log, 1);
        let b = probe(&mut sim, &log, 2);
        gate.acquire(&mut sim, vec![10], a);
        gate.acquire(&mut sim, vec![20], b);
        sim.run();
        assert_eq!(&*log.borrow(), &[1, 2]);
        assert_eq!(gate.active_len(), 2);
        assert_eq!(gate.waiting_len(), 0);
    }

    #[test]
    fn shared_key_serializes_in_arrival_order() {
        let mut sim = Simulator::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut gate = Gate::new();
        let a = probe(&mut sim, &log, 1);
        let b = probe(&mut sim, &log, 2);
        let c = probe(&mut sim, &log, 3);
        gate.acquire(&mut sim, vec![10, 11], a);
        gate.acquire(&mut sim, vec![11], b);
        // c shares a key with the *waiting* b, so it must queue behind it
        // even though key 12 is free.
        gate.acquire(&mut sim, vec![11, 12], c);
        sim.run();
        assert_eq!(&*log.borrow(), &[1]);
        gate.release(&mut sim, &[10, 11]);
        sim.run();
        assert_eq!(&*log.borrow(), &[1, 2]);
        gate.release(&mut sim, &[11]);
        sim.run();
        assert_eq!(&*log.borrow(), &[1, 2, 3]);
        gate.release(&mut sim, &[11, 12]);
        assert_eq!(gate.active_len(), 0);
    }

    #[test]
    fn multi_key_acquire_is_atomic() {
        let mut sim = Simulator::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut gate = Gate::new();
        let a = probe(&mut sim, &log, 1);
        let b = probe(&mut sim, &log, 2);
        gate.acquire(&mut sim, vec![1], a);
        // b wants {1, 2}; it must not hold 2 while waiting on 1.
        gate.acquire(&mut sim, vec![1, 2], b);
        let c = probe(&mut sim, &log, 3);
        gate.acquire(&mut sim, vec![3], c);
        sim.run();
        assert_eq!(&*log.borrow(), &[1, 3]);
        gate.release(&mut sim, &[1]);
        sim.run();
        assert_eq!(&*log.borrow(), &[1, 3, 2]);
    }

    #[test]
    fn dropped_waiter_cancels_without_granting() {
        let mut sim = Simulator::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut gate = Gate::new();
        let a = probe(&mut sim, &log, 1);
        gate.acquire(&mut sim, vec![5], a);
        let cancelled = Rc::new(RefCell::new(false));
        let saw = Rc::clone(&cancelled);
        let b = sim.completion(move |_, d: trail_sim::Delivered<()>| {
            *saw.borrow_mut() = d.is_err();
        });
        gate.acquire(&mut sim, vec![5], b);
        // Drop the waiting entry wholesale (e.g. the op was aborted).
        gate.waiting.clear();
        sim.run();
        assert!(*cancelled.borrow());
    }
}
