//! The volume engine: several member drivers behind one block device.
//!
//! [`RaidVolume`] composes [`StandardDriver`]s into a linear, RAID-0,
//! RAID-1, or RAID-5 array and implements
//! [`BlockDevice`](trail_blockio::BlockDevice), so anything that drives a
//! single disk — the standard stack, Trail's write-back path — can drive
//! an array unchanged.
//!
//! The interesting machinery is RAID-5's small-write path: a partial
//! stripe write reads the old data and old parity, XORs the deltas into
//! the parity, and writes both back — the classic read-modify-write whose
//! four mechanical I/Os are exactly the cost Trail's log-append front end
//! hides. Full-stripe writes skip the reads; a failed member switches
//! writes to reconstruct mode and reads to on-the-fly XOR reconstruction.
//! Per-stripe serialization (see [`Gate`](crate::Gate)) keeps concurrent
//! parity updates from losing deltas.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use trail_blockio::{
    BlockDevice, IoDone, IoKind, IoRequest, RequestId, StandardDriver, StreamId, TapHandle,
};
use trail_disk::{CommandKind, Disk, DiskError, Lba, ServiceBreakdown, SECTOR_SIZE};
use trail_sim::{
    Completion, Delivered, Fault, FaultKind, FaultSink, FaultTarget, LatencySummary, SimTime,
    Simulator,
};
use trail_telemetry::{JsonValue, RecorderHandle};

use crate::gate::Gate;
use crate::layout::{self, ReadPolicy, VolumeLayout};

/// Mirror-write serialization granularity: writes within the same
/// `2^REGION_SHIFT`-sector region of a RAID-1 volume are ordered, so both
/// mirrors apply overlapping writes identically.
const REGION_SHIFT: u32 = 8;

/// I/O accounting for one member disk.
#[derive(Clone, Debug, Default)]
pub struct MemberStats {
    /// Member-level read latencies (sub-operations, not logical requests).
    pub read_latency: LatencySummary,
    /// Member-level write latencies.
    pub write_latency: LatencySummary,
    /// Sectors read from this member.
    pub sectors_read: u64,
    /// Sectors written to this member.
    pub sectors_written: u64,
}

impl MemberStats {
    fn summary_json(&mut self) -> JsonValue {
        JsonValue::obj(vec![
            ("reads", JsonValue::Num(self.read_latency.count() as f64)),
            ("writes", JsonValue::Num(self.write_latency.count() as f64)),
            ("sectors_read", JsonValue::Num(self.sectors_read as f64)),
            (
                "sectors_written",
                JsonValue::Num(self.sectors_written as f64),
            ),
            (
                "read_mean_ms",
                JsonValue::Num(self.read_latency.mean().as_millis_f64()),
            ),
            (
                "write_mean_ms",
                JsonValue::Num(self.write_latency.mean().as_millis_f64()),
            ),
            (
                "write_p99_ms",
                JsonValue::Num(self.write_latency.percentile(99.0).as_millis_f64()),
            ),
        ])
    }
}

/// Aggregate volume measurements.
#[derive(Clone, Debug, Default)]
pub struct VolumeStats {
    /// Per-member I/O breakdowns, indexed like the member list.
    pub members: Vec<MemberStats>,
    /// Logical read requests accepted.
    pub logical_reads: u64,
    /// Logical write requests accepted.
    pub logical_writes: u64,
    /// End-to-end logical read latencies.
    pub read_latency: LatencySummary,
    /// End-to-end logical write latencies.
    pub write_latency: LatencySummary,
    /// RAID-5 read-modify-write cycles started (one per partial-stripe
    /// span per attempt).
    pub rmw_cycles: u64,
    /// RAID-5 full-stripe writes (parity from new data, no reads).
    pub full_stripe_writes: u64,
    /// RAID-5 spans written in reconstruct mode (a written data member is
    /// failed).
    pub reconstruct_writes: u64,
    /// RAID-5 spans written with the parity member failed.
    pub parityless_writes: u64,
    /// Logical reads that reconstructed data from parity.
    pub degraded_reads: u64,
    /// Members marked failed over the volume's lifetime.
    pub member_failures: u64,
    /// Logical operations retried after discovering a member failure.
    pub retried_ops: u64,
}

impl VolumeStats {
    /// Serializes the stats (per-member breakdowns included) to JSON.
    pub fn summary_json(&mut self) -> JsonValue {
        let members: Vec<JsonValue> = self.members.iter_mut().map(|m| m.summary_json()).collect();
        JsonValue::obj(vec![
            ("logical_reads", JsonValue::Num(self.logical_reads as f64)),
            ("logical_writes", JsonValue::Num(self.logical_writes as f64)),
            (
                "read_mean_ms",
                JsonValue::Num(self.read_latency.mean().as_millis_f64()),
            ),
            (
                "write_mean_ms",
                JsonValue::Num(self.write_latency.mean().as_millis_f64()),
            ),
            (
                "write_p99_ms",
                JsonValue::Num(self.write_latency.percentile(99.0).as_millis_f64()),
            ),
            ("rmw_cycles", JsonValue::Num(self.rmw_cycles as f64)),
            (
                "full_stripe_writes",
                JsonValue::Num(self.full_stripe_writes as f64),
            ),
            (
                "reconstruct_writes",
                JsonValue::Num(self.reconstruct_writes as f64),
            ),
            (
                "parityless_writes",
                JsonValue::Num(self.parityless_writes as f64),
            ),
            ("degraded_reads", JsonValue::Num(self.degraded_reads as f64)),
            (
                "member_failures",
                JsonValue::Num(self.member_failures as f64),
            ),
            ("retried_ops", JsonValue::Num(self.retried_ops as f64)),
            ("members", JsonValue::Arr(members)),
        ])
    }
}

struct Member {
    driver: StandardDriver,
    disk: Disk,
    failed: bool,
}

struct VolInner {
    name: String,
    layout: VolumeLayout,
    members: Vec<Member>,
    member_caps: Vec<u64>,
    capacity: u64,
    next_id: u64,
    rr_cursor: u64,
    gate: Gate,
    outstanding: usize,
    stats: VolumeStats,
    tap: Option<(TapHandle, u32)>,
}

/// A software array over several member drivers. Clones share the volume.
///
/// # Examples
///
/// ```
/// use trail_sim::Simulator;
/// use trail_disk::{profiles, Disk, SECTOR_SIZE};
/// use trail_blockio::{BlockDevice, IoRequest, StandardDriver};
/// use trail_volume::{RaidVolume, VolumeLayout};
///
/// let mut sim = Simulator::new();
/// let members: Vec<StandardDriver> = (0..3)
///     .map(|i| StandardDriver::new(Disk::new(format!("m{i}"), profiles::tiny_test_disk())))
///     .collect();
/// let vol = RaidVolume::new("r5", VolumeLayout::Raid5 { chunk_sectors: 8 }, members);
/// let done = sim.completion(|_, d: trail_sim::Delivered<trail_blockio::IoDone>| {
///     d.expect("small write survives the RMW cycle");
/// });
/// vol.submit(&mut sim, IoRequest::write(3, vec![7; SECTOR_SIZE]), done)?;
/// sim.run();
/// assert_eq!(vol.with_stats(|s| s.rmw_cycles), 1);
/// # Ok::<(), trail_disk::DiskError>(())
/// ```
#[derive(Clone)]
pub struct RaidVolume {
    inner: Rc<RefCell<VolInner>>,
}

impl RaidVolume {
    /// Assembles `members` into a volume with the given layout.
    ///
    /// # Panics
    ///
    /// Panics if fewer members than the layout's minimum are supplied, or
    /// if a chunked layout is given a zero chunk size.
    pub fn new(name: &str, layout: VolumeLayout, members: Vec<StandardDriver>) -> RaidVolume {
        assert!(
            members.len() >= layout.min_members(),
            "{} needs at least {} members, got {}",
            layout.label(),
            layout.min_members(),
            members.len()
        );
        if let VolumeLayout::Raid0 { chunk_sectors } | VolumeLayout::Raid5 { chunk_sectors } =
            layout
        {
            assert!(chunk_sectors > 0, "chunk size must be positive");
        }
        let member_caps: Vec<u64> = members
            .iter()
            .map(|d| d.disk().geometry().total_sectors())
            .collect();
        let capacity = layout.capacity(&member_caps);
        assert!(capacity > 0, "volume has zero addressable capacity");
        let stats = VolumeStats {
            members: vec![MemberStats::default(); members.len()],
            ..VolumeStats::default()
        };
        let members = members
            .into_iter()
            .map(|driver| {
                let disk = driver.disk();
                Member {
                    driver,
                    disk,
                    failed: false,
                }
            })
            .collect();
        RaidVolume {
            inner: Rc::new(RefCell::new(VolInner {
                name: name.to_string(),
                layout,
                members,
                member_caps,
                capacity,
                next_id: 0,
                rr_cursor: 0,
                gate: Gate::new(),
                outstanding: 0,
                stats,
                tap: None,
            })),
        }
    }

    /// The volume's name.
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    /// The layout this volume runs.
    pub fn layout(&self) -> VolumeLayout {
        self.inner.borrow().layout
    }

    /// Number of member disks.
    pub fn member_count(&self) -> usize {
        self.inner.borrow().members.len()
    }

    /// Handles to the member disks, in member order.
    pub fn member_disks(&self) -> Vec<Disk> {
        self.inner
            .borrow()
            .members
            .iter()
            .map(|m| m.disk.clone())
            .collect()
    }

    /// Handles to the member drivers, in member order.
    pub fn member_drivers(&self) -> Vec<StandardDriver> {
        self.inner
            .borrow()
            .members
            .iter()
            .map(|m| m.driver.clone())
            .collect()
    }

    /// Indices of members the volume has marked failed.
    pub fn failed_members(&self) -> Vec<usize> {
        self.inner
            .borrow()
            .members
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.failed.then_some(i))
            .collect()
    }

    /// Whether any member has failed.
    pub fn is_degraded(&self) -> bool {
        self.inner.borrow().members.iter().any(|m| m.failed)
    }

    /// Addressable capacity in sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.inner.borrow().capacity
    }

    /// Fails member `index` now: the disk stops servicing commands and the
    /// volume plans degraded from this point on.
    pub fn fail_member(&self, now: SimTime, index: usize) {
        let mut v = self.inner.borrow_mut();
        if v.members[index].failed {
            return;
        }
        v.members[index].disk.fail(now);
        v.members[index].failed = true;
        v.stats.member_failures += 1;
    }

    /// A fault-plane sink for this volume: registering it on a
    /// [`FaultClock`](trail_sim::FaultClock) makes the volume honor
    /// [`FaultTarget::Member`] faults whose `volume` field equals
    /// `index`. A `Fail` marks the member failed at the volume level
    /// (degraded planning from that instant); power cuts and transient
    /// charges pass through to the member disk without degrading the
    /// array.
    pub fn fault_sink(&self, index: usize) -> Rc<dyn FaultSink> {
        Rc::new(VolumeFaultSink {
            vol: self.clone(),
            index,
        })
    }

    /// Runs `f` against the accumulated statistics.
    pub fn with_stats<R>(&self, f: impl FnOnce(&VolumeStats) -> R) -> R {
        f(&self.inner.borrow().stats)
    }

    /// Serializes the accumulated statistics to JSON.
    pub fn stats_json(&self) -> JsonValue {
        self.inner.borrow_mut().stats.summary_json()
    }

    /// Submits a logical request against the volume's address space;
    /// `done` is delivered when every member I/O it expands to (including
    /// parity maintenance) has completed.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::OutOfRange`] / [`DiskError::BadDataLength`]
    /// for malformed requests, or [`DiskError::Failed`] when too many
    /// members have failed for the layout to service the request; `done`
    /// is then cancelled.
    pub fn submit(
        &self,
        sim: &mut Simulator,
        req: IoRequest,
        done: Completion<IoDone>,
    ) -> Result<RequestId, DiskError> {
        let op = {
            let mut v = self.inner.borrow_mut();
            let sectors = req.kind.sectors();
            if sectors == 0 {
                return Err(DiskError::BadDataLength);
            }
            if let IoKind::Write { data } = &req.kind {
                if data.len() % SECTOR_SIZE != 0 {
                    return Err(DiskError::BadDataLength);
                }
            }
            if req.lba + u64::from(sectors) > v.capacity {
                return Err(DiskError::OutOfRange);
            }
            let failed = v.members.iter().filter(|m| m.failed).count();
            let serviceable = match v.layout {
                VolumeLayout::Linear => layout::linear_map(&v.member_caps, req.lba, sectors)
                    .iter()
                    .all(|f| !v.members[f.member].failed),
                VolumeLayout::Raid0 { chunk_sectors } => {
                    layout::raid0_map(v.members.len(), chunk_sectors, req.lba, sectors)
                        .iter()
                        .all(|f| !v.members[f.member].failed)
                }
                VolumeLayout::Raid1 { .. } => failed < v.members.len(),
                VolumeLayout::Raid5 { .. } => failed < 2,
            };
            if !serviceable {
                return Err(DiskError::Failed);
            }
            let id = RequestId(v.next_id);
            v.next_id += 1;
            v.outstanding += 1;
            let is_read = req.kind.is_read();
            if is_read {
                v.stats.logical_reads += 1;
            } else {
                v.stats.logical_writes += 1;
            }
            if let Some((tap, dev)) = &v.tap {
                tap.on_submit(sim.now(), *dev, req.lba, sectors, is_read, req.stream);
            }
            let payload = match req.kind {
                IoKind::Read { .. } => Payload::Read,
                IoKind::Write { data } => Payload::Write(Rc::new(data)),
            };
            Rc::new(RefCell::new(Op {
                id,
                lba: req.lba,
                sectors,
                payload,
                stream: req.stream,
                issued: sim.now(),
                attempt: 0,
                keys: Vec::new(),
                keys_held: false,
                done: Some(done),
            }))
        };
        let id = op.borrow().id;
        start(self, sim, &op);
        Ok(id)
    }
}

struct VolumeFaultSink {
    vol: RaidVolume,
    index: usize,
}

impl FaultSink for VolumeFaultSink {
    fn apply(&self, sim: &mut Simulator, fault: &Fault) -> bool {
        let member = match fault.target {
            FaultTarget::Member { volume, member } if volume == self.index => member,
            _ => return false,
        };
        if member >= self.vol.member_count() {
            return false;
        }
        match fault.kind {
            FaultKind::Fail => self.vol.fail_member(sim.now(), member),
            FaultKind::PowerCut => self.vol.member_disks()[member].power_cut(sim.now()),
            FaultKind::TransientError { count } => {
                self.vol.member_disks()[member].inject_transient_errors(count)
            }
            FaultKind::LatencySpike { extra, count } => {
                self.vol.member_disks()[member].inject_latency_spike(extra, count)
            }
        }
        true
    }
}

impl fmt::Debug for RaidVolume {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.inner.borrow();
        f.debug_struct("RaidVolume")
            .field("name", &v.name)
            .field("layout", &v.layout)
            .field("members", &v.members.len())
            .field(
                "failed",
                &v.members
                    .iter()
                    .enumerate()
                    .filter_map(|(i, m)| m.failed.then_some(i))
                    .collect::<Vec<_>>(),
            )
            .field("outstanding", &v.outstanding)
            .finish()
    }
}

impl BlockDevice for RaidVolume {
    fn submit(
        &self,
        sim: &mut Simulator,
        req: IoRequest,
        done: Completion<IoDone>,
    ) -> Result<RequestId, DiskError> {
        RaidVolume::submit(self, sim, req, done)
    }

    fn capacity_sectors(&self) -> u64 {
        RaidVolume::capacity_sectors(self)
    }

    fn pending(&self) -> usize {
        self.inner.borrow().outstanding
    }

    fn set_recorder(&self, recorder: RecorderHandle) {
        let v = self.inner.borrow();
        for m in &v.members {
            m.driver.set_recorder(Rc::clone(&recorder));
        }
    }

    fn set_tap(&self, tap: TapHandle, dev: u32) {
        self.inner.borrow_mut().tap = Some((tap, dev));
    }
}

// ---------------------------------------------------------------------------
// The operation state machine.
// ---------------------------------------------------------------------------

enum Payload {
    Read,
    // Shared so a retry after a mid-operation member failure can replan
    // from the original bytes.
    Write(Rc<Vec<u8>>),
}

struct Op {
    id: RequestId,
    lba: Lba,
    sectors: u32,
    payload: Payload,
    stream: StreamId,
    issued: SimTime,
    attempt: u32,
    keys: Vec<u64>,
    keys_held: bool,
    done: Option<Completion<IoDone>>,
}

type OpRef = Rc<RefCell<Op>>;

/// Serialization keys the operation must hold before planning.
fn needed_keys(v: &VolInner, op: &Op) -> Vec<u64> {
    let is_read = matches!(op.payload, Payload::Read);
    let last = op.lba + u64::from(op.sectors) - 1;
    match v.layout {
        VolumeLayout::Raid1 { .. } if !is_read => {
            ((op.lba >> REGION_SHIFT)..=(last >> REGION_SHIFT)).collect()
        }
        VolumeLayout::Raid5 { chunk_sectors } => {
            // Writes always serialize per stripe (parity updates must not
            // interleave); reads only when reconstruction may be involved.
            if is_read && !v.members.iter().any(|m| m.failed) {
                return Vec::new();
            }
            let dps = u64::from(chunk_sectors) * (v.members.len() as u64 - 1);
            ((op.lba / dps)..=(last / dps)).collect()
        }
        _ => Vec::new(),
    }
}

fn start(vol: &RaidVolume, sim: &mut Simulator, op: &OpRef) {
    let keys = {
        let v = vol.inner.borrow();
        let o = op.borrow();
        needed_keys(&v, &o)
    };
    if keys.is_empty() {
        plan(vol, sim, op);
        return;
    }
    op.borrow_mut().keys = keys.clone();
    let vol2 = vol.clone();
    let op2 = Rc::clone(op);
    let granted = sim.completion(move |sim, d: Delivered<()>| {
        if d.is_err() {
            finish_abort(&vol2, sim, &op2);
            return;
        }
        op2.borrow_mut().keys_held = true;
        plan(&vol2, sim, &op2);
    });
    vol.inner.borrow_mut().gate.acquire(sim, keys, granted);
}

/// Releases held keys and runs the operation again from scratch (the
/// degraded-member set may have changed, so keys are recomputed).
fn restart(vol: &RaidVolume, sim: &mut Simulator, op: &OpRef) {
    {
        let mut v = vol.inner.borrow_mut();
        let mut o = op.borrow_mut();
        if o.keys_held {
            let keys = std::mem::take(&mut o.keys);
            o.keys_held = false;
            v.gate.release(sim, &keys);
        } else {
            o.keys.clear();
        }
    }
    start(vol, sim, op);
}

fn plan(vol: &RaidVolume, sim: &mut Simulator, op: &OpRef) {
    let lay = vol.inner.borrow().layout;
    let is_read = matches!(op.borrow().payload, Payload::Read);
    match (lay, is_read) {
        (VolumeLayout::Linear | VolumeLayout::Raid0 { .. }, _) => plan_striped(vol, sim, op),
        (VolumeLayout::Raid1 { read_policy }, true) => plan_mirror_read(vol, sim, op, read_policy),
        (VolumeLayout::Raid1 { .. }, false) => plan_mirror_write(vol, sim, op),
        (VolumeLayout::Raid5 { chunk_sectors }, true) => {
            plan_raid5_read(vol, sim, op, chunk_sectors)
        }
        (VolumeLayout::Raid5 { chunk_sectors }, false) => {
            plan_raid5_write(vol, sim, op, chunk_sectors)
        }
    }
}

fn finish_ok(
    vol: &RaidVolume,
    sim: &mut Simulator,
    op: &OpRef,
    data: Option<Vec<u8>>,
    breakdown: ServiceBreakdown,
) {
    let now = sim.now();
    let (done, io) = {
        let mut v = vol.inner.borrow_mut();
        let mut o = op.borrow_mut();
        if o.keys_held {
            let keys = std::mem::take(&mut o.keys);
            o.keys_held = false;
            v.gate.release(sim, &keys);
        }
        v.outstanding -= 1;
        let latency = now.duration_since(o.issued);
        let kind = match o.payload {
            Payload::Read => {
                v.stats.read_latency.record(latency);
                CommandKind::Read
            }
            Payload::Write(_) => {
                v.stats.write_latency.record(latency);
                CommandKind::Write
            }
        };
        let done = o.done.take().expect("operation finishes once");
        let io = IoDone {
            id: o.id,
            lba: o.lba,
            kind,
            data,
            issued: o.issued,
            completed: now,
            breakdown,
        };
        (done, io)
    };
    done.complete(sim, io);
}

/// Ends the operation with a cancellation: the request cannot be serviced
/// (too many failures) or the cancellation was not a member failure (a
/// power event tearing the whole node down).
fn finish_abort(vol: &RaidVolume, sim: &mut Simulator, op: &OpRef) {
    let done = {
        let mut v = vol.inner.borrow_mut();
        let mut o = op.borrow_mut();
        if o.keys_held {
            let keys = std::mem::take(&mut o.keys);
            o.keys_held = false;
            v.gate.release(sim, &keys);
        }
        v.outstanding -= 1;
        o.done.take()
    };
    if let Some(done) = done {
        done.cancel(sim);
    }
}

/// Handles a gather that came back with missing results: marks members the
/// disks report failed, then retries the whole operation degraded, or
/// aborts if the cancellation was not a failure (power loss) or the retry
/// budget is exhausted.
fn after_failure(
    vol: &RaidVolume,
    sim: &mut Simulator,
    op: &OpRef,
    slot_members: &[usize],
    results: &[Option<IoDone>],
) {
    let mut abort = false;
    {
        let mut v = vol.inner.borrow_mut();
        for (slot, r) in results.iter().enumerate() {
            if r.is_some() {
                continue;
            }
            let mi = slot_members[slot];
            if v.members[mi].disk.is_failed() {
                if !v.members[mi].failed {
                    v.members[mi].failed = true;
                    v.stats.member_failures += 1;
                }
            } else {
                abort = true;
            }
        }
    }
    let attempts = {
        let mut o = op.borrow_mut();
        o.attempt += 1;
        o.attempt as usize
    };
    if abort || attempts > vol.member_count() + 1 {
        finish_abort(vol, sim, op);
        return;
    }
    vol.inner.borrow_mut().stats.retried_ops += 1;
    restart(vol, sim, op);
}

/// Submits `ios` to their members and completes `token` with the results
/// once all of them resolve (`None` for cancelled sub-operations). Member
/// latencies are recorded as each sub-operation completes.
fn submit_batch(
    vol: &RaidVolume,
    sim: &mut Simulator,
    ios: Vec<(usize, IoRequest)>,
    token: Completion<Vec<Option<IoDone>>>,
) {
    struct Gather {
        left: usize,
        results: Vec<Option<IoDone>>,
        token: Option<Completion<Vec<Option<IoDone>>>>,
    }
    let n = ios.len();
    if n == 0 {
        token.complete(sim, Vec::new());
        return;
    }
    let gather = Rc::new(RefCell::new(Gather {
        left: n,
        results: vec![None; n],
        token: Some(token),
    }));
    for (slot, (mi, req)) in ios.into_iter().enumerate() {
        let driver = vol.inner.borrow().members[mi].driver.clone();
        let sectors = req.kind.sectors();
        let is_read = req.kind.is_read();
        let vol2 = vol.clone();
        let g = Rc::clone(&gather);
        let sub = sim.completion(move |sim, d: Delivered<IoDone>| {
            let mut gg = g.borrow_mut();
            if let Ok(done) = d {
                let mut v = vol2.inner.borrow_mut();
                let ms = &mut v.stats.members[mi];
                if is_read {
                    ms.read_latency.record(done.latency());
                    ms.sectors_read += u64::from(sectors);
                } else {
                    ms.write_latency.record(done.latency());
                    ms.sectors_written += u64::from(sectors);
                }
                gg.results[slot] = Some(done);
            }
            gg.left -= 1;
            if gg.left == 0 {
                let results = std::mem::take(&mut gg.results);
                let token = gg.token.take().expect("gather completes once");
                drop(gg);
                token.complete(sim, results);
            }
        });
        // A synchronous rejection cancels `sub`, which resolves the slot
        // as `None` on the next step — no special handling here.
        let _ = driver.submit(sim, req, sub);
    }
}

fn slice_payload(payload: &Rc<Vec<u8>>, logical_off: u64, sectors: u32) -> Vec<u8> {
    let a = logical_off as usize * SECTOR_SIZE;
    let b = a + sectors as usize * SECTOR_SIZE;
    payload[a..b].to_vec()
}

/// Breakdown of the critical-path (latest-finishing) sub-operation.
fn latest_breakdown(results: &[Option<IoDone>]) -> ServiceBreakdown {
    results
        .iter()
        .flatten()
        .max_by_key(|d| d.completed)
        .map(|d| d.breakdown)
        .unwrap_or_default()
}

// ---------------------------------------------------------------------------
// Linear / RAID-0.
// ---------------------------------------------------------------------------

fn plan_striped(vol: &RaidVolume, sim: &mut Simulator, op: &OpRef) {
    enum Act {
        Cancel,
        Go {
            ios: Vec<(usize, IoRequest)>,
            slot_members: Vec<usize>,
            metas: Vec<(u64, u32)>,
            is_read: bool,
            total_sectors: u32,
        },
    }
    let act = {
        let v = vol.inner.borrow();
        let o = op.borrow();
        let frags = match v.layout {
            VolumeLayout::Linear => layout::linear_map(&v.member_caps, o.lba, o.sectors),
            VolumeLayout::Raid0 { chunk_sectors } => {
                layout::raid0_map(v.members.len(), chunk_sectors, o.lba, o.sectors)
            }
            _ => unreachable!("plan_striped only handles linear and raid0"),
        };
        if frags.iter().any(|f| v.members[f.member].failed) {
            // No redundancy: a failure under an unmirrored layout is fatal
            // to the request.
            Act::Cancel
        } else {
            let mut ios = Vec::with_capacity(frags.len());
            let mut metas = Vec::with_capacity(frags.len());
            for f in &frags {
                let req = match &o.payload {
                    Payload::Read => IoRequest::read(f.member_lba, f.sectors),
                    Payload::Write(data) => IoRequest::write(
                        f.member_lba,
                        slice_payload(data, f.logical_off, f.sectors),
                    ),
                };
                ios.push((f.member, req.tagged(o.stream)));
                metas.push((f.logical_off, f.sectors));
            }
            Act::Go {
                slot_members: frags.iter().map(|f| f.member).collect(),
                ios,
                metas,
                is_read: matches!(o.payload, Payload::Read),
                total_sectors: o.sectors,
            }
        }
    };
    match act {
        Act::Cancel => finish_abort(vol, sim, op),
        Act::Go {
            ios,
            slot_members,
            metas,
            is_read,
            total_sectors,
        } => {
            let vol2 = vol.clone();
            let op2 = Rc::clone(op);
            let token = sim.completion(move |sim, d: Delivered<Vec<Option<IoDone>>>| {
                let results = match d {
                    Ok(r) => r,
                    Err(_) => {
                        finish_abort(&vol2, sim, &op2);
                        return;
                    }
                };
                if results.iter().any(|r| r.is_none()) {
                    after_failure(&vol2, sim, &op2, &slot_members, &results);
                    return;
                }
                let breakdown = latest_breakdown(&results);
                let data = if is_read {
                    let mut buf = vec![0u8; total_sectors as usize * SECTOR_SIZE];
                    for (slot, (logical_off, sectors)) in metas.iter().enumerate() {
                        let bytes = results[slot]
                            .as_ref()
                            .and_then(|d| d.data.as_deref())
                            .expect("read sub-operations carry data");
                        let a = *logical_off as usize * SECTOR_SIZE;
                        buf[a..a + *sectors as usize * SECTOR_SIZE].copy_from_slice(bytes);
                    }
                    Some(buf)
                } else {
                    None
                };
                finish_ok(&vol2, sim, &op2, data, breakdown);
            });
            submit_batch(vol, sim, ios, token);
        }
    }
}

// ---------------------------------------------------------------------------
// RAID-1.
// ---------------------------------------------------------------------------

fn plan_mirror_read(vol: &RaidVolume, sim: &mut Simulator, op: &OpRef, policy: ReadPolicy) {
    let pick = {
        let mut v = vol.inner.borrow_mut();
        let o = op.borrow();
        let alive: Vec<usize> = v
            .members
            .iter()
            .enumerate()
            .filter_map(|(i, m)| (!m.failed).then_some(i))
            .collect();
        if alive.is_empty() {
            None
        } else {
            let chosen = match policy {
                ReadPolicy::RoundRobin => {
                    let i = (v.rr_cursor % alive.len() as u64) as usize;
                    v.rr_cursor = v.rr_cursor.wrapping_add(1);
                    alive[i]
                }
                ReadPolicy::NearestHead => *alive
                    .iter()
                    .min_by_key(|&&i| {
                        let m = &v.members[i];
                        let target = m
                            .disk
                            .geometry()
                            .lba_to_chs(o.lba)
                            .map(|c| c.cylinder)
                            .unwrap_or(0);
                        let head = m.disk.head_position().cylinder;
                        target.abs_diff(head)
                    })
                    .expect("alive set non-empty"),
            };
            Some((chosen, o.lba, o.sectors, o.stream))
        }
    };
    let Some((member, lba, sectors, stream)) = pick else {
        finish_abort(vol, sim, op);
        return;
    };
    let vol2 = vol.clone();
    let op2 = Rc::clone(op);
    let slot_members = vec![member];
    let token = sim.completion(move |sim, d: Delivered<Vec<Option<IoDone>>>| {
        let results = match d {
            Ok(r) => r,
            Err(_) => {
                finish_abort(&vol2, sim, &op2);
                return;
            }
        };
        match &results[0] {
            Some(done) => {
                let data = done.data.clone();
                let breakdown = done.breakdown;
                finish_ok(&vol2, sim, &op2, data, breakdown);
            }
            None => after_failure(&vol2, sim, &op2, &slot_members, &results),
        }
    });
    let ios = vec![(member, IoRequest::read(lba, sectors).tagged(stream))];
    submit_batch(vol, sim, ios, token);
}

fn plan_mirror_write(vol: &RaidVolume, sim: &mut Simulator, op: &OpRef) {
    let ios = {
        let v = vol.inner.borrow();
        let o = op.borrow();
        let Payload::Write(data) = &o.payload else {
            unreachable!("mirror write plan requires a write payload")
        };
        let ios: Vec<(usize, IoRequest)> = v
            .members
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.failed)
            .map(|(i, _)| {
                (
                    i,
                    IoRequest::write(o.lba, data.as_ref().clone()).tagged(o.stream),
                )
            })
            .collect();
        ios
    };
    if ios.is_empty() {
        finish_abort(vol, sim, op);
        return;
    }
    let slot_members: Vec<usize> = ios.iter().map(|(m, _)| *m).collect();
    let vol2 = vol.clone();
    let op2 = Rc::clone(op);
    let token = sim.completion(move |sim, d: Delivered<Vec<Option<IoDone>>>| {
        let results = match d {
            Ok(r) => r,
            Err(_) => {
                finish_abort(&vol2, sim, &op2);
                return;
            }
        };
        if results.iter().any(|r| r.is_none()) {
            after_failure(&vol2, sim, &op2, &slot_members, &results);
            return;
        }
        let breakdown = latest_breakdown(&results);
        finish_ok(&vol2, sim, &op2, None, breakdown);
    });
    submit_batch(vol, sim, ios, token);
}

// ---------------------------------------------------------------------------
// RAID-5.
// ---------------------------------------------------------------------------

enum ReadPiece {
    Direct {
        slot: usize,
        logical_off: u64,
        sectors: u32,
    },
    /// The target member failed: XOR of the same range on every surviving
    /// member (data and parity alike) reconstructs it.
    Recon {
        slots: Vec<usize>,
        logical_off: u64,
        sectors: u32,
    },
}

fn plan_raid5_read(vol: &RaidVolume, sim: &mut Simulator, op: &OpRef, chunk: u32) {
    let planned = {
        let mut v = vol.inner.borrow_mut();
        let o = op.borrow();
        let n = v.members.len();
        let failed: Vec<bool> = v.members.iter().map(|m| m.failed).collect();
        if failed.iter().filter(|f| **f).count() >= 2 {
            None
        } else {
            let c64 = u64::from(chunk);
            let segs = layout::raid5_map(n, chunk, o.lba, o.sectors);
            let mut ios = Vec::new();
            let mut pieces = Vec::new();
            let mut degraded = false;
            for seg in &segs {
                if !failed[seg.member] {
                    pieces.push(ReadPiece::Direct {
                        slot: ios.len(),
                        logical_off: seg.logical_off,
                        sectors: seg.sectors,
                    });
                    ios.push((
                        seg.member,
                        IoRequest::read(seg.member_lba(chunk), seg.sectors).tagged(o.stream),
                    ));
                } else {
                    degraded = true;
                    let mut slots = Vec::with_capacity(n - 1);
                    for m in 0..n {
                        if m == seg.member {
                            continue;
                        }
                        slots.push(ios.len());
                        ios.push((
                            m,
                            IoRequest::read(seg.stripe * c64 + seg.off, seg.sectors)
                                .tagged(o.stream),
                        ));
                    }
                    pieces.push(ReadPiece::Recon {
                        slots,
                        logical_off: seg.logical_off,
                        sectors: seg.sectors,
                    });
                }
            }
            if degraded {
                v.stats.degraded_reads += 1;
            }
            Some((ios, pieces, o.sectors))
        }
    };
    let Some((ios, pieces, total_sectors)) = planned else {
        finish_abort(vol, sim, op);
        return;
    };
    let slot_members: Vec<usize> = ios.iter().map(|(m, _)| *m).collect();
    let vol2 = vol.clone();
    let op2 = Rc::clone(op);
    let token = sim.completion(move |sim, d: Delivered<Vec<Option<IoDone>>>| {
        let results = match d {
            Ok(r) => r,
            Err(_) => {
                finish_abort(&vol2, sim, &op2);
                return;
            }
        };
        if results.iter().any(|r| r.is_none()) {
            after_failure(&vol2, sim, &op2, &slot_members, &results);
            return;
        }
        let mut buf = vec![0u8; total_sectors as usize * SECTOR_SIZE];
        for piece in &pieces {
            match piece {
                ReadPiece::Direct {
                    slot,
                    logical_off,
                    sectors,
                } => {
                    let bytes = results[*slot]
                        .as_ref()
                        .and_then(|d| d.data.as_deref())
                        .expect("read sub-operations carry data");
                    let a = *logical_off as usize * SECTOR_SIZE;
                    buf[a..a + *sectors as usize * SECTOR_SIZE].copy_from_slice(bytes);
                }
                ReadPiece::Recon {
                    slots,
                    logical_off,
                    sectors,
                } => {
                    let a = *logical_off as usize * SECTOR_SIZE;
                    let out = &mut buf[a..a + *sectors as usize * SECTOR_SIZE];
                    for slot in slots {
                        let bytes = results[*slot]
                            .as_ref()
                            .and_then(|d| d.data.as_deref())
                            .expect("read sub-operations carry data");
                        layout::xor_into(out, bytes);
                    }
                }
            }
        }
        let breakdown = latest_breakdown(&results);
        finish_ok(&vol2, sim, &op2, Some(buf), breakdown);
    });
    submit_batch(vol, sim, ios, token);
}

enum SpanMode {
    /// Whole stripe covered: parity is the XOR of the new data, no reads.
    Full,
    /// Parity member failed: write the data segments only.
    ParityLess,
    /// Partial stripe, everyone involved alive: read old data + old
    /// parity, fold the deltas into the parity, write both back.
    Rmw {
        seg_slots: Vec<usize>,
        parity_slot: usize,
    },
    /// A written data member is failed: rebuild the stripe's old contents
    /// from the survivors, overlay the new data, recompute parity.
    Reconstruct {
        failed_chunk: usize,
        chunk_slots: Vec<(usize, usize)>,
        parity_slot: usize,
    },
}

struct SpanPlan {
    stripe: u64,
    parity_member: usize,
    lo: u64,
    hi: u64,
    segs: Vec<layout::R5Seg>,
    mode: SpanMode,
}

fn plan_raid5_write(vol: &RaidVolume, sim: &mut Simulator, op: &OpRef, chunk: u32) {
    let planned = {
        let mut v = vol.inner.borrow_mut();
        let o = op.borrow();
        let n = v.members.len();
        let failed: Vec<bool> = v.members.iter().map(|m| m.failed).collect();
        if failed.iter().filter(|f| **f).count() >= 2 {
            None
        } else {
            let c64 = u64::from(chunk);
            let mut reads: Vec<(usize, IoRequest)> = Vec::new();
            let mut plans: Vec<SpanPlan> = Vec::new();
            for span in layout::raid5_write_stripes(n, chunk, o.lba, o.sectors) {
                let range_sectors = (span.hi - span.lo) as u32;
                let range_lba = span.stripe * c64 + span.lo;
                let mode = if failed[span.parity_member] {
                    v.stats.parityless_writes += 1;
                    SpanMode::ParityLess
                } else if span.full {
                    v.stats.full_stripe_writes += 1;
                    SpanMode::Full
                } else if let Some(fc) =
                    span.segs.iter().find(|s| failed[s.member]).map(|s| s.chunk)
                {
                    v.stats.reconstruct_writes += 1;
                    let mut chunk_slots = Vec::with_capacity(n - 2);
                    for ch in 0..n - 1 {
                        if ch == fc {
                            continue;
                        }
                        let m = layout::raid5_data_member(n, span.stripe, ch);
                        chunk_slots.push((ch, reads.len()));
                        reads.push((
                            m,
                            IoRequest::read(range_lba, range_sectors).tagged(o.stream),
                        ));
                    }
                    let parity_slot = reads.len();
                    reads.push((
                        span.parity_member,
                        IoRequest::read(range_lba, range_sectors).tagged(o.stream),
                    ));
                    SpanMode::Reconstruct {
                        failed_chunk: fc,
                        chunk_slots,
                        parity_slot,
                    }
                } else {
                    v.stats.rmw_cycles += 1;
                    let mut seg_slots = Vec::with_capacity(span.segs.len());
                    for seg in &span.segs {
                        seg_slots.push(reads.len());
                        reads.push((
                            seg.member,
                            IoRequest::read(seg.member_lba(chunk), seg.sectors).tagged(o.stream),
                        ));
                    }
                    let parity_slot = reads.len();
                    reads.push((
                        span.parity_member,
                        IoRequest::read(range_lba, range_sectors).tagged(o.stream),
                    ));
                    SpanMode::Rmw {
                        seg_slots,
                        parity_slot,
                    }
                };
                plans.push(SpanPlan {
                    stripe: span.stripe,
                    parity_member: span.parity_member,
                    lo: span.lo,
                    hi: span.hi,
                    segs: span.segs,
                    mode,
                });
            }
            Some((reads, plans))
        }
    };
    let Some((reads, plans)) = planned else {
        finish_abort(vol, sim, op);
        return;
    };
    if reads.is_empty() {
        raid5_phase2(vol, sim, op, &plans, &[], chunk);
        return;
    }
    let slot_members: Vec<usize> = reads.iter().map(|(m, _)| *m).collect();
    let vol2 = vol.clone();
    let op2 = Rc::clone(op);
    let token = sim.completion(move |sim, d: Delivered<Vec<Option<IoDone>>>| {
        let results = match d {
            Ok(r) => r,
            Err(_) => {
                finish_abort(&vol2, sim, &op2);
                return;
            }
        };
        if results.iter().any(|r| r.is_none()) {
            after_failure(&vol2, sim, &op2, &slot_members, &results);
            return;
        }
        raid5_phase2(&vol2, sim, &op2, &plans, &results, chunk);
    });
    submit_batch(vol, sim, reads, token);
}

fn read_bytes(results: &[Option<IoDone>], slot: usize) -> &[u8] {
    results[slot]
        .as_ref()
        .and_then(|d| d.data.as_deref())
        .expect("phase-1 reads carry data")
}

fn raid5_phase2(
    vol: &RaidVolume,
    sim: &mut Simulator,
    op: &OpRef,
    plans: &[SpanPlan],
    results: &[Option<IoDone>],
    chunk: u32,
) {
    let writes = {
        let v = vol.inner.borrow();
        let o = op.borrow();
        let Payload::Write(payload) = &o.payload else {
            unreachable!("raid5 phase 2 requires a write payload")
        };
        let n = v.members.len();
        let failed: Vec<bool> = v.members.iter().map(|m| m.failed).collect();
        let c64 = u64::from(chunk);
        let mut writes: Vec<(usize, IoRequest)> = Vec::new();
        for plan in plans {
            let range_lba = plan.stripe * c64 + plan.lo;
            let range_bytes = (plan.hi - plan.lo) as usize * SECTOR_SIZE;
            match &plan.mode {
                SpanMode::Full => {
                    let mut parity = vec![0u8; chunk as usize * SECTOR_SIZE];
                    for seg in &plan.segs {
                        let new = slice_payload(payload, seg.logical_off, seg.sectors);
                        layout::xor_into(&mut parity, &new);
                        if !failed[seg.member] {
                            writes.push((
                                seg.member,
                                IoRequest::write(seg.member_lba(chunk), new).tagged(o.stream),
                            ));
                        }
                    }
                    writes.push((
                        plan.parity_member,
                        IoRequest::write(plan.stripe * c64, parity).tagged(o.stream),
                    ));
                }
                SpanMode::ParityLess => {
                    for seg in &plan.segs {
                        let new = slice_payload(payload, seg.logical_off, seg.sectors);
                        writes.push((
                            seg.member,
                            IoRequest::write(seg.member_lba(chunk), new).tagged(o.stream),
                        ));
                    }
                }
                SpanMode::Rmw {
                    seg_slots,
                    parity_slot,
                } => {
                    let mut parity = read_bytes(results, *parity_slot).to_vec();
                    for (i, seg) in plan.segs.iter().enumerate() {
                        let old = read_bytes(results, seg_slots[i]);
                        let new = slice_payload(payload, seg.logical_off, seg.sectors);
                        let base = (seg.off - plan.lo) as usize * SECTOR_SIZE;
                        for (j, (ob, nb)) in old.iter().zip(&new).enumerate() {
                            parity[base + j] ^= ob ^ nb;
                        }
                        writes.push((
                            seg.member,
                            IoRequest::write(seg.member_lba(chunk), new).tagged(o.stream),
                        ));
                    }
                    writes.push((
                        plan.parity_member,
                        IoRequest::write(range_lba, parity).tagged(o.stream),
                    ));
                }
                SpanMode::Reconstruct {
                    failed_chunk,
                    chunk_slots,
                    parity_slot,
                } => {
                    // Old contents of every data chunk row over [lo, hi):
                    // survivors are read directly, the failed one is parity
                    // XOR the survivors.
                    let mut rows: Vec<Vec<u8>> = vec![Vec::new(); n - 1];
                    let mut failed_old = read_bytes(results, *parity_slot).to_vec();
                    for (ch, slot) in chunk_slots {
                        let bytes = read_bytes(results, *slot);
                        layout::xor_into(&mut failed_old, bytes);
                        rows[*ch] = bytes.to_vec();
                    }
                    rows[*failed_chunk] = failed_old;
                    for seg in &plan.segs {
                        let new = slice_payload(payload, seg.logical_off, seg.sectors);
                        let base = (seg.off - plan.lo) as usize * SECTOR_SIZE;
                        rows[seg.chunk][base..base + new.len()].copy_from_slice(&new);
                        if !failed[seg.member] {
                            writes.push((
                                seg.member,
                                IoRequest::write(seg.member_lba(chunk), new).tagged(o.stream),
                            ));
                        }
                    }
                    let mut parity = vec![0u8; range_bytes];
                    for row in &rows {
                        layout::xor_into(&mut parity, row);
                    }
                    writes.push((
                        plan.parity_member,
                        IoRequest::write(range_lba, parity).tagged(o.stream),
                    ));
                }
            }
        }
        writes
    };
    let slot_members: Vec<usize> = writes.iter().map(|(m, _)| *m).collect();
    let vol2 = vol.clone();
    let op2 = Rc::clone(op);
    let token = sim.completion(move |sim, d: Delivered<Vec<Option<IoDone>>>| {
        let results = match d {
            Ok(r) => r,
            Err(_) => {
                finish_abort(&vol2, sim, &op2);
                return;
            }
        };
        if results.iter().any(|r| r.is_none()) {
            after_failure(&vol2, sim, &op2, &slot_members, &results);
            return;
        }
        let breakdown = latest_breakdown(&results);
        finish_ok(&vol2, sim, &op2, None, breakdown);
    });
    submit_batch(vol, sim, writes, token);
}

#[cfg(test)]
mod tests {
    use super::*;
    use trail_disk::profiles;
    use trail_sim::SimDuration;

    fn volume(layout: VolumeLayout, n: usize) -> RaidVolume {
        let members: Vec<StandardDriver> = (0..n)
            .map(|i| StandardDriver::new(Disk::new(format!("m{i}"), profiles::tiny_test_disk())))
            .collect();
        RaidVolume::new("vol", layout, members)
    }

    fn pattern(sectors: usize, seed: u8) -> Vec<u8> {
        (0..sectors * SECTOR_SIZE)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    fn write_ok(sim: &mut Simulator, vol: &RaidVolume, lba: Lba, data: Vec<u8>) {
        let done = sim.completion(|_, d: Delivered<IoDone>| {
            d.expect("write completes");
        });
        vol.submit(sim, IoRequest::write(lba, data), done)
            .expect("write accepted");
        sim.run();
    }

    fn read_back(sim: &mut Simulator, vol: &RaidVolume, lba: Lba, count: u32) -> Vec<u8> {
        let out: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&out);
        let done = sim.completion(move |_, d: Delivered<IoDone>| {
            let done = d.expect("read completes");
            *sink.borrow_mut() = done.data.expect("read returns data");
        });
        vol.submit(sim, IoRequest::read(lba, count), done)
            .expect("read accepted");
        sim.run();
        Rc::try_unwrap(out).expect("read landed").into_inner()
    }

    #[test]
    fn raid0_round_trips_across_chunks() {
        let mut sim = Simulator::new();
        let vol = volume(VolumeLayout::Raid0 { chunk_sectors: 4 }, 3);
        let data = pattern(10, 3);
        write_ok(&mut sim, &vol, 2, data.clone());
        assert_eq!(read_back(&mut sim, &vol, 2, 10), data);
        // The 10-sector write at lba 2 spans chunks on all three members.
        let touched =
            vol.with_stats(|s| s.members.iter().filter(|m| m.sectors_written > 0).count());
        assert_eq!(touched, 3);
    }

    #[test]
    fn linear_round_trips_across_member_boundary() {
        let mut sim = Simulator::new();
        let vol = volume(VolumeLayout::Linear, 2);
        let per_member = vol.capacity_sectors() / 2;
        let data = pattern(6, 9);
        write_ok(&mut sim, &vol, per_member - 3, data.clone());
        assert_eq!(read_back(&mut sim, &vol, per_member - 3, 6), data);
        let touched =
            vol.with_stats(|s| s.members.iter().filter(|m| m.sectors_written > 0).count());
        assert_eq!(touched, 2);
    }

    #[test]
    fn raid1_reads_hit_both_mirrors_round_robin() {
        let mut sim = Simulator::new();
        let vol = volume(
            VolumeLayout::Raid1 {
                read_policy: ReadPolicy::RoundRobin,
            },
            2,
        );
        let data = pattern(2, 5);
        write_ok(&mut sim, &vol, 7, data.clone());
        assert_eq!(read_back(&mut sim, &vol, 7, 2), data);
        assert_eq!(read_back(&mut sim, &vol, 7, 2), data);
        let reads: Vec<u64> = vol.with_stats(|s| {
            s.members
                .iter()
                .map(|m| m.read_latency.count() as u64)
                .collect()
        });
        assert_eq!(reads, vec![1, 1], "round-robin alternates mirrors");
        let writes: Vec<u64> =
            vol.with_stats(|s| s.members.iter().map(|m| m.sectors_written).collect());
        assert_eq!(writes, vec![2, 2], "both mirrors receive every write");
    }

    #[test]
    fn raid5_small_write_is_rmw_and_full_stripe_is_not() {
        let mut sim = Simulator::new();
        let vol = volume(VolumeLayout::Raid5 { chunk_sectors: 4 }, 3);
        // Partial: 1 sector out of the 8-sector stripe row.
        write_ok(&mut sim, &vol, 1, pattern(1, 1));
        assert_eq!(vol.with_stats(|s| s.rmw_cycles), 1);
        assert_eq!(vol.with_stats(|s| s.full_stripe_writes), 0);
        // Full: the entire second stripe row (lba 8..16).
        write_ok(&mut sim, &vol, 8, pattern(8, 2));
        assert_eq!(vol.with_stats(|s| s.full_stripe_writes), 1);
        // An RMW costs 2 reads + 2 writes on the members.
        let member_reads: u64 = vol.with_stats(|s| {
            s.members
                .iter()
                .map(|m| m.read_latency.count() as u64)
                .sum()
        });
        assert_eq!(member_reads, 2);
    }

    #[test]
    fn raid5_degraded_read_reconstructs_bytes() {
        let mut sim = Simulator::new();
        let vol = volume(VolumeLayout::Raid5 { chunk_sectors: 4 }, 3);
        let data = pattern(12, 7);
        write_ok(&mut sim, &vol, 0, data.clone());
        vol.fail_member(sim.now(), 0);
        assert_eq!(read_back(&mut sim, &vol, 0, 12), data);
        assert!(vol.with_stats(|s| s.degraded_reads) >= 1);
        assert_eq!(vol.failed_members(), vec![0]);
    }

    #[test]
    fn raid5_degraded_write_then_full_recovery_read() {
        let mut sim = Simulator::new();
        let vol = volume(VolumeLayout::Raid5 { chunk_sectors: 4 }, 3);
        write_ok(&mut sim, &vol, 0, pattern(16, 1));
        vol.fail_member(sim.now(), 1);
        // Overwrite a partial range while degraded; the failed member's
        // new data lives only in parity.
        let newer = pattern(6, 8);
        write_ok(&mut sim, &vol, 2, newer.clone());
        assert_eq!(read_back(&mut sim, &vol, 2, 6), newer);
        let mut whole = pattern(16, 1);
        whole[2 * SECTOR_SIZE..8 * SECTOR_SIZE].copy_from_slice(&newer);
        assert_eq!(read_back(&mut sim, &vol, 0, 16), whole);
    }

    #[test]
    fn raid1_write_survives_mid_flight_member_failure() {
        let mut sim = Simulator::new();
        let vol = volume(
            VolumeLayout::Raid1 {
                read_policy: ReadPolicy::RoundRobin,
            },
            2,
        );
        let clock = trail_sim::FaultClock::new();
        clock.register(vol.fault_sink(0));
        clock.arm(
            &mut sim,
            &trail_sim::FaultPlan::member_fail(0, 0, SimDuration::from_nanos(50)),
        );
        let data = pattern(4, 4);
        write_ok(&mut sim, &vol, 3, data.clone());
        assert_eq!(vol.failed_members(), vec![0]);
        // The survivor holds the bytes.
        assert_eq!(read_back(&mut sim, &vol, 3, 4), data);
        assert_eq!(vol.with_stats(|s| s.member_failures), 1);
    }

    #[test]
    fn too_many_failures_reject_submission() {
        let mut sim = Simulator::new();
        let vol = volume(VolumeLayout::Raid5 { chunk_sectors: 4 }, 3);
        vol.fail_member(sim.now(), 0);
        vol.fail_member(sim.now(), 2);
        let done = sim.completion(|_, d: Delivered<IoDone>| assert!(d.is_err()));
        assert_eq!(
            vol.submit(&mut sim, IoRequest::read(0, 1), done),
            Err(DiskError::Failed)
        );
        sim.run();
    }

    #[test]
    fn malformed_requests_are_rejected() {
        let mut sim = Simulator::new();
        let vol = volume(VolumeLayout::Raid0 { chunk_sectors: 4 }, 2);
        let cap = vol.capacity_sectors();
        let done = sim.completion(|_, d: Delivered<IoDone>| assert!(d.is_err()));
        assert_eq!(
            vol.submit(&mut sim, IoRequest::read(cap - 1, 2), done),
            Err(DiskError::OutOfRange)
        );
        let done = sim.completion(|_, d: Delivered<IoDone>| assert!(d.is_err()));
        assert_eq!(
            vol.submit(&mut sim, IoRequest::read(0, 0), done),
            Err(DiskError::BadDataLength)
        );
        let done = sim.completion(|_, d: Delivered<IoDone>| assert!(d.is_err()));
        assert_eq!(
            vol.submit(&mut sim, IoRequest::write(0, vec![1; 100]), done),
            Err(DiskError::BadDataLength)
        );
        sim.run();
        assert_eq!(vol.with_stats(|s| s.logical_reads + s.logical_writes), 0);
    }

    #[test]
    fn concurrent_rmw_on_one_stripe_serializes_through_the_gate() {
        let mut sim = Simulator::new();
        let vol = volume(VolumeLayout::Raid5 { chunk_sectors: 4 }, 3);
        // Two overlapping small writes to the same stripe, submitted
        // back-to-back: the gate must order their parity cycles, so the
        // final parity reflects both (verified via a degraded read).
        let a = pattern(2, 11);
        let b = pattern(2, 22);
        let d1 = sim.completion(|_, d: Delivered<IoDone>| {
            d.expect("first write completes");
        });
        let d2 = sim.completion(|_, d: Delivered<IoDone>| {
            d.expect("second write completes");
        });
        vol.submit(&mut sim, IoRequest::write(0, a), d1).unwrap();
        vol.submit(&mut sim, IoRequest::write(1, b.clone()), d2)
            .unwrap();
        sim.run();
        // lba 1 was written last by op 2; lba 0 only by op 1.
        vol.fail_member(sim.now(), 0);
        let got = read_back(&mut sim, &vol, 1, 1);
        assert_eq!(got, b[..SECTOR_SIZE].to_vec());
    }
}
