//! Pure address arithmetic for every array layout.
//!
//! Everything here is deterministic integer math with no I/O, so the
//! parity/striping algebra can be unit- and property-tested in isolation
//! from the asynchronous volume engine.

use trail_disk::Lba;

/// How a volume arranges its members.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VolumeLayout {
    /// JBOD concatenation: members appended end to end.
    Linear,
    /// RAID-0 striping with a configurable chunk size.
    Raid0 {
        /// Sectors per chunk (stripe unit).
        chunk_sectors: u32,
    },
    /// RAID-1 mirroring: every member holds a full copy.
    Raid1 {
        /// Which mirror services a read.
        read_policy: ReadPolicy,
    },
    /// RAID-5 rotating parity (left-asymmetric), small writes via
    /// read-modify-write.
    Raid5 {
        /// Sectors per chunk (stripe unit).
        chunk_sectors: u32,
    },
}

impl VolumeLayout {
    /// Short stable label ("linear", "raid0", "raid1", "raid5").
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            VolumeLayout::Linear => "linear",
            VolumeLayout::Raid0 { .. } => "raid0",
            VolumeLayout::Raid1 { .. } => "raid1",
            VolumeLayout::Raid5 { .. } => "raid5",
        }
    }

    /// Fewest members the layout operates with.
    #[must_use]
    pub fn min_members(&self) -> usize {
        match self {
            VolumeLayout::Linear => 1,
            VolumeLayout::Raid0 { .. } | VolumeLayout::Raid1 { .. } => 2,
            VolumeLayout::Raid5 { .. } => 3,
        }
    }

    /// Addressable sectors given the members' raw capacities.
    ///
    /// Striped layouts round each member down to a whole number of
    /// chunks of the *smallest* member; RAID-1 exposes the smallest
    /// member; RAID-5 gives one member's worth to parity.
    #[must_use]
    pub fn capacity(&self, member_caps: &[u64]) -> u64 {
        let n = member_caps.len() as u64;
        let min = member_caps.iter().copied().min().unwrap_or(0);
        match self {
            VolumeLayout::Linear => member_caps.iter().sum(),
            VolumeLayout::Raid0 { chunk_sectors } => {
                let c = u64::from(*chunk_sectors);
                (min / c) * c * n
            }
            VolumeLayout::Raid1 { .. } => min,
            VolumeLayout::Raid5 { chunk_sectors } => {
                let c = u64::from(*chunk_sectors);
                (min / c) * c * (n - 1)
            }
        }
    }
}

/// Which mirror a RAID-1 read goes to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadPolicy {
    /// The member whose arm is closest to the target cylinder.
    NearestHead,
    /// Strict rotation over the surviving members.
    RoundRobin,
}

impl ReadPolicy {
    /// Short stable label ("near", "rr").
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ReadPolicy::NearestHead => "near",
            ReadPolicy::RoundRobin => "rr",
        }
    }
}

/// One contiguous piece of a logical request on one member.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Frag {
    /// Member index.
    pub member: usize,
    /// First sector on that member.
    pub member_lba: Lba,
    /// Sectors in this fragment.
    pub sectors: u32,
    /// Offset (sectors) from the start of the logical request.
    pub logical_off: u64,
}

/// Splits `[lba, lba+count)` across concatenated members.
#[must_use]
pub fn linear_map(member_caps: &[u64], lba: Lba, count: u32) -> Vec<Frag> {
    let mut frags = Vec::new();
    let mut remaining = u64::from(count);
    let mut cur = lba;
    let mut logical_off = 0u64;
    let mut base = 0u64;
    for (member, cap) in member_caps.iter().copied().enumerate() {
        let end = base + cap;
        if cur < end && remaining > 0 {
            let take = remaining.min(end - cur);
            frags.push(Frag {
                member,
                member_lba: cur - base,
                sectors: take as u32,
                logical_off,
            });
            logical_off += take;
            cur += take;
            remaining -= take;
        }
        base = end;
        if remaining == 0 {
            break;
        }
    }
    frags
}

/// Splits `[lba, lba+count)` across a RAID-0 stripe.
#[must_use]
pub fn raid0_map(members: usize, chunk_sectors: u32, lba: Lba, count: u32) -> Vec<Frag> {
    let c = u64::from(chunk_sectors);
    let n = members as u64;
    let mut frags = Vec::new();
    let mut cur = lba;
    let end = lba + u64::from(count);
    while cur < end {
        let chunk_idx = cur / c;
        let off = cur % c;
        let member = (chunk_idx % n) as usize;
        let member_lba = (chunk_idx / n) * c + off;
        let take = (c - off).min(end - cur);
        frags.push(Frag {
            member,
            member_lba,
            sectors: take as u32,
            logical_off: cur - lba,
        });
        cur += take;
    }
    frags
}

/// The member holding stripe `stripe`'s parity (left-asymmetric rotation:
/// parity walks from the last member toward the first as stripes advance).
#[must_use]
pub fn raid5_parity_member(members: usize, stripe: u64) -> usize {
    let n = members as u64;
    (n - 1 - (stripe % n)) as usize
}

/// The member holding data chunk `chunk` (0-based among the stripe's
/// `members - 1` data chunks) of stripe `stripe`.
#[must_use]
pub fn raid5_data_member(members: usize, stripe: u64, chunk: usize) -> usize {
    let p = raid5_parity_member(members, stripe);
    if chunk < p {
        chunk
    } else {
        chunk + 1
    }
}

/// One contiguous piece of a logical RAID-5 request within one data chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct R5Seg {
    /// Stripe row index.
    pub stripe: u64,
    /// Data chunk index within the stripe (`0..members-1`).
    pub chunk: usize,
    /// Member holding that chunk.
    pub member: usize,
    /// Offset (sectors) within the chunk.
    pub off: u64,
    /// Sectors in this segment.
    pub sectors: u32,
    /// Offset (sectors) from the start of the logical request.
    pub logical_off: u64,
}

impl R5Seg {
    /// The member LBA this segment starts at.
    #[must_use]
    pub fn member_lba(&self, chunk_sectors: u32) -> Lba {
        self.stripe * u64::from(chunk_sectors) + self.off
    }
}

/// Splits `[lba, lba+count)` into per-stripe, per-chunk segments.
#[must_use]
pub fn raid5_map(members: usize, chunk_sectors: u32, lba: Lba, count: u32) -> Vec<R5Seg> {
    let c = u64::from(chunk_sectors);
    let data_per_stripe = c * (members as u64 - 1);
    let mut segs = Vec::new();
    let mut cur = lba;
    let end = lba + u64::from(count);
    while cur < end {
        let stripe = cur / data_per_stripe;
        let within = cur % data_per_stripe;
        let chunk = (within / c) as usize;
        let off = within % c;
        let take = (c - off).min(end - cur);
        segs.push(R5Seg {
            stripe,
            chunk,
            member: raid5_data_member(members, stripe, chunk),
            off,
            sectors: take as u32,
            logical_off: cur - lba,
        });
        cur += take;
    }
    segs
}

/// All segments of one stripe, grouped, plus the union offset range the
/// parity update covers.
#[derive(Clone, Debug)]
pub struct R5StripeSpan {
    /// Stripe row index.
    pub stripe: u64,
    /// Member holding this stripe's parity.
    pub parity_member: usize,
    /// Written segments, in logical order.
    pub segs: Vec<R5Seg>,
    /// Union offset range `[lo, hi)` within the chunk rows.
    pub lo: u64,
    /// Exclusive upper bound of the union offset range.
    pub hi: u64,
    /// Whether the segments cover the entire stripe row (full-stripe
    /// write: parity from new data, no reads).
    pub full: bool,
}

/// Groups a write's segments by stripe.
#[must_use]
pub fn raid5_write_stripes(
    members: usize,
    chunk_sectors: u32,
    lba: Lba,
    count: u32,
) -> Vec<R5StripeSpan> {
    let c = u64::from(chunk_sectors);
    let mut spans: Vec<R5StripeSpan> = Vec::new();
    for seg in raid5_map(members, chunk_sectors, lba, count) {
        if spans.last().map(|s| s.stripe) != Some(seg.stripe) {
            spans.push(R5StripeSpan {
                stripe: seg.stripe,
                parity_member: raid5_parity_member(members, seg.stripe),
                segs: Vec::new(),
                lo: u64::MAX,
                hi: 0,
                full: false,
            });
        }
        let span = spans.last_mut().expect("span just ensured");
        span.lo = span.lo.min(seg.off);
        span.hi = span.hi.max(seg.off + u64::from(seg.sectors));
        span.segs.push(seg);
    }
    for span in &mut spans {
        span.full = span.lo == 0
            && span.hi == c
            && span.segs.len() == members - 1
            && span
                .segs
                .iter()
                .all(|s| s.off == 0 && u64::from(s.sectors) == c);
    }
    spans
}

/// XORs `src` into `dst` byte by byte.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities() {
        let caps = [1000, 1200, 900];
        assert_eq!(VolumeLayout::Linear.capacity(&caps), 3100);
        assert_eq!(
            VolumeLayout::Raid0 { chunk_sectors: 64 }.capacity(&caps),
            (900 / 64) * 64 * 3
        );
        assert_eq!(
            VolumeLayout::Raid1 {
                read_policy: ReadPolicy::RoundRobin
            }
            .capacity(&caps),
            900
        );
        assert_eq!(
            VolumeLayout::Raid5 { chunk_sectors: 64 }.capacity(&caps),
            (900 / 64) * 64 * 2
        );
    }

    #[test]
    fn linear_spans_member_boundaries() {
        let frags = linear_map(&[100, 100, 100], 90, 30);
        assert_eq!(
            frags,
            vec![
                Frag {
                    member: 0,
                    member_lba: 90,
                    sectors: 10,
                    logical_off: 0
                },
                Frag {
                    member: 1,
                    member_lba: 0,
                    sectors: 20,
                    logical_off: 10
                },
            ]
        );
    }

    #[test]
    fn raid0_rotates_chunks() {
        // chunk 4, 3 members: lba 0..4 -> m0, 4..8 -> m1, 8..12 -> m2,
        // 12..16 -> m0 at member_lba 4.
        let frags = raid0_map(3, 4, 2, 12);
        assert_eq!(frags.len(), 4);
        assert_eq!(frags[0].member, 0);
        assert_eq!(frags[0].member_lba, 2);
        assert_eq!(frags[0].sectors, 2);
        assert_eq!(frags[1].member, 1);
        assert_eq!(frags[1].member_lba, 0);
        assert_eq!(frags[2].member, 2);
        assert_eq!(frags[3].member, 0);
        assert_eq!(frags[3].member_lba, 4);
        assert_eq!(frags[3].sectors, 2);
        // Coverage is exact and in order.
        let total: u64 = frags.iter().map(|f| u64::from(f.sectors)).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn raid5_parity_rotates_left() {
        // 4 members: stripe 0 parity on member 3, stripe 1 on 2, ...
        assert_eq!(raid5_parity_member(4, 0), 3);
        assert_eq!(raid5_parity_member(4, 1), 2);
        assert_eq!(raid5_parity_member(4, 2), 1);
        assert_eq!(raid5_parity_member(4, 3), 0);
        assert_eq!(raid5_parity_member(4, 4), 3);
        // Data chunks skip the parity member.
        assert_eq!(raid5_data_member(4, 1, 0), 0);
        assert_eq!(raid5_data_member(4, 1, 1), 1);
        assert_eq!(raid5_data_member(4, 1, 2), 3);
    }

    #[test]
    fn raid5_full_stripe_detection() {
        // 3 members, chunk 4: a stripe row holds 8 data sectors.
        let spans = raid5_write_stripes(3, 4, 0, 8);
        assert_eq!(spans.len(), 1);
        assert!(spans[0].full);
        assert_eq!(spans[0].lo, 0);
        assert_eq!(spans[0].hi, 4);
        // A 4-sector write at offset 2 straddles two chunks but is not a
        // full stripe.
        let spans = raid5_write_stripes(3, 4, 2, 4);
        assert_eq!(spans.len(), 1);
        assert!(!spans[0].full);
        assert_eq!(spans[0].segs.len(), 2);
        assert_eq!((spans[0].lo, spans[0].hi), (0, 4));
        // Crossing a stripe boundary produces two spans.
        let spans = raid5_write_stripes(3, 4, 6, 4);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stripe, 0);
        assert_eq!(spans[1].stripe, 1);
    }

    #[test]
    fn raid5_map_covers_exactly() {
        let segs = raid5_map(5, 16, 123, 200);
        let total: u64 = segs.iter().map(|s| u64::from(s.sectors)).sum();
        assert_eq!(total, 200);
        let mut off = 0;
        for s in &segs {
            assert_eq!(s.logical_off, off, "segments in logical order");
            assert_ne!(
                s.member,
                raid5_parity_member(5, s.stripe),
                "data never lands on the parity member"
            );
            off += u64::from(s.sectors);
        }
    }

    #[test]
    fn xor_is_involutive() {
        let a = vec![0xA5u8; 16];
        let mut b = vec![0x3Cu8; 16];
        xor_into(&mut b, &a);
        xor_into(&mut b, &a);
        assert_eq!(b, vec![0x3C; 16]);
    }
}
