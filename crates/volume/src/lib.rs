//! # trail-volume: RAID arrays between the block layer and the disks
//!
//! A volume layer for the Trail reproduction (Chiueh & Huang, *Track-Based
//! Disk Logging*, DSN 2002): several simulated member disks composed into
//! one [`BlockDevice`](trail_blockio::BlockDevice), so every layer above —
//! the standard stack, Trail's write-back path, the replay engine — drives
//! an array exactly as it drives a single disk.
//!
//! Layouts ([`VolumeLayout`]):
//!
//! - **Linear** — JBOD concatenation;
//! - **RAID-0** — striping with a configurable chunk;
//! - **RAID-1** — mirroring, with nearest-head or round-robin reads
//!   ([`ReadPolicy`]);
//! - **RAID-5** — rotating parity with the faithful small-write
//!   read-modify-write cycle (read old data + old parity, XOR, write
//!   both), a full-stripe-write fast path, reconstruct-mode writes and
//!   on-the-fly degraded reads when a member fails.
//!
//! RAID-5's small-write penalty is the point: fronting the array with
//! Trail's log turns every synchronous small write into a track-speed log
//! append, and the RMW cost is paid later by background write-backs. The
//! address arithmetic lives in [`layout`]-level pure functions
//! ([`raid5_parity_member`], [`raid5_map`], …) so the parity algebra is
//! testable without any I/O; per-stripe serialization is provided by
//! [`Gate`].
//!
//! # Examples
//!
//! ```
//! use trail_sim::Simulator;
//! use trail_disk::{profiles, Disk, SECTOR_SIZE};
//! use trail_blockio::{IoRequest, StandardDriver};
//! use trail_volume::{RaidVolume, VolumeLayout};
//!
//! let mut sim = Simulator::new();
//! let members: Vec<StandardDriver> = (0..4)
//!     .map(|i| StandardDriver::new(Disk::new(&format!("m{i}"), profiles::tiny_test_disk())))
//!     .collect();
//! let vol = RaidVolume::new("array", VolumeLayout::Raid5 { chunk_sectors: 8 }, members);
//! let done = sim.completion(|_, d: trail_sim::Delivered<trail_blockio::IoDone>| {
//!     d.expect("write survives");
//! });
//! vol.submit(&mut sim, IoRequest::write(100, vec![1; 2 * SECTOR_SIZE]), done)?;
//! sim.run();
//! // A 2-sector write into a 24-sector stripe row is a read-modify-write.
//! assert_eq!(vol.with_stats(|s| s.rmw_cycles), 1);
//! # Ok::<(), trail_disk::DiskError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gate;
pub mod layout;
mod volume;

pub use gate::Gate;
pub use layout::{
    linear_map, raid0_map, raid5_data_member, raid5_map, raid5_parity_member, raid5_write_stripes,
    xor_into, Frag, R5Seg, R5StripeSpan, ReadPolicy, VolumeLayout,
};
pub use volume::{MemberStats, RaidVolume, VolumeStats};
