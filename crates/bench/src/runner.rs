//! The parallel scenario runner behind `run_all`.
//!
//! Scenarios are embarrassingly parallel: each one builds its own
//! single-threaded [`trail_sim::Simulator`] and never touches shared
//! state, so the runner just drains the registry through a work queue
//! with one OS thread per slot. Determinism is preserved by
//! construction: worker threads only *compute*; all `BENCH_<name>.json`
//! files are written by the calling thread, in registry order, from the
//! scenarios' virtual-time results (wall-clock times never enter the
//! JSON). Running with 1 thread or N produces byte-identical artifacts.

use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use trail_sim::parallel_map;

use crate::report::write_bench_json_in;
use crate::scenarios::{all_scenarios, ScenarioConfig, ScenarioOutput};

/// Options for [`run_all_scenarios`].
#[derive(Clone, Debug)]
pub struct RunAllOptions {
    /// Run the shrunk quick sweeps instead of the paper-scale ones.
    pub quick: bool,
    /// Base seed mixed into every scenario's workload RNG.
    pub seed: u64,
    /// Worker threads (clamped to at least 1 and at most the number of
    /// scenarios).
    pub threads: usize,
    /// Directory receiving the `BENCH_<name>.json` files.
    pub out_dir: PathBuf,
    /// Run only scenarios whose registry name contains this substring
    /// (`None` runs the whole registry).
    pub filter: Option<String>,
}

impl Default for RunAllOptions {
    fn default() -> Self {
        RunAllOptions {
            quick: false,
            seed: 0,
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            out_dir: PathBuf::from("."),
            filter: None,
        }
    }
}

/// One scenario's outcome in a [`RunAllSummary`].
pub struct ScenarioResult {
    /// Registry name (the `BENCH_<name>.json` stem).
    pub name: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// The human-readable report.
    pub report: String,
    /// Where the JSON payload was written.
    pub json_path: PathBuf,
    /// Wall-clock time this scenario took on its worker thread.
    pub wall: Duration,
    /// Simulator events the scenario executed — a *virtual-time* quantity,
    /// deterministic for a fixed seed regardless of thread count or host
    /// speed (unlike `wall`).
    pub events_executed: u64,
}

/// What a full [`run_all_scenarios`] call produced.
pub struct RunAllSummary {
    /// Per-scenario outcomes, in registry order.
    pub results: Vec<ScenarioResult>,
    /// Wall-clock time for the whole parallel run.
    pub elapsed: Duration,
    /// Sum of the per-scenario wall times — what a serial run would have
    /// cost (measured on this run; no second run needed).
    pub serial_estimate: Duration,
    /// Worker threads actually used.
    pub threads: usize,
}

impl RunAllSummary {
    /// Wall-clock speedup of the parallel run over the serial estimate.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.serial_estimate.as_secs_f64() / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Runs every registered scenario, one per worker thread, and writes each
/// `BENCH_<name>.json` into `opts.out_dir`.
///
/// # Errors
///
/// Propagates file-system errors from creating the output directory or
/// writing the JSON files.
///
/// # Panics
///
/// Panics if a scenario panics on its worker thread (the panic is
/// propagated when the thread scope joins).
pub fn run_all_scenarios(opts: &RunAllOptions) -> std::io::Result<RunAllSummary> {
    let specs: Vec<_> = all_scenarios()
        .into_iter()
        .filter(|s| opts.filter.as_deref().is_none_or(|f| s.name.contains(f)))
        .collect();
    if specs.is_empty() {
        return Ok(RunAllSummary {
            results: Vec::new(),
            elapsed: Duration::ZERO,
            serial_estimate: Duration::ZERO,
            threads: 0,
        });
    }
    let threads = opts.threads.clamp(1, specs.len());
    let start = Instant::now();
    let outcomes: Vec<(ScenarioOutput, Duration, u64)> =
        parallel_map((0..specs.len()).collect(), threads, |idx: usize| {
            // The config is minted per task: a telemetry recorder is
            // an `Rc` (single-simulator affinity), so threaded runs
            // never carry one.
            let cfg = ScenarioConfig {
                quick: opts.quick,
                seed: opts.seed,
                scale: None,
                recorder: None,
            };
            // Each scenario runs start-to-finish on one thread, so the
            // thread-local event counter's delta is exactly its count.
            let events_before = trail_sim::thread_events_executed();
            let t0 = Instant::now();
            let out = (specs[idx].run)(&cfg);
            let events = trail_sim::thread_events_executed() - events_before;
            (out, t0.elapsed(), events)
        });
    let elapsed = start.elapsed();

    std::fs::create_dir_all(&opts.out_dir)?;
    let mut results = Vec::with_capacity(specs.len());
    let mut serial_estimate = Duration::ZERO;
    for (spec, (out, wall, events_executed)) in specs.iter().zip(outcomes) {
        serial_estimate += wall;
        let json_path = write_bench_json_in(&opts.out_dir, spec.artifact, &out.json)?;
        results.push(ScenarioResult {
            name: spec.name,
            title: spec.title,
            report: out.report,
            json_path,
            wall,
            events_executed,
        });
    }
    Ok(RunAllSummary {
        results,
        elapsed,
        serial_estimate,
        threads,
    })
}
