//! # trail-bench: shared harness code for the paper's experiments
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` §3 for the index and `EXPERIMENTS.md` for
//! paper-vs-measured results). This library holds the setups they share:
//! building the two storage stacks over the paper's drive complement, the
//! synchronous-write workload generators of §5.1, and the TPC-C rig of
//! §5.2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::rc::Rc;

use trail_blockio::{IoDone, IoRequest, StandardDriver};
use trail_core::{format_log_disk, FormatOptions, TrailConfig, TrailDriver};
use trail_db::{BlockStack, Database, DbConfig, FlushPolicy, TrailStack};
use trail_disk::{profiles, Disk, SECTOR_SIZE};
use trail_sim::{Completion, Delivered, LatencySummary, SimDuration, SimTime, Simulator};
use trail_telemetry::RecorderHandle;
use trail_tpcc::{populate, CpuModel, Scale, Workload};

pub mod campaign;
pub mod perf;
pub mod report;
pub mod runner;
pub mod scenarios;
pub use campaign::{run_campaign, CampaignFlavor, CampaignSpec, CrashPointOutcome};
pub use report::{write_bench_json, write_bench_json_in, BenchArgs};
pub use runner::{parallel_map, run_all_scenarios, RunAllOptions, RunAllSummary};
pub use scenarios::{
    all_scenarios, replay_stream_json, run_scenario, ScenarioConfig, ScenarioOutput, ScenarioSpec,
};

/// The paper's testbed: one ST41601N-class SCSI log disk and three
/// WD-Caviar-class IDE data disks.
pub struct Testbed {
    /// The simulator (virtual time).
    pub sim: Simulator,
    /// The Trail driver fronting the three data disks.
    pub trail: TrailDriver,
    /// The data disks, in device order.
    pub data_disks: Vec<Disk>,
    /// The Trail log disk.
    pub log_disk: Disk,
}

/// Builds the testbed with a freshly formatted log disk and a running
/// Trail driver.
///
/// # Panics
///
/// Panics if formatting or boot fails (a harness bug).
pub fn testbed(config: TrailConfig) -> Testbed {
    testbed_recorded(config, None)
}

/// Like [`testbed`], with an optional telemetry recorder attached to the
/// whole stack (after the format/boot noise, so traces start clean).
///
/// # Panics
///
/// Panics if formatting or boot fails (a harness bug).
pub fn testbed_recorded(config: TrailConfig, recorder: Option<RecorderHandle>) -> Testbed {
    // The builder's default scenario *is* the paper's testbed; it also
    // resets the format/boot noise so measurements start clean.
    let built = trail::StackBuilder::new()
        .trail(config)
        .build()
        .expect("boot Trail");
    let trail = built.trail.expect("Trail scenario has a driver");
    if let Some(r) = recorder {
        trail.set_recorder(r);
    }
    Testbed {
        sim: built.sim,
        trail,
        data_disks: built.data_disks,
        log_disk: built.log_disk.expect("Trail scenario has a log disk"),
    }
}

/// The §5.1 workload arrival modes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArrivalMode {
    /// A new request arrives immediately after the previous one's log-disk
    /// write completes (back to back).
    Clustered,
    /// A new request arrives `gap` after the previous one completes, where
    /// `gap` exceeds the repositioning overhead (the paper uses ~1.5 ms+).
    Sparse {
        /// The idle gap between completion and the next arrival.
        gap: SimDuration,
    },
}

/// Result of one synchronous-write latency measurement.
#[derive(Clone, Debug)]
pub struct SyncWriteResult {
    /// Per-request latencies.
    pub latency: LatencySummary,
}

/// Runs the §5.1 synchronous-write workload against Trail: `procs`
/// concurrent writers each issue `writes_per_proc` random-target writes of
/// `size_bytes`, in the given arrival mode.
pub fn sync_writes_trail(
    config: TrailConfig,
    procs: usize,
    writes_per_proc: usize,
    size_bytes: usize,
    mode: ArrivalMode,
    seed: u64,
) -> SyncWriteResult {
    sync_writes_trail_recorded(config, procs, writes_per_proc, size_bytes, mode, seed, None)
}

/// [`sync_writes_trail`] with an optional telemetry recorder attached to
/// the Trail stack for the duration of the run.
pub fn sync_writes_trail_recorded(
    config: TrailConfig,
    procs: usize,
    writes_per_proc: usize,
    size_bytes: usize,
    mode: ArrivalMode,
    seed: u64,
    recorder: Option<RecorderHandle>,
) -> SyncWriteResult {
    let mut tb = testbed_recorded(config, recorder);
    let lat = Rc::new(RefCell::new(LatencySummary::new()));
    let capacity = tb.data_disks[0].geometry().total_sectors() - 1024;
    for p in 0..procs {
        spawn_trail_writer(
            &mut tb.sim,
            tb.trail.clone(),
            Rc::clone(&lat),
            WriterParams {
                remaining: writes_per_proc,
                size_bytes,
                mode,
                seed: seed ^ (p as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                capacity,
            },
        );
    }
    tb.sim.run();
    tb.trail.run_until_quiescent(&mut tb.sim);
    let latency = lat.borrow().clone();
    SyncWriteResult { latency }
}

struct WriterParams {
    remaining: usize,
    size_bytes: usize,
    mode: ArrivalMode,
    seed: u64,
    capacity: u64,
}

fn spawn_trail_writer(
    sim: &mut Simulator,
    trail: TrailDriver,
    lat: Rc<RefCell<LatencySummary>>,
    params: WriterParams,
) {
    use rand::Rng;
    if params.remaining == 0 {
        return;
    }
    let mut rng = trail_sim::rng(params.seed);
    let sectors = params.size_bytes.div_ceil(SECTOR_SIZE).max(1);
    let lba = rng.gen_range(0..params.capacity - sectors as u64);
    let data = vec![rng.gen::<u8>(); sectors * SECTOR_SIZE];
    let next = WriterParams {
        remaining: params.remaining - 1,
        seed: rng.gen(),
        ..params
    };
    let respawn = trail.clone();
    let done = sim.completion(move |sim: &mut Simulator, del: Delivered<IoDone>| {
        let Ok(done) = del else { return };
        lat.borrow_mut().record(done.latency());
        match next.mode {
            ArrivalMode::Clustered => spawn_trail_writer(sim, respawn, lat, next),
            ArrivalMode::Sparse { gap } => {
                sim.schedule_in(gap, move |sim| spawn_trail_writer(sim, respawn, lat, next));
            }
        }
    });
    trail
        .write(sim, 0, lba, data, done)
        .expect("trail write accepted");
}

/// Runs the §5.1 synchronous-write workload against the standard disk
/// subsystem (writes pay full seek + rotation at their random targets).
pub fn sync_writes_standard(
    procs: usize,
    writes_per_proc: usize,
    size_bytes: usize,
    mode: ArrivalMode,
    seed: u64,
) -> SyncWriteResult {
    sync_writes_standard_recorded(procs, writes_per_proc, size_bytes, mode, seed, None)
}

/// [`sync_writes_standard`] with an optional telemetry recorder attached
/// to the baseline driver (and its disk) for the duration of the run.
pub fn sync_writes_standard_recorded(
    procs: usize,
    writes_per_proc: usize,
    size_bytes: usize,
    mode: ArrivalMode,
    seed: u64,
    recorder: Option<RecorderHandle>,
) -> SyncWriteResult {
    let mut sim = Simulator::new();
    let disk = Disk::new("data0", profiles::wd_caviar_10gb());
    let driver = StandardDriver::new(disk.clone());
    if let Some(r) = recorder {
        driver.set_recorder(r);
    }
    let lat = Rc::new(RefCell::new(LatencySummary::new()));
    let capacity = disk.geometry().total_sectors() - 1024;
    for p in 0..procs {
        spawn_standard_writer(
            &mut sim,
            driver.clone(),
            Rc::clone(&lat),
            WriterParams {
                remaining: writes_per_proc,
                size_bytes,
                mode,
                seed: seed ^ (p as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                capacity,
            },
        );
    }
    sim.run();
    let latency = lat.borrow().clone();
    SyncWriteResult { latency }
}

fn spawn_standard_writer(
    sim: &mut Simulator,
    driver: StandardDriver,
    lat: Rc<RefCell<LatencySummary>>,
    params: WriterParams,
) {
    use rand::Rng;
    if params.remaining == 0 {
        return;
    }
    let mut rng = trail_sim::rng(params.seed);
    let sectors = params.size_bytes.div_ceil(SECTOR_SIZE).max(1);
    let lba = rng.gen_range(0..params.capacity - sectors as u64);
    let data = vec![rng.gen::<u8>(); sectors * SECTOR_SIZE];
    let next = WriterParams {
        remaining: params.remaining - 1,
        seed: rng.gen(),
        ..params
    };
    let respawn_driver = driver.clone();
    let done = sim.completion(move |sim: &mut Simulator, del: Delivered<IoDone>| {
        let Ok(done) = del else { return };
        lat.borrow_mut().record(done.latency());
        match next.mode {
            ArrivalMode::Clustered => spawn_standard_writer(sim, respawn_driver, lat, next),
            ArrivalMode::Sparse { gap } => {
                sim.schedule_in(gap, move |sim| {
                    spawn_standard_writer(sim, respawn_driver, lat, next)
                });
            }
        }
    });
    driver
        .submit(sim, IoRequest::write(lba, data), done)
        .expect("standard write accepted");
}

/// TPC-C rig configuration shared by the Table 2/3 and track-utilization
/// harnesses.
#[derive(Clone, Debug)]
pub struct TpccRig {
    /// Warehouse-1 scale (see `EXPERIMENTS.md` for the scaling note).
    pub scale: Scale,
    /// Buffer-pool pages (paper: 300 MB; scaled to keep the same
    /// cache:database ratio).
    pub cache_pages: usize,
    /// The flush policy.
    pub policy: FlushPolicy,
    /// Log-force write granularity in bytes.
    pub flush_write_bytes: usize,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for TpccRig {
    fn default() -> Self {
        TpccRig {
            scale: Scale::standard_w1(),
            cache_pages: 8_000,
            policy: FlushPolicy::EveryCommit,
            flush_write_bytes: 8 * 1024,
            seed: 20020623,
        }
    }
}

/// A TPC-C-ready database plus the simulator driving it.
pub struct TpccSetup {
    /// The simulator.
    pub sim: Simulator,
    /// The populated, cache-warmed engine.
    pub db: Database,
    /// The workload generator, order counters initialized to match the
    /// population.
    pub workload: Workload,
    /// The Trail driver, when the rig runs on Trail.
    pub trail: Option<TrailDriver>,
    /// The block stack under the engine — for installing a workload
    /// capture tap ([`trail_blockio::SubmitTap`]) before a run.
    pub stack: Rc<dyn BlockStack>,
}

/// Builds a TPC-C database over Trail (`trail = true`) or the standard
/// stack, populates it (untimed), places the images on the simulated
/// disks, and warms the cache.
pub fn tpcc_setup(trail: bool, rig: &TpccRig) -> TpccSetup {
    tpcc_setup_recorded(trail, rig, None)
}

/// [`tpcc_setup`] with an optional telemetry recorder attached through
/// the database engine to the whole storage stack (after population, so
/// the untimed bulk load does not pollute the trace).
pub fn tpcc_setup_recorded(
    trail: bool,
    rig: &TpccRig,
    recorder: Option<RecorderHandle>,
) -> TpccSetup {
    let db_config = DbConfig {
        cache_pages: rig.cache_pages,
        flush_policy: rig.policy,
        log_dev: 0,
        log_region_start: 64,
        // The dedicated 10-GB log disk gives the WAL millions of sectors;
        // 2 M sectors ≈ 1 GB covers any run here without wrapping.
        log_region_sectors: 2_000_000,
        flush_write_bytes: rig.flush_write_bytes,
        table_devices: vec![1, 2],
        // The paper's 300-MB cache absorbed all checkpoint pressure over
        // 5000-transaction runs; dirty pages leave via eviction only.
        dirty_high_watermark: usize::MAX / 2,
        flush_batch: 16,
        log_before_images: true,
        // The paper's testbed has a single 300-MHz Pentium II: concurrent
        // transactions' CPU bursts serialize, which is what compresses
        // commits into the bursts that drive §5.2's utilization numbers.
        single_cpu: true,
    };
    let mut sim = Simulator::new();
    let disks: Vec<Disk> = (0..3)
        .map(|i| Disk::new(format!("data{i}"), profiles::wd_caviar_10gb()))
        .collect();
    let (stack, trail_drv): (Rc<dyn BlockStack>, Option<TrailDriver>) = if trail {
        let log = Disk::new("trail-log", profiles::seagate_st41601n());
        format_log_disk(&mut sim, &log, FormatOptions::default()).expect("format");
        let (drv, _) = TrailDriver::start(&mut sim, log, disks.clone(), TrailConfig::default())
            .expect("boot Trail");
        (Rc::new(TrailStack::new(drv.clone(), 3)), Some(drv))
    } else {
        (Rc::new(trail_db::StandardStack::new(disks.clone())), None)
    };
    let db = Database::new(Rc::clone(&stack), db_config);
    let images = populate(&db, &rig.scale);
    for (pid, bytes) in &images {
        let disk = &disks[pid.dev as usize];
        for (i, chunk) in bytes.chunks(SECTOR_SIZE).enumerate() {
            let mut sector = [0u8; SECTOR_SIZE];
            sector[..chunk.len()].copy_from_slice(chunk);
            disk.poke_sector(pid.first_lba() + i as u64, &sector);
        }
    }
    // Warm the cache with the most reuse-prone tables first (warehouse,
    // district, customer, stock), standing in for the paper's 200 000
    // warm-up transactions.
    let mut ordered: Vec<_> = images.iter().collect();
    ordered.sort_by_key(|(pid, _)| (pid.dev, pid.page_no));
    for (pid, bytes) in ordered {
        db.warm(*pid, bytes);
    }
    if let Some(r) = recorder {
        db.set_recorder(r);
    }
    let workload = Workload::new(rig.scale, rig.seed, CpuModel::default());
    TpccSetup {
        sim,
        db,
        workload,
        trail: trail_drv,
        stack,
    }
}

/// Formats a duration as milliseconds with three decimals.
pub fn ms(d: SimDuration) -> String {
    format!("{:.3}", d.as_millis_f64())
}

/// Formats an instant as seconds with three decimals.
pub fn secs_at(t: SimTime) -> String {
    format!("{:.3}", t.as_secs_f64())
}

/// Prints a Markdown-ish table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Submits one standard-driver write (used by Fig. 3's baseline path).
pub fn standard_write(
    sim: &mut Simulator,
    driver: &StandardDriver,
    lba: u64,
    data: Vec<u8>,
    done: Completion<IoDone>,
) {
    driver
        .submit(sim, IoRequest::write(lba, data), done)
        .expect("standard write accepted");
}
