//! Wall-clock performance suite for the simulator hot path.
//!
//! Every other number this repository produces is *virtual-time* — immune,
//! by design, to how fast the executor actually runs. This module is the
//! one place that measures the executor itself: wall-clock seconds and
//! events/second for a handful of representative workloads, written to
//! `BENCH_simperf.json` so the perf trajectory has something to regress
//! against.
//!
//! Two invariants keep the suite honest:
//!
//! - `events_executed` per scenario is **deterministic** (virtual-time
//!   event counts cannot depend on host speed), so CI can compare it
//!   across runs to prove the timed workload itself didn't drift.
//! - Wall-clock fields are *descriptive only* and never feed back into any
//!   scenario's `BENCH_*.json`.
//!
//! The scenarios:
//!
//! | name | exercises |
//! |---|---|
//! | `micro` | raw device model: seek/rotation arithmetic, short chains |
//! | `fig3` | Trail vs standard sync-write path, batching |
//! | `tpcc` | the §5.2 database rig: deep event chains, group commit |
//! | `overload_replay_8x` | open-loop trace replay at 8× over capacity |
//! | `timeout_replay` | cancel-heavy: one armed+cancelled timer per I/O |
//!
//! `timeout_replay` is the executor's worst case: every request arms a
//! guard timer that is cancelled on completion, so the queue is dominated
//! by events that never fire. A `cancel()` that scans the heap turns this
//! workload quadratic; the suite exists to keep it O(log n).

use std::cell::Cell;
use std::rc::Rc;
use std::time::{Duration, Instant};

use trail_blockio::{IoDone, IoRequest, StandardDriver};
use trail_disk::{profiles, Disk, SECTOR_SIZE};
use trail_sim::{thread_events_executed, Delivered, SimDuration, Simulator};
use trail_telemetry::JsonValue;
use trail_trace::{generate, replay, ArrivalModel, ReplayOptions, SyntheticSpec, TargetKind};

use crate::scenarios::{run_scenario, ScenarioConfig};

/// Options for [`run_perf_suite`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfOptions {
    /// Shrinks every workload to a CI-smoke size.
    pub quick: bool,
    /// Base seed mixed into each scenario's workload (0 keeps the
    /// historical per-experiment seeds, matching `run_all`).
    pub seed: u64,
}

/// One timed scenario: wall-clock plus the deterministic event count.
#[derive(Clone, Debug)]
pub struct PerfResult {
    /// Scenario name (stable; keys the JSON row).
    pub name: &'static str,
    /// Wall-clock time for the scenario body.
    pub wall: Duration,
    /// Simulator events executed by the scenario body (deterministic).
    pub events_executed: u64,
}

impl PerfResult {
    /// Executor throughput in events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events_executed as f64 / secs
        } else {
            0.0
        }
    }
}

/// Times `body` on the current thread, attributing the global
/// thread-event delta to it.
fn timed(name: &'static str, body: impl FnOnce()) -> PerfResult {
    let events_before = thread_events_executed();
    let t0 = Instant::now();
    body();
    let wall = t0.elapsed();
    PerfResult {
        name,
        wall,
        events_executed: thread_events_executed() - events_before,
    }
}

fn scenario_body(name: &str, opts: &PerfOptions) {
    let cfg = ScenarioConfig {
        quick: opts.quick,
        seed: opts.seed,
        scale: None,
        recorder: None,
    };
    run_scenario(name, &cfg).expect("known scenario");
}

/// Open-loop synthetic replay at 8× recorded speed against the Trail
/// target — the sustained-overload shape of the paper's §5 experiments.
fn overload_replay_8x(opts: &PerfOptions) {
    let requests = if opts.quick { 2_000 } else { 20_000 };
    let trace = generate(&SyntheticSpec {
        seed: opts.seed,
        requests,
        read_fraction: 0.3,
        arrivals: ArrivalModel::Poisson {
            mean_iat: SimDuration::from_micros(800),
        },
        ..SyntheticSpec::default()
    });
    replay(
        &trace,
        &ReplayOptions {
            target: TargetKind::Trail,
            speed: 8.0,
            sample_every: SimDuration::ZERO,
            ..ReplayOptions::default()
        },
    )
    .expect("overload replay");
}

/// Closed-loop chains for [`timeout_replay`] — enough to keep the disk
/// busy without letting the driver queue grow (the scenario must stress
/// the *executor's* cancel path, not the I/O scheduler).
const TIMEOUT_REPLAY_CHAINS: usize = 4;

fn timeout_replay_issue(
    sim: &mut Simulator,
    driver: StandardDriver,
    guards: Rc<Vec<trail_sim::EventId>>,
    completed: Rc<Cell<usize>>,
    i: usize,
    total: u64,
) {
    let lba = (i as u64 * 1_009) % (total - 8);
    let data = vec![0u8; 8 * SECTOR_SIZE];
    let respawn = driver.clone();
    let done = sim.completion(move |sim, res: Delivered<IoDone>| {
        res.expect("write completes");
        let g = Rc::clone(&guards);
        assert!(sim.cancel(g[i]), "guard deadline must still be pending");
        completed.set(completed.get() + 1);
        let next = i + TIMEOUT_REPLAY_CHAINS;
        if next < g.len() {
            timeout_replay_issue(sim, respawn, g, completed, next, total);
        }
    });
    driver
        .submit(sim, IoRequest::write(lba, data), done)
        .expect("write accepted");
}

/// Cancel-heavy replay: one guard deadline per request is armed up front
/// (a replay-wide timeout table), and every completion cancels its
/// request's guard. The pending set is dominated by timers that never
/// fire — tens of thousands of them — so a `cancel()` that scans the
/// queue turns the whole run quadratic, while the closed-loop request
/// chains keep the driver queue (and every other cost) small.
fn timeout_replay(opts: &PerfOptions) {
    let requests: usize = if opts.quick { 3_000 } else { 20_000 };
    let mut sim = Simulator::new();
    let driver = StandardDriver::new(Disk::new("perf0", profiles::wd_caviar_10gb()));
    let total = driver.disk().geometry().total_sectors();

    let guards: Rc<Vec<trail_sim::EventId>> = Rc::new(
        (0..requests)
            .map(|_| sim.schedule_in(SimDuration::from_secs(3_600), |_| {}))
            .collect(),
    );
    let completed = Rc::new(Cell::new(0usize));
    for chain in 0..TIMEOUT_REPLAY_CHAINS {
        timeout_replay_issue(
            &mut sim,
            driver.clone(),
            Rc::clone(&guards),
            Rc::clone(&completed),
            chain,
            total,
        );
    }
    sim.run();
    assert_eq!(completed.get(), requests, "every request must complete");
}

/// Runs the full suite in a fixed order, returning one result per
/// scenario.
pub fn run_perf_suite(opts: &PerfOptions) -> Vec<PerfResult> {
    vec![
        timed("micro", || scenario_body("micro", opts)),
        timed("fig3", || scenario_body("fig3", opts)),
        timed("tpcc", || scenario_body("table2", opts)),
        timed("overload_replay_8x", || overload_replay_8x(opts)),
        timed("timeout_replay", || timeout_replay(opts)),
    ]
}

/// Renders the suite's results as the `BENCH_simperf.json` document (see
/// EXPERIMENTS.md for the schema).
pub fn simperf_json(opts: &PerfOptions, results: &[PerfResult]) -> JsonValue {
    let rows = results
        .iter()
        .map(|r| {
            JsonValue::obj(vec![
                ("name", JsonValue::str(r.name)),
                ("events_executed", JsonValue::Num(r.events_executed as f64)),
                ("wall_ms", JsonValue::Num(r.wall.as_secs_f64() * 1e3)),
                ("events_per_sec", JsonValue::Num(r.events_per_sec())),
            ])
        })
        .collect();
    let total_events: u64 = results.iter().map(|r| r.events_executed).sum();
    let total_wall: f64 = results.iter().map(|r| r.wall.as_secs_f64()).sum();
    JsonValue::obj(vec![
        ("bench", JsonValue::str("simperf")),
        (
            "mode",
            JsonValue::str(if opts.quick { "quick" } else { "full" }),
        ),
        ("total_events_executed", JsonValue::Num(total_events as f64)),
        ("total_wall_ms", JsonValue::Num(total_wall * 1e3)),
        ("scenarios", JsonValue::Arr(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_replay_event_count_is_deterministic() {
        let opts = PerfOptions {
            quick: true,
            seed: 7,
        };
        let a = timed("timeout_replay", || timeout_replay(&opts));
        let b = timed("timeout_replay", || timeout_replay(&opts));
        assert!(a.events_executed > 0);
        assert_eq!(a.events_executed, b.events_executed);
    }

    #[test]
    fn simperf_json_has_required_fields() {
        let opts = PerfOptions {
            quick: true,
            seed: 1,
        };
        let results = vec![PerfResult {
            name: "micro",
            wall: Duration::from_millis(12),
            events_executed: 3_456,
        }];
        let doc = simperf_json(&opts, &results);
        assert_eq!(
            doc.get("bench").and_then(JsonValue::as_str),
            Some("simperf")
        );
        let rows = doc.get("scenarios").and_then(JsonValue::as_arr).unwrap();
        let row = &rows[0];
        assert_eq!(
            row.get("events_executed").and_then(JsonValue::as_f64),
            Some(3_456.0)
        );
        assert!(row.get("wall_ms").is_some());
        assert!(row.get("events_per_sec").is_some());
    }
}
