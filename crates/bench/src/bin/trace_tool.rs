//! `trace_tool` — capture, generate, inspect, convert, and replay
//! workload traces (see `trail-trace` and the DESIGN.md trace-format
//! section).
//!
//! ```text
//! trace_tool generate --out t.trace [--requests N] [--seed S] [--streams K]
//!                     [--devices D] [--read-frac F] [--arrival poisson|bursty]
//!                     [--spatial uniform|zipf|seq]
//! trace_tool capture  --out t.trace [--txns N] [--standard] [--seed S]
//! trace_tool import   blkparse.txt --out t.trace [--action Q]
//! trace_tool inspect  t.trace
//! trace_tool convert  in.trace out.jsonl      (direction by extension)
//! trace_tool replay   t.trace [--target all|standard|trail|trail_multi2|ext2|lfs]
//!                     [--speed X] [--quick] [--out-dir DIR]
//! ```
//!
//! `import` parses `blkparse` text output, tagging each request with a
//! stream derived from the CPU column; `inspect` prints a per-stream
//! breakdown; `replay` writes one `BENCH_replay_<target>.json` per
//! target with p50/p99/p99.9 latency (aggregate and per stream) and the
//! queue-depth trajectory.

use std::process::ExitCode;

use trail_bench::{write_bench_json, write_bench_json_in, TpccRig};
use trail_sim::SimDuration;
use trail_tpcc::{run, ChainOn, RunConfig};
use trail_trace::{
    from_binary, from_jsonl, generate, import_blkparse, replay, to_binary, to_jsonl, ArrivalModel,
    ImportOptions, ReplayOptions, SpatialModel, SyntheticSpec, TargetKind, Trace, TraceCapture,
    TraceMeta, TraceOp,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("capture") => cmd_capture(&args[1..]),
        Some("import") => cmd_import(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        _ => {
            Err("usage: trace_tool <generate|capture|import|inspect|convert|replay> …".to_string())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace_tool: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls `--flag value` out of `args`, returning the value.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for {name}: {v}")),
    }
}

fn positional(args: &[String], index: usize, what: &str) -> Result<String, String> {
    args.iter()
        .filter(|a| !a.starts_with("--"))
        .nth(index)
        .cloned()
        .ok_or_else(|| format!("missing {what}"))
}

/// Reads a trace, sniffing JSONL (`.jsonl`) vs. binary by extension.
fn load(path: &str) -> Result<Trace, String> {
    if path.ends_with(".jsonl") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        from_jsonl(&text).map_err(|e| format!("{path}: {e}"))
    } else {
        let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        from_binary(&bytes).map_err(|e| format!("{path}: {e}"))
    }
}

fn store(path: &str, trace: &Trace) -> Result<(), String> {
    if path.ends_with(".jsonl") {
        let text = to_jsonl(trace).map_err(|e| e.to_string())?;
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))
    } else {
        std::fs::write(path, to_binary(trace)).map_err(|e| format!("{path}: {e}"))
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let out = flag(args, "--out").ok_or("generate needs --out FILE")?;
    let quick = has(args, "--quick");
    let arrivals = match flag(args, "--arrival").as_deref() {
        None | Some("poisson") => ArrivalModel::Poisson {
            mean_iat: SimDuration::from_micros(parse(args, "--mean-iat-us", 2000u64)?),
        },
        Some("bursty") => ArrivalModel::Bursty {
            burst: parse(args, "--burst", 16u32)?,
            iat_in_burst: SimDuration::from_micros(parse(args, "--mean-iat-us", 100u64)?),
            gap: SimDuration::from_millis(parse(args, "--gap-ms", 20u64)?),
        },
        Some(other) => return Err(format!("unknown --arrival {other}")),
    };
    let spatial = match flag(args, "--spatial").as_deref() {
        None | Some("uniform") => SpatialModel::Uniform,
        Some("zipf") => SpatialModel::Zipf {
            skew: parse(args, "--skew", 2.0f64)?,
        },
        Some("seq") => SpatialModel::SequentialRuns {
            run_len: parse(args, "--run-len", 16u32)?,
        },
        Some(other) => return Err(format!("unknown --spatial {other}")),
    };
    let spec = SyntheticSpec {
        seed: parse(args, "--seed", 1u64)?,
        requests: parse(args, "--requests", if quick { 200 } else { 2000 })?,
        devices: parse(args, "--devices", 1u16)?,
        streams: parse(args, "--streams", 1u32)?,
        read_fraction: parse(args, "--read-frac", 0.3f64)?,
        request_sectors: parse(args, "--sectors", 8u32)?,
        arrivals,
        spatial,
        ..SyntheticSpec::default()
    };
    let trace = generate(&spec);
    store(&out, &trace)?;
    println!(
        "generated {} requests over {:.3} s -> {out}",
        trace.len(),
        trace.duration().as_secs_f64()
    );
    Ok(())
}

fn cmd_capture(args: &[String]) -> Result<(), String> {
    let out = flag(args, "--out").ok_or("capture needs --out FILE")?;
    let txns = parse(args, "--txns", if has(args, "--quick") { 100 } else { 500 })?;
    let on_trail = !has(args, "--standard");
    let rig = TpccRig {
        seed: parse(args, "--seed", TpccRig::default().seed)?,
        ..TpccRig::default()
    };
    let mut setup = trail_bench::tpcc_setup(on_trail, &rig);
    let capture = TraceCapture::new();
    setup.stack.set_tap(capture.handle());
    let report = run(
        &mut setup.sim,
        &setup.db,
        setup.workload,
        RunConfig {
            transactions: txns,
            concurrency: 4,
            chain_on: ChainOn::Durable,
        },
    );
    let mut trace = capture.take(TraceMeta {
        source: format!(
            "capture:tpcc:{}",
            if on_trail { "trail" } else { "standard" }
        ),
        seed: rig.seed,
        devices: 0,
        note: format!("{txns} transactions, concurrency 4"),
    });
    trace.rebase_to_first();
    store(&out, &trace)?;
    println!(
        "captured {} requests over {:.3} s ({:.0} tpmC) -> {out}",
        trace.len(),
        trace.duration().as_secs_f64(),
        report.tpmc
    );
    Ok(())
}

fn cmd_import(args: &[String]) -> Result<(), String> {
    let input = positional(args, 0, "blkparse text file")?;
    let out = flag(args, "--out").ok_or("import needs --out FILE")?;
    let action = match flag(args, "--action") {
        None => 'Q',
        Some(v) if v.chars().count() == 1 => v.chars().next().expect("one char"),
        Some(v) => return Err(format!("--action wants a single letter, got {v:?}")),
    };
    let text = std::fs::read_to_string(&input).map_err(|e| format!("{input}: {e}"))?;
    let trace = import_blkparse(&text, &ImportOptions { action }).map_err(|e| e.to_string())?;
    store(&out, &trace)?;
    println!(
        "imported {} '{action}' events over {:.3} s, {} devices, {} streams -> {out}",
        trace.len(),
        trace.duration().as_secs_f64(),
        trace.meta.devices,
        trace.streams().len()
    );
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0, "trace file")?;
    let trace = load(&path)?;
    let reads = trace
        .records
        .iter()
        .filter(|r| r.op == TraceOp::Read)
        .count();
    let sectors: u64 = trace.records.iter().map(|r| u64::from(r.sectors)).sum();
    println!("{path}:");
    println!("  source:   {}", trace.meta.source);
    println!("  seed:     {}", trace.meta.seed);
    println!("  devices:  {}", trace.meta.devices);
    println!("  note:     {}", trace.meta.note);
    println!("  records:  {} ({reads} reads)", trace.len());
    println!("  volume:   {} sectors", sectors);
    println!("  duration: {:.3} s", trace.duration().as_secs_f64());
    trace.validate()?;
    println!("  validity: ok");
    let streams = trace.per_stream_summary();
    if !streams.is_empty() {
        println!("  streams:  {}", streams.len());
        println!("    stream  requests  reads  writes    sectors  footprint    span");
        for s in &streams {
            let span = s.last_at.saturating_duration_since(s.first_at);
            println!(
                "    {:>6}  {:>8}  {:>5}  {:>6}  {:>9}  {:>9}  {:>6.3} s",
                s.stream.0,
                s.requests,
                s.reads,
                s.writes,
                s.sectors,
                s.footprint_sectors,
                span.as_secs_f64(),
            );
        }
    }
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let input = positional(args, 0, "input file")?;
    let output = positional(args, 1, "output file")?;
    let trace = load(&input)?;
    store(&output, &trace)?;
    println!("{input} -> {output} ({} records)", trace.len());
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0, "trace file")?;
    let trace = load(&path)?;
    let speed = parse(args, "--speed", 1.0f64)?;
    let quick = has(args, "--quick");
    let out_dir = flag(args, "--out-dir");
    let which = flag(args, "--target").unwrap_or_else(|| "all".to_string());
    let targets: Vec<TargetKind> = match which.as_str() {
        "all" => vec![
            TargetKind::Standard,
            TargetKind::Trail,
            TargetKind::TrailMulti { logs: 2 },
            TargetKind::Ext2 { trail: false },
            TargetKind::Lfs { trail: false },
        ],
        "standard" => vec![TargetKind::Standard],
        "trail" => vec![TargetKind::Trail],
        "trail_multi2" => vec![TargetKind::TrailMulti { logs: 2 }],
        "ext2" => vec![TargetKind::Ext2 { trail: false }],
        "ext2_trail" => vec![TargetKind::Ext2 { trail: true }],
        "lfs" => vec![TargetKind::Lfs { trail: false }],
        "lfs_trail" => vec![TargetKind::Lfs { trail: true }],
        other => return Err(format!("unknown --target {other}")),
    };
    println!(
        "replaying {} requests ({:.3} s at 1x) at {speed}x:",
        trace.len(),
        trace.duration().as_secs_f64()
    );
    for target in targets {
        let rep = replay(
            &trace,
            &ReplayOptions {
                target,
                speed,
                fs_file_blocks: if quick { 128 } else { 1024 },
                ..ReplayOptions::default()
            },
        )
        .map_err(|e| e.to_string())?;
        println!(
            "  {:<14} p50 {:>8.3} ms  p99 {:>8.3} ms  p99.9 {:>8.3} ms  maxQD {:>4}  errors {}",
            rep.target,
            rep.latency.percentile(50.0).as_millis_f64(),
            rep.latency.percentile(99.0).as_millis_f64(),
            rep.latency.percentile(99.9).as_millis_f64(),
            rep.max_queue_depth,
            rep.errors,
        );
        if rep.streams.streams() > 1 {
            for (stream, lane) in rep.streams.iter() {
                println!(
                    "    stream {:<3}    p50 {:>8.3} ms  p99 {:>8.3} ms  p99.9 {:>8.3} ms  reqs {:>6}",
                    stream.0,
                    lane.latency.percentile(50.0).as_millis_f64(),
                    lane.latency.percentile(99.0).as_millis_f64(),
                    lane.latency.percentile(99.9).as_millis_f64(),
                    lane.requests,
                );
            }
        }
        let name = format!("replay_{}", rep.target);
        match &out_dir {
            Some(dir) => {
                let path = write_bench_json_in(std::path::Path::new(dir), &name, &rep.to_json())
                    .map_err(|e| e.to_string())?;
                eprintln!("wrote {}", path.display());
            }
            None => {
                write_bench_json(&name, &rep.to_json()).map_err(|e| e.to_string())?;
            }
        }
    }
    Ok(())
}
