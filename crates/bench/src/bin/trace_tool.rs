//! `trace_tool` — capture, generate, inspect, convert, and replay
//! workload traces (see `trail-trace` and the DESIGN.md trace-format
//! section).
//!
//! ```text
//! trace_tool generate --out t.trace [--requests N] [--seed S] [--streams K]
//!                     [--devices D] [--read-frac F] [--arrival poisson|bursty]
//!                     [--spatial uniform|zipf|seq] [--chunk-records C]
//! trace_tool capture  --out t.trace [--txns N] [--standard] [--seed S]
//! trace_tool import   blkparse.txt --out t.trace [--action Q] [--chunk-records C]
//! trace_tool inspect  t.trace
//! trace_tool convert  in.trace out.jsonl      (direction by extension)
//!                     [--compress | --raw] [--chunk-records C]
//! trace_tool replay   t.trace [--target all|standard|trail|trail_multi2|ext2|lfs]
//!                     [--speed X] [--quick] [--out-dir DIR]
//! ```
//!
//! Binary traces are processed **chunk at a time**: `generate`,
//! `import`, and `convert` write through the streaming codec,
//! `inspect` and `replay` read through it, so none of them ever hold a
//! whole trace in memory — a multi-gigabyte trace inspects and replays
//! in bounded space. (The JSONL side of `convert` streams line by
//! line; loading a whole trace happens only for `.jsonl` inputs to
//! `inspect`/`replay`, the debugging format.)
//!
//! `import` parses `blkparse` text output, tagging each request with a
//! stream derived from the CPU column; `inspect` prints a per-stream
//! breakdown; `replay` writes one `BENCH_replay_<target>.json` per
//! target with p50/p99/p99.9 latency (aggregate and per stream) and the
//! queue-depth trajectory.
//!
//! `convert --compress` rewrites a trace with delta-compressed chunks
//! (column split + delta + varint, see DESIGN.md); `--raw` rewrites
//! back to raw chunks. Either way the records are identical — the
//! encoding is a per-chunk storage choice, and every reader handles
//! both.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::process::ExitCode;

use trail_bench::{write_bench_json, write_bench_json_in, TpccRig};
use trail_sim::{SimDuration, SimTime};
use trail_tpcc::{run, ChainOn, RunConfig};
use trail_trace::codec::{
    jsonl_meta_line, jsonl_record_line, parse_jsonl_meta, parse_jsonl_record,
};
use trail_trace::{
    from_jsonl, generate, generate_stream, import_blkparse, replay, replay_stream, scan_blkparse,
    to_jsonl, ArrivalModel, ChunkEncoding, ImportOptions, ReplayOptions, SpatialModel,
    StreamSummary, StreamSummaryBuilder, SyntheticSpec, TargetKind, Trace, TraceCapture, TraceMeta,
    TraceReader, TraceRecord, TraceWriter,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("capture") => cmd_capture(&args[1..]),
        Some("import") => cmd_import(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        _ => {
            Err("usage: trace_tool <generate|capture|import|inspect|convert|replay> …".to_string())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace_tool: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls `--flag value` out of `args`, returning the value.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for {name}: {v}")),
    }
}

fn positional(args: &[String], index: usize, what: &str) -> Result<String, String> {
    args.iter()
        .filter(|a| !a.starts_with("--"))
        .nth(index)
        .cloned()
        .ok_or_else(|| format!("missing {what}"))
}

fn is_jsonl(path: &str) -> bool {
    path.ends_with(".jsonl")
}

/// Opens a binary trace for chunk-at-a-time reading.
fn open_binary(path: &str) -> Result<TraceReader<BufReader<File>>, String> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    TraceReader::new(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

fn create_out(path: &str) -> Result<BufWriter<File>, String> {
    Ok(BufWriter::new(
        File::create(path).map_err(|e| format!("{path}: {e}"))?,
    ))
}

/// Reads a whole trace into memory — only for `.jsonl` inputs (the
/// line-oriented debugging format); binary traces stream instead.
fn load_jsonl(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    from_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

/// Stores an in-memory trace (capture and `.jsonl` outputs).
fn store(path: &str, trace: &Trace) -> Result<(), String> {
    if is_jsonl(path) {
        let text = to_jsonl(trace).map_err(|e| e.to_string())?;
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))
    } else {
        let mut w =
            TraceWriter::new(create_out(path)?, &trace.meta).map_err(|e| format!("{path}: {e}"))?;
        for r in &trace.records {
            w.write_record(r).map_err(|e| format!("{path}: {e}"))?;
        }
        w.finish().map_err(|e| format!("{path}: {e}"))?;
        Ok(())
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let out = flag(args, "--out").ok_or("generate needs --out FILE")?;
    let quick = has(args, "--quick");
    let chunk = parse(args, "--chunk-records", 0u32)?;
    let arrivals = match flag(args, "--arrival").as_deref() {
        None | Some("poisson") => ArrivalModel::Poisson {
            mean_iat: SimDuration::from_micros(parse(args, "--mean-iat-us", 2000u64)?),
        },
        Some("bursty") => ArrivalModel::Bursty {
            burst: parse(args, "--burst", 16u32)?,
            iat_in_burst: SimDuration::from_micros(parse(args, "--mean-iat-us", 100u64)?),
            gap: SimDuration::from_millis(parse(args, "--gap-ms", 20u64)?),
        },
        Some(other) => return Err(format!("unknown --arrival {other}")),
    };
    let spatial = match flag(args, "--spatial").as_deref() {
        None | Some("uniform") => SpatialModel::Uniform,
        Some("zipf") => SpatialModel::Zipf {
            skew: parse(args, "--skew", 2.0f64)?,
        },
        Some("seq") => SpatialModel::SequentialRuns {
            run_len: parse(args, "--run-len", 16u32)?,
        },
        Some(other) => return Err(format!("unknown --spatial {other}")),
    };
    let spec = SyntheticSpec {
        seed: parse(args, "--seed", 1u64)?,
        requests: parse(args, "--requests", if quick { 200 } else { 2000 })?,
        devices: parse(args, "--devices", 1u16)?,
        streams: parse(args, "--streams", 1u32)?,
        read_fraction: parse(args, "--read-frac", 0.3f64)?,
        request_sectors: parse(args, "--sectors", 8u32)?,
        arrivals,
        spatial,
        ..SyntheticSpec::default()
    };
    if is_jsonl(&out) {
        let trace = generate(&spec);
        store(&out, &trace)?;
        println!(
            "generated {} requests over {:.3} s -> {out}",
            trace.len(),
            trace.duration().as_secs_f64()
        );
    } else {
        // Records stream straight into the chunked codec; the whole
        // trace never exists in memory.
        let mut w =
            generate_stream(&spec, chunk, create_out(&out)?).map_err(|e| format!("{out}: {e}"))?;
        w.flush().map_err(|e| format!("{out}: {e}"))?;
        println!("generated {} requests -> {out}", spec.requests);
    }
    Ok(())
}

fn cmd_capture(args: &[String]) -> Result<(), String> {
    let out = flag(args, "--out").ok_or("capture needs --out FILE")?;
    let txns = parse(args, "--txns", if has(args, "--quick") { 100 } else { 500 })?;
    let on_trail = !has(args, "--standard");
    let rig = TpccRig {
        seed: parse(args, "--seed", TpccRig::default().seed)?,
        ..TpccRig::default()
    };
    let mut setup = trail_bench::tpcc_setup(on_trail, &rig);
    let capture = TraceCapture::new();
    setup.stack.set_tap(capture.handle());
    let report = run(
        &mut setup.sim,
        &setup.db,
        setup.workload,
        RunConfig {
            transactions: txns,
            concurrency: 4,
            chain_on: ChainOn::Durable,
        },
    );
    let mut trace = capture.take(TraceMeta {
        source: format!(
            "capture:tpcc:{}",
            if on_trail { "trail" } else { "standard" }
        ),
        seed: rig.seed,
        devices: 0,
        note: format!("{txns} transactions, concurrency 4"),
        chunk_records: parse(args, "--chunk-records", 0u32)?,
        encoding: ChunkEncoding::Raw,
    });
    trace.rebase_to_first();
    store(&out, &trace)?;
    println!(
        "captured {} requests over {:.3} s ({:.0} tpmC) -> {out}",
        trace.len(),
        trace.duration().as_secs_f64(),
        report.tpmc
    );
    Ok(())
}

fn cmd_import(args: &[String]) -> Result<(), String> {
    let input = positional(args, 0, "blkparse text file")?;
    let out = flag(args, "--out").ok_or("import needs --out FILE")?;
    let action = match flag(args, "--action") {
        None => 'Q',
        Some(v) if v.chars().count() == 1 => v.chars().next().expect("one char"),
        Some(v) => return Err(format!("--action wants a single letter, got {v:?}")),
    };
    let opts = ImportOptions { action };
    if is_jsonl(&out) {
        let text = std::fs::read_to_string(&input).map_err(|e| format!("{input}: {e}"))?;
        let trace = import_blkparse(&text, &opts).map_err(|e| e.to_string())?;
        store(&out, &trace)?;
        println!(
            "imported {} '{action}' events over {:.3} s, {} devices, {} streams -> {out}",
            trace.len(),
            trace.duration().as_secs_f64(),
            trace.meta.devices,
            trace.streams().len()
        );
        return Ok(());
    }
    // Two streaming passes: scan for the epoch and device table, then
    // re-read, normalize through the bounded reorder window, and write
    // chunks as they fill.
    let open = || -> Result<BufReader<File>, String> {
        Ok(BufReader::new(
            File::open(&input).map_err(|e| format!("{input}: {e}"))?,
        ))
    };
    let scan = scan_blkparse(open()?, &opts).map_err(|e| e.to_string())?;
    let chunk = parse(args, "--chunk-records", 0u32)?;
    let window = parse(args, "--reorder-window", 0usize)?;
    let w =
        trail_trace::import_blkparse_into(open()?, &opts, &scan, chunk, window, create_out(&out)?)
            .map_err(|e| e.to_string())?;
    drop(w);
    println!(
        "imported {} '{action}' events, {} devices -> {out}",
        scan.records,
        scan.devices.len()
    );
    Ok(())
}

/// Everything `inspect` accumulates in one streaming pass.
struct InspectStats {
    records: u64,
    reads: u64,
    sectors: u64,
    first: Option<SimTime>,
    last: Option<SimTime>,
    /// First invariant violation, if any (checked on the fly: sorted by
    /// `(arrival, stream)`, no zero-length requests).
    invalid: Option<String>,
    summaries: Vec<StreamSummary>,
}

fn inspect_records<I: Iterator<Item = Result<TraceRecord, String>>>(
    it: I,
) -> Result<InspectStats, String> {
    let mut stats = InspectStats {
        records: 0,
        reads: 0,
        sectors: 0,
        first: None,
        last: None,
        invalid: None,
        summaries: Vec::new(),
    };
    let mut builder = StreamSummaryBuilder::new();
    let mut prev: Option<(SimTime, u32)> = None;
    for r in it {
        let r = r?;
        let i = stats.records;
        stats.records += 1;
        if r.op.is_read() {
            stats.reads += 1;
        }
        stats.sectors += u64::from(r.sectors);
        stats.first.get_or_insert(r.at);
        stats.last = Some(r.at);
        if stats.invalid.is_none() {
            if r.sectors == 0 {
                stats.invalid = Some(format!("record {i}: zero-length request"));
            } else if prev.is_some_and(|p| p > (r.at, r.stream.0)) {
                stats.invalid = Some(format!("records {} and {i} out of order", i - 1));
            }
        }
        prev = Some((r.at, r.stream.0));
        builder.record(&r);
    }
    stats.summaries = builder.finish();
    Ok(stats)
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0, "trace file")?;
    let (meta, stats) = if is_jsonl(&path) {
        let trace = load_jsonl(&path)?;
        let stats = inspect_records(trace.records.iter().map(|r| Ok(*r)))?;
        (trace.meta, stats)
    } else {
        let mut reader = open_binary(&path)?;
        let meta = reader.meta().clone();
        let stats = inspect_records(reader.records().map(|r| r.map_err(|e| e.to_string())))?;
        (meta, stats)
    };
    let duration = match (stats.first, stats.last) {
        (Some(first), Some(last)) => last.saturating_duration_since(first),
        _ => SimDuration::ZERO,
    };
    println!("{path}:");
    println!("  source:   {}", meta.source);
    println!("  seed:     {}", meta.seed);
    println!("  devices:  {}", meta.devices);
    println!("  note:     {}", meta.note);
    println!("  records:  {} ({} reads)", stats.records, stats.reads);
    println!("  volume:   {} sectors", stats.sectors);
    println!("  duration: {:.3} s", duration.as_secs_f64());
    if let Some(why) = stats.invalid {
        return Err(why);
    }
    println!("  validity: ok");
    if !stats.summaries.is_empty() {
        println!("  streams:  {}", stats.summaries.len());
        println!("    stream  requests  reads  writes    sectors  footprint    span");
        for s in &stats.summaries {
            let span = s.last_at.saturating_duration_since(s.first_at);
            println!(
                "    {:>6}  {:>8}  {:>5}  {:>6}  {:>9}  {:>9}  {:>6.3} s",
                s.stream.0,
                s.requests,
                s.reads,
                s.writes,
                s.sectors,
                s.footprint_sectors,
                span.as_secs_f64(),
            );
        }
    }
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let input = positional(args, 0, "input file")?;
    let output = positional(args, 1, "output file")?;
    let chunk = flag(args, "--chunk-records")
        .map(|v| {
            v.parse::<u32>()
                .map_err(|_| format!("bad value for --chunk-records: {v}"))
        })
        .transpose()?;
    let encoding = match (has(args, "--compress"), has(args, "--raw")) {
        (true, true) => return Err("--compress and --raw are mutually exclusive".to_string()),
        (true, false) => Some(ChunkEncoding::Delta),
        (false, true) => Some(ChunkEncoding::Raw),
        (false, false) => None,
    };
    let count = match (is_jsonl(&input), is_jsonl(&output)) {
        // Binary -> JSONL: decode chunk by chunk, print line by line.
        (false, true) => {
            let mut reader = open_binary(&input)?;
            let meta = reader.meta().clone();
            let mut out = create_out(&output)?;
            let oops = |e: std::io::Error| format!("{output}: {e}");
            writeln!(out, "{}", jsonl_meta_line(&meta, None)).map_err(oops)?;
            let mut count: u64 = 0;
            for r in reader.records() {
                let r = r.map_err(|e| format!("{input}: {e}"))?;
                let line = jsonl_record_line(count, &r).map_err(|e| e.to_string())?;
                writeln!(out, "{line}").map_err(oops)?;
                count += 1;
            }
            out.flush().map_err(oops)?;
            count
        }
        // JSONL -> binary: parse line by line, write chunk by chunk.
        (true, false) => {
            let file = File::open(&input).map_err(|e| format!("{input}: {e}"))?;
            let mut lines = BufReader::new(file)
                .lines()
                .map(|l| l.map_err(|e| format!("{input}: {e}")));
            let first = loop {
                match lines.next() {
                    None => return Err(format!("{input}: empty JSONL trace")),
                    Some(line) => {
                        let line = line?;
                        if !line.trim().is_empty() {
                            break line;
                        }
                    }
                }
            };
            let (mut meta, declared) =
                parse_jsonl_meta(&first).map_err(|e| format!("{input}: {e}"))?;
            if let Some(c) = chunk {
                meta.chunk_records = c;
            }
            if let Some(enc) = encoding {
                meta.encoding = enc;
            }
            let mut w = TraceWriter::new(create_out(&output)?, &meta)
                .map_err(|e| format!("{output}: {e}"))?;
            let mut count: u64 = 0;
            for line in lines {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let r = parse_jsonl_record(count, &line).map_err(|e| format!("{input}: {e}"))?;
                w.write_record(&r).map_err(|e| format!("{output}: {e}"))?;
                count += 1;
            }
            w.finish().map_err(|e| format!("{output}: {e}"))?;
            if declared.is_some_and(|d| d != count) {
                return Err(format!(
                    "{input}: header declares {} records but {count} lines follow",
                    declared.expect("checked")
                ));
            }
            count
        }
        // Binary -> binary: stream through, re-chunking if asked.
        (false, false) => {
            let mut reader = open_binary(&input)?;
            let mut meta = reader.meta().clone();
            if let Some(c) = chunk {
                meta.chunk_records = c;
            }
            if let Some(enc) = encoding {
                meta.encoding = enc;
            }
            let mut w = TraceWriter::new(create_out(&output)?, &meta)
                .map_err(|e| format!("{output}: {e}"))?;
            for r in reader.records() {
                let r = r.map_err(|e| format!("{input}: {e}"))?;
                w.write_record(&r).map_err(|e| format!("{output}: {e}"))?;
            }
            let total = w.records_written();
            w.finish().map_err(|e| format!("{output}: {e}"))?;
            total
        }
        // JSONL -> JSONL: the debug format, in memory is fine.
        (true, true) => {
            let trace = load_jsonl(&input)?;
            store(&output, &trace)?;
            trace.len() as u64
        }
    };
    println!("{input} -> {output} ({count} records)");
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0, "trace file")?;
    let speed = parse(args, "--speed", 1.0f64)?;
    let quick = has(args, "--quick");
    let out_dir = flag(args, "--out-dir");
    let which = flag(args, "--target").unwrap_or_else(|| "all".to_string());
    let targets: Vec<TargetKind> = match which.as_str() {
        "all" => vec![
            TargetKind::Standard,
            TargetKind::Trail,
            TargetKind::TrailMulti { logs: 2 },
            TargetKind::Ext2 { trail: false },
            TargetKind::Lfs { trail: false },
        ],
        "standard" => vec![TargetKind::Standard],
        "trail" => vec![TargetKind::Trail],
        "trail_multi2" => vec![TargetKind::TrailMulti { logs: 2 }],
        "ext2" => vec![TargetKind::Ext2 { trail: false }],
        "ext2_trail" => vec![TargetKind::Ext2 { trail: true }],
        "lfs" => vec![TargetKind::Lfs { trail: false }],
        "lfs_trail" => vec![TargetKind::Lfs { trail: true }],
        other => return Err(format!("unknown --target {other}")),
    };
    // JSONL traces (the debug format) load whole; binary traces are
    // re-opened and streamed chunk-at-a-time once per target.
    let in_memory: Option<Trace> = if is_jsonl(&path) {
        let t = load_jsonl(&path)?;
        println!(
            "replaying {} requests ({:.3} s at 1x) at {speed}x:",
            t.len(),
            t.duration().as_secs_f64()
        );
        Some(t)
    } else {
        println!("replaying {path} at {speed}x:");
        None
    };
    for target in targets {
        let opts = ReplayOptions {
            target,
            speed,
            fs_file_blocks: if quick { 128 } else { 1024 },
            ..ReplayOptions::default()
        };
        let rep = match &in_memory {
            Some(t) => replay(t, &opts),
            None => replay_stream(open_binary(&path)?, &opts),
        }
        .map_err(|e| e.to_string())?;
        println!(
            "  {:<14} p50 {:>8.3} ms  p99 {:>8.3} ms  p99.9 {:>8.3} ms  maxQD {:>4}  errors {}",
            rep.target,
            rep.latency.percentile(50.0).as_millis_f64(),
            rep.latency.percentile(99.0).as_millis_f64(),
            rep.latency.percentile(99.9).as_millis_f64(),
            rep.max_queue_depth,
            rep.errors,
        );
        if rep.streams.streams() > 1 {
            for (stream, lane) in rep.streams.iter() {
                println!(
                    "    stream {:<3}    p50 {:>8.3} ms  p99 {:>8.3} ms  p99.9 {:>8.3} ms  reqs {:>6}",
                    stream.0,
                    lane.latency.percentile(50.0).as_millis_f64(),
                    lane.latency.percentile(99.0).as_millis_f64(),
                    lane.latency.percentile(99.9).as_millis_f64(),
                    lane.requests,
                );
            }
        }
        let name = format!("replay_{}", rep.target);
        match &out_dir {
            Some(dir) => {
                let path = write_bench_json_in(std::path::Path::new(dir), &name, &rep.to_json())
                    .map_err(|e| e.to_string())?;
                eprintln!("wrote {}", path.display());
            }
            None => {
                write_bench_json(&name, &rep.to_json()).map_err(|e| e.to_string())?;
            }
        }
    }
    Ok(())
}
