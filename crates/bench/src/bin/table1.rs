//! Table 1: total elapsed time for servicing a sequence of one-sector synchronous writes as the write batch size varies (paper row: 129.9 … 8.4 ms, a ~15x spread).
//!
//! Thin wrapper over `trail_bench::scenarios`; see `run_all` to
//! regenerate every table and figure at once.
//!
//! Usage: `table1 [scale] [--trace-out <path>] [--metrics-out <path>]`

use trail_bench::{run_scenario, write_bench_json, BenchArgs, ScenarioConfig};
use trail_telemetry::RecorderHandle;

fn main() {
    let args = BenchArgs::parse();
    let recorder = args.recorder();
    let cfg = ScenarioConfig {
        scale: args.positional.first().and_then(|a| a.parse().ok()),
        recorder: recorder.clone().map(|r| r as RecorderHandle),
        ..ScenarioConfig::full()
    };
    let out = run_scenario("table1", &cfg).expect("registered scenario");
    print!("{}", out.report);
    write_bench_json("table1", &out.json).expect("write BENCH_table1.json");
    if let Some(r) = &recorder {
        args.write_outputs(r).expect("write trace/metrics outputs");
    }
}
