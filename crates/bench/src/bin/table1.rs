//! Table 1: total elapsed time for servicing a sequence of 32 one-sector
//! synchronous writes, as the write batch size varies from 1 to 32.
//!
//! Paper row: 129.9, 69.6, 33.1, 17.7, 10.9, 8.4 ms — a factor of ~15
//! between the extremes, because each physical log-disk write pays a
//! repositioning delay and a write-after-write command delay that batching
//! amortizes.

use std::cell::RefCell;
use std::rc::Rc;

use trail_bench::{testbed_recorded, write_bench_json, BenchArgs};
use trail_core::TrailConfig;
use trail_disk::SECTOR_SIZE;
use trail_sim::{SimTime, Simulator};
use trail_telemetry::{JsonValue, RecorderHandle};

/// Issues `total` one-sector writes in groups of `batch`: each group is
/// submitted at once (so the driver folds it into one record) and the next
/// group is submitted when the whole group has been acknowledged.
fn elapsed_for_batch(batch: usize, total: usize, recorder: Option<RecorderHandle>) -> f64 {
    // Force a repositioning after every record, as the paper's Table 1
    // setup does (each physical write incurs the repositioning delay) —
    // achieved by the default threshold: a batch of up to 32 sectors plus
    // header always exceeds 30 % of a 90-sector track only when big; to
    // match the paper's "each physical write pays repositioning", use the
    // every-write policy.
    let config = TrailConfig {
        reposition_every_write: true,
        ..TrailConfig::default()
    };
    let mut tb = testbed_recorded(config, recorder);
    let start = tb.sim.now();
    let done_at: Rc<RefCell<SimTime>> = Rc::new(RefCell::new(start));
    let mut issued = 0usize;
    fn submit_group(
        sim: &mut Simulator,
        trail: trail_core::TrailDriver,
        issued: usize,
        batch: usize,
        total: usize,
        done_at: Rc<RefCell<SimTime>>,
    ) {
        if issued >= total {
            return;
        }
        let group = batch.min(total - issued);
        let pending = Rc::new(std::cell::Cell::new(group));
        for k in 0..group {
            let trail2 = trail.clone();
            let pending = Rc::clone(&pending);
            let done_at = Rc::clone(&done_at);
            trail
                .write(
                    sim,
                    0,
                    (issued + k) as u64 * 16,
                    vec![0xB7; SECTOR_SIZE],
                    Box::new(move |sim, _| {
                        *done_at.borrow_mut() = sim.now();
                        pending.set(pending.get() - 1);
                        if pending.get() == 0 {
                            submit_group(sim, trail2, issued + group, batch, total, done_at);
                        }
                    }),
                )
                .expect("write accepted");
        }
    }
    submit_group(
        &mut tb.sim,
        tb.trail.clone(),
        issued,
        batch,
        total,
        Rc::clone(&done_at),
    );
    issued += total; // all groups chain internally
    let _ = issued;
    tb.sim.run();
    let end = *done_at.borrow();
    end.duration_since(start).as_millis_f64()
}

fn main() {
    let args = BenchArgs::parse();
    let recorder = args.recorder();
    let handle = |r: &Option<std::rc::Rc<trail_telemetry::MemoryRecorder>>| {
        r.clone().map(|r| r as RecorderHandle)
    };
    println!("== Table 1 — elapsed time for 32 one-sector writes vs. batch size ==");
    println!("| batch size | elapsed (ms) | paper (ms) |");
    println!("|---|---|---|");
    let paper = [129.9, 69.6, 33.1, 17.7, 10.9, 8.4];
    let mut rows: Vec<JsonValue> = Vec::new();
    for (i, batch) in [1usize, 2, 4, 8, 16, 32].iter().enumerate() {
        let ms = elapsed_for_batch(*batch, 32, handle(&recorder));
        println!("| {batch} | {ms:.1} | {} |", paper[i]);
        rows.push(JsonValue::obj(vec![
            ("batch", JsonValue::Num(*batch as f64)),
            ("elapsed_ms", JsonValue::Num(ms)),
            ("paper_ms", JsonValue::Num(paper[i])),
        ]));
    }
    println!();
    let r1 = elapsed_for_batch(1, 32, None);
    let r32 = elapsed_for_batch(32, 32, None);
    println!(
        "Extremes ratio: {:.1}x (paper: ~15x; 129.9 / 8.4 = 15.5)",
        r1 / r32
    );
    write_bench_json(
        "table1",
        &JsonValue::obj(vec![
            ("bench", JsonValue::str("table1")),
            ("rows", JsonValue::Arr(rows)),
            ("extremes_ratio", JsonValue::Num(r1 / r32)),
        ]),
    )
    .expect("write BENCH_table1.json");
    if let Some(r) = &recorder {
        args.write_outputs(r).expect("write trace/metrics outputs");
    }
}
