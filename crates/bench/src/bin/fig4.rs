//! Figure 4: data recovery overhead breakdown (locate / rebuild / write-back) as the number of pending requests Q varies, with and without the write-back stage.
//!
//! Thin wrapper over `trail_bench::scenarios`; see `run_all` to
//! regenerate every table and figure at once.
//!
//! Usage: `fig4 [scale] [--trace-out <path>] [--metrics-out <path>]`

use trail_bench::{run_scenario, write_bench_json, BenchArgs, ScenarioConfig};
use trail_telemetry::RecorderHandle;

fn main() {
    let args = BenchArgs::parse();
    let recorder = args.recorder();
    let cfg = ScenarioConfig {
        scale: args.positional.first().and_then(|a| a.parse().ok()),
        recorder: recorder.clone().map(|r| r as RecorderHandle),
        ..ScenarioConfig::full()
    };
    let out = run_scenario("fig4", &cfg).expect("registered scenario");
    print!("{}", out.report);
    write_bench_json("fig4", &out.json).expect("write BENCH_fig4.json");
    if let Some(r) = &recorder {
        args.write_outputs(r).expect("write trace/metrics outputs");
    }
}
