//! Figure 4: data recovery overhead.
//!
//! (a) The breakdown of recovery delay across the three stages (locate the
//!     youngest record by binary search; rebuild the active records via
//!     `prev_sect`; write them back to the data disks) as the number of
//!     pending requests Q varies from 32 to 256.
//! (b) Recovery time with the write-back stage included vs. bypassed —
//!     paper: more than 3.5× slower with write-back at Q = 256.
//!
//! Paper anchor: locating the youngest record takes ~450 ms on the
//! 35,717-track 5400-RPM disk (≈20 track scans).

use std::cell::Cell;
use std::rc::Rc;

use trail_core::{
    format_log_disk, read_header, recover, FormatOptions, RecoveryOptions, TrailConfig, TrailDriver,
};
use trail_disk::profiles::DriveProfile;
use trail_disk::{profiles, Disk, SECTOR_SIZE};
use trail_sim::Simulator;

/// The standard data-disk profile: the log disk acknowledges a burst about
/// eight times faster than random write-backs drain, so nearly all Q
/// requests are still pending when power is cut at the last ack.
fn data_disk() -> DriveProfile {
    profiles::wd_caviar_10gb()
}

/// Runs a burst of `q` 4-KB writes and cuts power the moment the last one
/// is acknowledged. Returns the crashed devices.
fn crash_with_pending(q: usize, seed: u64) -> (Disk, Vec<Disk>, usize) {
    use rand::Rng;
    let mut sim = Simulator::new();
    let log = Disk::new("trail-log", profiles::seagate_st41601n());
    let data: Vec<Disk> = (0..3)
        .map(|i| Disk::new(format!("data{i}"), data_disk()))
        .collect();
    format_log_disk(&mut sim, &log, FormatOptions::default()).expect("format");
    let (trail, _) =
        TrailDriver::start(&mut sim, log.clone(), data.clone(), TrailConfig::default())
            .expect("boot");
    let mut rng = trail_sim::rng(seed);
    let acked = Rc::new(Cell::new(0usize));
    let capacity = data[0].geometry().total_sectors() - 64;
    for _ in 0..q {
        let acked = Rc::clone(&acked);
        let log2 = log.clone();
        let data2 = data.clone();
        let lba = rng.gen_range(0..capacity / 8) * 8;
        trail
            .write(
                &mut sim,
                rng.gen_range(0..3),
                lba,
                vec![rng.gen::<u8>(); 8 * SECTOR_SIZE],
                Box::new(move |sim, _| {
                    acked.set(acked.get() + 1);
                    if acked.get() == q {
                        let now = sim.now();
                        log2.power_cut(now);
                        for d in &data2 {
                            d.power_cut(now);
                        }
                    }
                }),
            )
            .expect("write accepted");
    }
    sim.run();
    assert_eq!(acked.get(), q, "all requests must be acknowledged");
    let pending = trail.pinned_blocks();
    (log, data, pending)
}

fn main() {
    println!("== Figure 4 — recovery overhead vs. pending requests Q ==");
    println!(
        "| Q | pending at crash | locate (ms) | rebuild (ms) | write-back (ms) | total (ms) | total w/o WB (ms) | WB/no-WB |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    for &q in &[32usize, 64, 128, 256] {
        // Two identically-seeded crashes: one recovered with write-back,
        // one without (recovery mutates the disks).
        let (log_a, data_a, pending) = crash_with_pending(q, 99);
        let (log_b, data_b, _) = crash_with_pending(q, 99);

        let with_wb = {
            log_a.power_on();
            for d in &data_a {
                d.power_on();
            }
            let mut sim = Simulator::new();
            let header = read_header(&mut sim, &log_a).expect("header");
            recover(
                &mut sim,
                &log_a,
                &data_a,
                &header,
                RecoveryOptions::default(),
            )
            .expect("recovery")
        };
        let without_wb = {
            log_b.power_on();
            for d in &data_b {
                d.power_on();
            }
            let mut sim = Simulator::new();
            let header = read_header(&mut sim, &log_b).expect("header");
            recover(
                &mut sim,
                &log_b,
                &data_b,
                &header,
                RecoveryOptions { write_back: false },
            )
            .expect("recovery")
        };
        println!(
            "| {q} | {pending} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.2}x |",
            with_wb.locate_time.as_millis_f64(),
            with_wb.rebuild_time.as_millis_f64(),
            with_wb.writeback_time.as_millis_f64(),
            with_wb.total_time().as_millis_f64(),
            without_wb.total_time().as_millis_f64(),
            with_wb.total_time() / without_wb.total_time(),
        );
        eprintln!(
            "  Q={q}: {} records rebuilt, {} sectors replayed, {} tracks scanned",
            with_wb.records_found, with_wb.sectors_replayed, with_wb.tracks_scanned
        );
    }
    println!();
    println!("Paper anchors: locate stage ~450 ms (binary search, ~20 track scans of 35,717);");
    println!("write-back dominates; >3.5x slower with write-back at Q=256.");
}
