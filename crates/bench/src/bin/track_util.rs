//! §5.2 text: per-track space utilization of Trail's log disk versus
//! TPC-C transaction concurrency.
//!
//! Paper: concurrency 4 → 12 %, concurrency 8 → 21 %, concurrency 12 →
//! over 30 % — batched writes alone achieve good utilization under bursty
//! traffic, without multiple batched writes per track.

use trail_bench::{tpcc_setup, TpccRig};
use trail_db::FlushPolicy;
use trail_tpcc::{run, ChainOn, RunConfig};

fn main() {
    let txns: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000);
    println!("== Log-disk per-track utilization vs. TPC-C concurrency ({txns} txns) ==");
    println!("| concurrency | mean track utilization | paper |");
    println!("|---|---|---|");
    let paper = [(1usize, "—"), (4, "12%"), (8, "21%"), (12, ">30%")];
    for &(conc, paper_val) in &paper {
        let rig = TpccRig {
            policy: FlushPolicy::EveryCommit,
            ..TpccRig::default()
        };
        let mut setup = tpcc_setup(true, &rig);
        let trail = setup.trail.clone().expect("trail rig");
        run(
            &mut setup.sim,
            &setup.db,
            setup.workload,
            RunConfig {
                transactions: txns,
                concurrency: conc,
                chain_on: ChainOn::Durable,
            },
        );
        // The paper's §5.2 statistic assumes "Trail performs exactly one
        // batched write to each track": utilization = batch sectors (plus
        // the header) over the track's capacity. Use the outer zone's SPT
        // (90), where the log head spends these short runs.
        let spt = 90.0;
        let batch_util = trail.with_stats(|s| {
            if s.batch_sizes.is_empty() {
                0.0
            } else {
                s.batch_sizes
                    .iter()
                    .map(|&b| f64::from(b + 1) / spt)
                    .sum::<f64>()
                    / s.batch_sizes.len() as f64
            }
        });
        let track_util = trail.with_stats(|s| {
            if s.track_utilization.is_empty() {
                0.0
            } else {
                s.track_utilization.iter().sum::<f64>() / s.track_utilization.len() as f64
            }
        });
        println!(
            "| {conc} | {:.1}% (actual track fill: {:.1}%) | {paper_val} |",
            batch_util * 100.0,
            track_util * 100.0
        );
        eprintln!("  concurrency {conc} done");
    }
}
