//! RAID volume layer: geometry x Trail-fronting x load, including
//! degraded-mode (member failure mid-trace) and per-stream placement.
//!
//! Thin wrapper over `trail_bench::scenarios`; see `run_all` to
//! regenerate every artifact at once. Publishes `BENCH_raid.json`.
//!
//! Usage: `raid_sweep [requests] [--quick] [--out-dir <dir>]
//!                    [--trace-out <path>] [--metrics-out <path>]`

use std::path::PathBuf;

use trail_bench::{run_scenario, write_bench_json_in, BenchArgs, ScenarioConfig};
use trail_telemetry::RecorderHandle;

fn main() {
    let args = BenchArgs::parse();
    let mut quick = false;
    let mut out_dir = PathBuf::from(".");
    let mut scale = None;
    let mut it = args.positional.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out-dir" => {
                out_dir = PathBuf::from(it.next().expect("--out-dir needs a path"));
            }
            other => {
                scale = Some(other.parse().unwrap_or_else(|_| {
                    panic!("unknown argument {other:?} (expected a request count)")
                }));
            }
        }
    }
    let recorder = args.recorder();
    let cfg = ScenarioConfig {
        scale,
        recorder: recorder.clone().map(|r| r as RecorderHandle),
        ..if quick {
            ScenarioConfig::quick()
        } else {
            ScenarioConfig::full()
        }
    };
    let out = run_scenario("raid_sweep", &cfg).expect("registered scenario");
    print!("{}", out.report);
    std::fs::create_dir_all(&out_dir).expect("create --out-dir");
    let path = write_bench_json_in(&out_dir, "raid", &out.json).expect("write BENCH_raid.json");
    eprintln!("wrote {}", path.display());
    if let Some(r) = &recorder {
        args.write_outputs(r).expect("write trace/metrics outputs");
    }
}
