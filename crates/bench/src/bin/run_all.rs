//! Regenerates every table and figure of the paper in one command, each
//! scenario on its own worker thread.
//!
//! ```text
//! run_all [--quick] [--threads N] [--seed S] [--out-dir DIR] [--filter SUB]
//! ```
//!
//! - `--quick` runs the shrunk sweeps (seconds, the CI smoke gate);
//!   the default is the paper-scale runs.
//! - `--threads N` caps the worker pool (default: all cores).
//! - `--seed S` mixes `S` into every workload RNG (default 0 keeps the
//!   historical per-experiment seeds).
//! - `--out-dir DIR` receives the `BENCH_<name>.json` files (default:
//!   current directory).
//! - `--filter SUB` runs only scenarios whose registry name contains the
//!   substring `SUB` (e.g. `--filter serve` runs `serve_fleet` and
//!   `serve_sweep`).
//!
//! Reports print and JSON files are written in registry order from the
//! main thread, so the artifacts are byte-identical at any thread count.

use std::path::PathBuf;

use trail_bench::{run_all_scenarios, RunAllOptions};

fn main() {
    let mut opts = RunAllOptions::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--threads" => {
                opts.threads = it
                    .next()
                    .expect("--threads needs a count")
                    .parse()
                    .expect("--threads needs a number");
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed needs a number");
            }
            "--out-dir" => {
                opts.out_dir = PathBuf::from(it.next().expect("--out-dir needs a path"));
            }
            "--filter" => {
                opts.filter = Some(it.next().expect("--filter needs a substring"));
            }
            other => panic!("unknown argument {other:?} (see run_all --help in the source)"),
        }
    }

    let summary = run_all_scenarios(&opts).expect("write bench artifacts");
    for r in &summary.results {
        println!();
        println!("######## {} — {}", r.name, r.title);
        println!();
        print!("{}", r.report);
        eprintln!(
            "wrote {} ({:.2} s on its worker)",
            r.json_path.display(),
            r.wall.as_secs_f64()
        );
    }
    println!();
    println!(
        "== run_all: {} scenarios on {} thread(s): serial estimate {:.1} s, elapsed {:.1} s — wall-clock speedup {:.2}x ==",
        summary.results.len(),
        summary.threads,
        summary.serial_estimate.as_secs_f64(),
        summary.elapsed.as_secs_f64(),
        summary.speedup()
    );
}
