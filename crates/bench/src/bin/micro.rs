//! §5.1 micro-measurements: the latency anchors the paper reports in
//! prose.
//!
//! - a one-sector synchronous write is "consistently around 1.40 msec"
//!   (0.13 ms transfer + ~1.3 ms fixed overhead);
//! - the calibrated δ is below 15 sectors on the ST41601N;
//! - residual rotational latency is under 0.5 ms, an order of magnitude
//!   below the 5.5 ms average;
//! - repositioning (track-to-track switch) costs ~1.5 ms;
//! - a 4-KByte write completes in a few milliseconds (abstract: <1.5 ms —
//!   see EXPERIMENTS.md for the media-rate discrepancy note).

use trail_bench::{sync_writes_trail_recorded, write_bench_json, ArrivalMode, BenchArgs};
use trail_core::TrailConfig;
use trail_disk::{profiles, Disk};
use trail_probe::{calibrate_delta, estimate_write_overhead, measure_rotation_period};
use trail_sim::{SimDuration, Simulator};
use trail_telemetry::{JsonValue, RecorderHandle};

fn main() {
    let args = BenchArgs::parse();
    let recorder = args.recorder();
    let handle = |r: &Option<std::rc::Rc<trail_telemetry::MemoryRecorder>>| {
        r.clone().map(|r| r as RecorderHandle)
    };
    println!("== §5.1 micro-measurements (ST41601N-class log disk) ==");

    // --- Probe-level calibration -------------------------------------
    let mut sim = Simulator::new();
    let disk = Disk::new("log", profiles::seagate_st41601n());
    let rotation = measure_rotation_period(&mut sim, &disk, 7).expect("rotation probe");
    println!(
        "rotation period: {:.3} ms (5400 RPM = 11.111 ms; avg rotational delay {:.2} ms, paper 5.5 ms)",
        rotation.as_millis_f64(),
        rotation.as_millis_f64() / 2.0
    );
    let cal = calibrate_delta(&mut sim, &disk, 0).expect("delta calibration");
    println!(
        "delta calibration: minimal {} sectors, recommended {} (paper: < 15 on this drive)",
        cal.minimal, cal.recommended
    );
    println!("| delta | single-sector write latency (ms) |");
    println!("|---|---|");
    for s in cal
        .samples
        .iter()
        .filter(|s| s.delta + 4 >= cal.minimal && s.delta <= cal.minimal + 4)
    {
        println!("| {} | {:.3} |", s.delta, s.latency.as_millis_f64());
    }
    let overhead = estimate_write_overhead(&mut sim, &disk, 3, 90).expect("overhead probe");
    println!(
        "fixed write overhead estimate: {:.3} ms (paper: ~1.3 ms hardware-related)",
        overhead.as_millis_f64()
    );

    // --- Driver-level latency anchors ---------------------------------
    let sparse = ArrivalMode::Sparse {
        gap: SimDuration::from_millis(5),
    };
    let one_sector = sync_writes_trail_recorded(
        TrailConfig::default(),
        1,
        300,
        512,
        sparse,
        3,
        handle(&recorder),
    );
    println!(
        "one-sector sync write (sparse): mean {:.3} ms, max {:.3} ms (paper: ~1.40 ms)",
        one_sector.latency.mean().as_millis_f64(),
        one_sector.latency.max().as_millis_f64()
    );
    let four_kb = sync_writes_trail_recorded(
        TrailConfig::default(),
        1,
        300,
        4096,
        sparse,
        5,
        handle(&recorder),
    );
    println!(
        "4-KB sync write (sparse): mean {:.3} ms (abstract claims <1.5 ms; media-rate transfer of 8 sectors alone is ~1.0 ms — see EXPERIMENTS.md)",
        four_kb.latency.mean().as_millis_f64()
    );
    let clustered = sync_writes_trail_recorded(
        TrailConfig::default(),
        1,
        300,
        512,
        ArrivalMode::Clustered,
        7,
        handle(&recorder),
    );
    println!(
        "one-sector sync write (clustered): mean {:.3} ms — includes visible repositioning (paper: write + reposition ≈ 3.0 ms)",
        clustered.latency.mean().as_millis_f64()
    );

    // --- Residual rotational latency ----------------------------------
    // Run a sparse workload and read the log disk's rotation-wait stats.
    let config = TrailConfig::default();
    let mut tb = trail_bench::testbed_recorded(config, handle(&recorder));
    use rand::Rng;
    let mut rng = trail_sim::rng(11);
    for i in 0..200u64 {
        let lba = rng.gen_range(0..1_000_000u64);
        tb.trail
            .write(&mut tb.sim, 0, lba, vec![1u8; 512], Box::new(|_, _| {}))
            .expect("write");
        tb.trail.run_until_quiescent(&mut tb.sim);
        let _ = i;
        tb.sim.run_for(SimDuration::from_millis(4));
    }
    let (mean_rot, max_rot) = tb.log_disk.with_stats(|s| {
        (
            s.rotation_waits.mean().as_millis_f64(),
            s.rotation_waits.max().as_millis_f64(),
        )
    });
    println!(
        "log-disk rotational latency during Trail writes: mean {mean_rot:.3} ms, max {max_rot:.3} ms (paper: reduced below 0.5 ms vs. 5.5 ms average)"
    );
    let repositions = tb.trail.with_stats(|s| s.repositions);
    println!("repositions performed: {repositions}");

    write_bench_json(
        "micro",
        &JsonValue::obj(vec![
            ("bench", JsonValue::str("micro")),
            (
                "rotation_period_ms",
                JsonValue::Num(rotation.as_millis_f64()),
            ),
            ("delta_minimal", JsonValue::Num(cal.minimal as f64)),
            (
                "write_overhead_ms",
                JsonValue::Num(overhead.as_millis_f64()),
            ),
            (
                "one_sector_sparse_ms",
                JsonValue::Num(one_sector.latency.mean().as_millis_f64()),
            ),
            (
                "four_kb_sparse_ms",
                JsonValue::Num(four_kb.latency.mean().as_millis_f64()),
            ),
            (
                "one_sector_clustered_ms",
                JsonValue::Num(clustered.latency.mean().as_millis_f64()),
            ),
            ("residual_rotation_mean_ms", JsonValue::Num(mean_rot)),
            ("residual_rotation_max_ms", JsonValue::Num(max_rot)),
            ("repositions", JsonValue::Num(repositions as f64)),
        ]),
    )
    .expect("write BENCH_micro.json");
    if let Some(r) = &recorder {
        args.write_outputs(r).expect("write trace/metrics outputs");
    }
}
