//! Table 2: TPC-C (w = 1, concurrency 1, log buffer 50 KB) on the three
//! storage configurations, 5000 transactions.
//!
//! Paper row:                 EXT2+Trail   EXT2    EXT2+GC
//!   avg response time (s)    0.059        0.097   0.90
//!   disk I/O time, logging   17.6 s       30.4 s  28.8 s
//!   throughput (tpmC)        1004         616     663

use trail_bench::{tpcc_setup_recorded, write_bench_json, BenchArgs, TpccRig};
use trail_db::FlushPolicy;
use trail_telemetry::{JsonValue, RecorderHandle};
use trail_tpcc::{run, ChainOn, RunConfig, TpccReport};

fn run_config(
    trail: bool,
    policy: FlushPolicy,
    chain: ChainOn,
    txns: usize,
    recorder: Option<RecorderHandle>,
) -> TpccReport {
    let rig = TpccRig {
        policy,
        ..TpccRig::default()
    };
    let mut setup = tpcc_setup_recorded(trail, &rig, recorder);
    run(
        &mut setup.sim,
        &setup.db,
        setup.workload,
        RunConfig {
            transactions: txns,
            concurrency: 1,
            chain_on: chain,
        },
    )
}

fn main() {
    let args = BenchArgs::parse();
    let txns: usize = args
        .positional
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(5000);
    let recorder = args.recorder();
    let handle = |r: &Option<std::rc::Rc<trail_telemetry::MemoryRecorder>>| {
        r.clone().map(|r| r as RecorderHandle)
    };
    eprintln!("running Table 2 with {txns} transactions per configuration...");

    let trail = run_config(
        true,
        FlushPolicy::EveryCommit,
        ChainOn::Durable,
        txns,
        handle(&recorder),
    );
    eprintln!("  EXT2+Trail done");
    let plain = run_config(
        false,
        FlushPolicy::EveryCommit,
        ChainOn::Durable,
        txns,
        handle(&recorder),
    );
    eprintln!("  EXT2 done");
    let gc = run_config(
        false,
        FlushPolicy::GroupCommit {
            buffer_bytes: 50 * 1024,
        },
        ChainOn::Control,
        txns,
        handle(&recorder),
    );
    eprintln!("  EXT2+GC done");

    println!("== Table 2 — TPC-C, {txns} transactions, concurrency 1, w=1, 50 KB log buffer ==");
    println!("| metric | EXT2+Trail | EXT2 | EXT2+GC | paper (Trail/EXT2/GC) |");
    println!("|---|---|---|---|---|");
    println!(
        "| avg response time (s) | {:.3} | {:.3} | {:.3} | 0.059 / 0.097 / 0.90 |",
        trail.response.mean().as_secs_f64(),
        plain.response.mean().as_secs_f64(),
        gc.response.mean().as_secs_f64(),
    );
    println!(
        "| disk I/O time for logging (s) | {:.1} | {:.1} | {:.1} | 17.6 / 30.4 / 28.8 |",
        trail.logging_io_time.as_secs_f64(),
        plain.logging_io_time.as_secs_f64(),
        gc.logging_io_time.as_secs_f64(),
    );
    println!(
        "| throughput (tpmC) | {:.0} | {:.0} | {:.0} | 1004 / 616 / 663 |",
        trail.tpmc, plain.tpmc, gc.tpmc,
    );
    println!(
        "| group commits | {} | {} | {} | — |",
        trail.group_commits, plain.group_commits, gc.group_commits,
    );
    println!();
    println!(
        "Shape checks: Trail/EXT2 throughput = {:.2}x (paper 1.63x); \
         Trail logging reduction vs EXT2 = {:.0}% (paper 42%); \
         GC response {:.1}x EXT2's (paper ~9x).",
        trail.tpmc / plain.tpmc,
        100.0 * (1.0 - trail.logging_io_time.as_secs_f64() / plain.logging_io_time.as_secs_f64()),
        gc.response.mean().as_secs_f64() / plain.response.mean().as_secs_f64(),
    );

    let config_json = |name: &str, r: &TpccReport| {
        JsonValue::obj(vec![
            ("config", JsonValue::str(name)),
            (
                "avg_response_s",
                JsonValue::Num(r.response.mean().as_secs_f64()),
            ),
            (
                "logging_io_s",
                JsonValue::Num(r.logging_io_time.as_secs_f64()),
            ),
            ("tpmc", JsonValue::Num(r.tpmc)),
            ("group_commits", JsonValue::Num(r.group_commits as f64)),
        ])
    };
    write_bench_json(
        "table2",
        &JsonValue::obj(vec![
            ("bench", JsonValue::str("table2")),
            ("transactions", JsonValue::Num(txns as f64)),
            (
                "rows",
                JsonValue::Arr(vec![
                    config_json("ext2+trail", &trail),
                    config_json("ext2", &plain),
                    config_json("ext2+gc", &gc),
                ]),
            ),
        ]),
    )
    .expect("write BENCH_table2.json");
    if let Some(r) = &recorder {
        args.write_outputs(r).expect("write trace/metrics outputs");
    }
}
