//! Table 2: TPC-C (w = 1, concurrency 1, log buffer 50 KB) on the three
//! storage configurations, 5000 transactions.
//!
//! Paper row:                 EXT2+Trail   EXT2    EXT2+GC
//!   avg response time (s)    0.059        0.097   0.90
//!   disk I/O time, logging   17.6 s       30.4 s  28.8 s
//!   throughput (tpmC)        1004         616     663

use trail_bench::{tpcc_setup, TpccRig};
use trail_db::FlushPolicy;
use trail_tpcc::{run, ChainOn, RunConfig, TpccReport};

fn run_config(trail: bool, policy: FlushPolicy, chain: ChainOn, txns: usize) -> TpccReport {
    let rig = TpccRig {
        policy,
        ..TpccRig::default()
    };
    let mut setup = tpcc_setup(trail, &rig);
    run(
        &mut setup.sim,
        &setup.db,
        setup.workload,
        RunConfig {
            transactions: txns,
            concurrency: 1,
            chain_on: chain,
        },
    )
}

fn main() {
    let txns: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5000);
    eprintln!("running Table 2 with {txns} transactions per configuration...");

    let trail = run_config(true, FlushPolicy::EveryCommit, ChainOn::Durable, txns);
    eprintln!("  EXT2+Trail done");
    let plain = run_config(false, FlushPolicy::EveryCommit, ChainOn::Durable, txns);
    eprintln!("  EXT2 done");
    let gc = run_config(
        false,
        FlushPolicy::GroupCommit {
            buffer_bytes: 50 * 1024,
        },
        ChainOn::Control,
        txns,
    );
    eprintln!("  EXT2+GC done");

    println!("== Table 2 — TPC-C, {txns} transactions, concurrency 1, w=1, 50 KB log buffer ==");
    println!("| metric | EXT2+Trail | EXT2 | EXT2+GC | paper (Trail/EXT2/GC) |");
    println!("|---|---|---|---|---|");
    println!(
        "| avg response time (s) | {:.3} | {:.3} | {:.3} | 0.059 / 0.097 / 0.90 |",
        trail.response.mean().as_secs_f64(),
        plain.response.mean().as_secs_f64(),
        gc.response.mean().as_secs_f64(),
    );
    println!(
        "| disk I/O time for logging (s) | {:.1} | {:.1} | {:.1} | 17.6 / 30.4 / 28.8 |",
        trail.logging_io_time.as_secs_f64(),
        plain.logging_io_time.as_secs_f64(),
        gc.logging_io_time.as_secs_f64(),
    );
    println!(
        "| throughput (tpmC) | {:.0} | {:.0} | {:.0} | 1004 / 616 / 663 |",
        trail.tpmc, plain.tpmc, gc.tpmc,
    );
    println!(
        "| group commits | {} | {} | {} | — |",
        trail.group_commits, plain.group_commits, gc.group_commits,
    );
    println!();
    println!(
        "Shape checks: Trail/EXT2 throughput = {:.2}x (paper 1.63x); \
         Trail logging reduction vs EXT2 = {:.0}% (paper 42%); \
         GC response {:.1}x EXT2's (paper ~9x).",
        trail.tpmc / plain.tpmc,
        100.0 * (1.0 - trail.logging_io_time.as_secs_f64() / plain.logging_io_time.as_secs_f64()),
        gc.response.mean().as_secs_f64() / plain.response.mean().as_secs_f64(),
    );
}
