//! Crash campaign: sample crash points across a write burst through the
//! fault plane, recover at every one, and chart recovery time against
//! log size — with the durability contract (acknowledged implies
//! recovered, RAID-5 parity consistent) checked at every point.
//!
//! Thin wrapper over `trail_bench::scenarios`; see `run_all` to
//! regenerate every artifact at once. Publishes `BENCH_recovery.json`.
//!
//! Usage: `crash_campaign [crash_points_per_q] [--quick] [--out-dir <dir>]`

use std::path::PathBuf;

use trail_bench::{run_scenario, write_bench_json_in, BenchArgs, ScenarioConfig};

fn main() {
    let args = BenchArgs::parse();
    let mut quick = false;
    let mut out_dir = PathBuf::from(".");
    let mut scale = None;
    let mut it = args.positional.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out-dir" => {
                out_dir = PathBuf::from(it.next().expect("--out-dir needs a path"));
            }
            other => {
                scale = Some(other.parse().unwrap_or_else(|_| {
                    panic!("unknown argument {other:?} (expected a crash-point count)")
                }));
            }
        }
    }
    let cfg = ScenarioConfig {
        scale,
        ..if quick {
            ScenarioConfig::quick()
        } else {
            ScenarioConfig::full()
        }
    };
    let out = run_scenario("crash_campaign", &cfg).expect("registered scenario");
    print!("{}", out.report);
    std::fs::create_dir_all(&out_dir).expect("create --out-dir");
    let path =
        write_bench_json_in(&out_dir, "recovery", &out.json).expect("write BENCH_recovery.json");
    eprintln!("wrote {}", path.display());
}
