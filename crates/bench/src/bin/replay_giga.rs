//! `replay_giga` — the giga-trace scale demonstration: generate a
//! 10⁸-record synthetic trace, delta-compress it, and replay it both
//! single-engine and sharded, reporting throughput, on-disk size, and
//! the peak-resident memory proxy.
//!
//! ```text
//! replay_giga [--records N] [--shards N] [--threads N]
//!             [--out-dir DIR] [--keep]
//! ```
//!
//! The workload is fixed (seed 42, four streams round-robin over four
//! devices, Poisson arrivals at 20 ms mean, 30 % reads, 4-KB requests,
//! standard target) so every run — and every machine — replays the
//! same trace. Routing is shared-nothing: each stream owns one device,
//! so the sharded replay's merged latency artifacts must equal the
//! single-engine replay's exactly, and the run asserts that they do.
//!
//! Console output (wall-clock, machine-dependent):
//!
//! - trace size raw vs delta-compressed, with the ratio,
//! - records/sec single-engine vs sharded, with a `speedup:` line,
//! - the peak-resident-records proxy for both runs.
//!
//! The JSON artifact (`BENCH_replaystream.json` in `--out-dir`) holds
//! only virtual-time-derived fields plus the two file sizes — it is
//! byte-identical across runs, thread counts, and machines.
//!
//! CI runs a 10⁷-record slice (`--records 10000000`); the default is
//! the full 10⁸, sized for a multi-gigabyte raw trace that never fits
//! in memory — generation, conversion, and both replays all stream.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use std::time::Instant;

use trail_bench::{replay_stream_json, write_bench_json_in};
use trail_sim::SimDuration;
use trail_telemetry::JsonValue;
use trail_trace::{
    generate_stream, replay_stream, replay_stream_sharded, ArrivalModel, ChunkEncoding,
    ReplayOptions, ShardPlan, SpatialModel, SyntheticSpec, TargetKind, TraceError, TraceReader,
    TraceWriter, DEFAULT_CHUNK_RECORDS,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut records: usize = 100_000_000;
    let mut shards: u32 = 4;
    let mut threads: Option<usize> = None;
    let mut out_dir = PathBuf::from(".");
    let mut keep = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--records" => {
                records = it
                    .next()
                    .expect("--records needs a count")
                    .parse()
                    .expect("--records takes a number");
            }
            "--shards" => {
                shards = it
                    .next()
                    .expect("--shards needs a count")
                    .parse()
                    .expect("--shards takes a number");
            }
            "--threads" => {
                threads = Some(
                    it.next()
                        .expect("--threads needs a count")
                        .parse()
                        .expect("--threads takes a number"),
                );
            }
            "--out-dir" => {
                out_dir = PathBuf::from(it.next().expect("--out-dir needs a path"));
            }
            "--keep" => keep = true,
            other => panic!("unknown argument {other:?}"),
        }
    }
    std::fs::create_dir_all(&out_dir).expect("create --out-dir");
    let raw_path = out_dir.join("giga_raw.trace");
    let delta_path = out_dir.join("giga_delta.trace");

    let spec = SyntheticSpec {
        seed: 42,
        requests: records,
        devices: 4,
        capacity_sectors: 2 * 1024 * 1024,
        read_fraction: 0.3,
        request_sectors: 8,
        streams: 4,
        arrivals: ArrivalModel::Poisson {
            mean_iat: SimDuration::from_millis(20),
        },
        spatial: SpatialModel::Uniform,
    };

    let wall = Instant::now();
    let file = File::create(&raw_path).expect("create raw trace");
    generate_stream(&spec, DEFAULT_CHUNK_RECORDS, BufWriter::new(file))
        .expect("generate raw trace");
    let raw_bytes = std::fs::metadata(&raw_path).expect("stat raw trace").len();
    println!(
        "generated {records} records in {:.1}s: {raw_bytes} bytes raw",
        wall.elapsed().as_secs_f64()
    );

    let wall = Instant::now();
    let delta_bytes = compress(&raw_path, &delta_path).expect("compress trace");
    let ratio = delta_bytes as f64 / raw_bytes as f64;
    println!(
        "delta-compressed in {:.1}s: {delta_bytes} bytes ({:.1}% of raw)",
        wall.elapsed().as_secs_f64(),
        ratio * 100.0,
    );

    let opts = ReplayOptions {
        target: TargetKind::Standard,
        ..ReplayOptions::default()
    };

    let open = || {
        let f = File::open(&delta_path).map_err(|e| TraceError::Io(e.to_string()))?;
        TraceReader::new(BufReader::new(f))
    };

    let wall = Instant::now();
    let single = replay_stream(open().expect("open delta trace"), &opts).expect("single replay");
    let single_wall = wall.elapsed();
    let single_rps = single.requests as f64 / single_wall.as_secs_f64().max(1e-9);
    println!(
        "single engine: {:.0} records/s wall, peak resident {} records",
        single_rps, single.peak_resident_records
    );

    let mut plan = ShardPlan::new(shards);
    if let Some(t) = threads {
        plan.threads = t;
    }
    let wall = Instant::now();
    let sharded = replay_stream_sharded(open, plan, &opts).expect("sharded replay");
    let sharded_wall = wall.elapsed();
    let sharded_rps = sharded.requests as f64 / sharded_wall.as_secs_f64().max(1e-9);
    println!(
        "sharded ({} shards, {} threads): {:.0} records/s wall, peak resident {} records/shard",
        plan.shards, plan.threads, sharded_rps, sharded.peak_resident_records
    );
    println!("speedup: {:.2}x", sharded_rps / single_rps.max(1e-9));

    assert_eq!(single.requests, sharded.requests, "request counts differ");
    assert_eq!(
        single.latency_fingerprint, sharded.latency_fingerprint,
        "shared-nothing routing must make the sharded replay's latency \
         fingerprint equal the single engine's"
    );
    assert_eq!(
        single.latency.to_json().to_json(),
        sharded.latency.to_json().to_json(),
        "merged latency histogram differs from the single engine's"
    );
    println!(
        "fingerprint: {:016x} (single == sharded)",
        single.latency_fingerprint
    );

    let chunk = DEFAULT_CHUNK_RECORDS;
    let mut json = replay_stream_json(&sharded, chunk, delta_bytes);
    if let JsonValue::Obj(fields) = &mut json {
        fields.push(("shards".to_string(), JsonValue::Num(f64::from(plan.shards))));
        fields.push((
            "trace_bytes_raw".to_string(),
            JsonValue::Num(raw_bytes as f64),
        ));
        fields.push(("compression_ratio".to_string(), JsonValue::Num(ratio)));
    }
    let path = write_bench_json_in(&out_dir, "replaystream", &json)
        .expect("write BENCH_replaystream.json");
    eprintln!("wrote {}", path.display());

    if !keep {
        let _ = std::fs::remove_file(&raw_path);
        let _ = std::fs::remove_file(&delta_path);
    }
}

/// Streams `src` into `dst` with delta-compressed chunks; returns the
/// compressed file's size in bytes.
fn compress(src: &std::path::Path, dst: &std::path::Path) -> Result<u64, String> {
    let file = File::open(src).map_err(|e| e.to_string())?;
    let mut reader = TraceReader::new(BufReader::new(file)).map_err(|e| e.to_string())?;
    let mut meta = reader.meta().clone();
    meta.encoding = ChunkEncoding::Delta;
    let out = File::create(dst).map_err(|e| e.to_string())?;
    let mut w = TraceWriter::new(BufWriter::new(out), &meta).map_err(|e| e.to_string())?;
    for r in reader.records() {
        let r = r.map_err(|e| e.to_string())?;
        w.write_record(&r).map_err(|e| e.to_string())?;
    }
    w.finish().map_err(|e| e.to_string())?;
    Ok(std::fs::metadata(dst).map_err(|e| e.to_string())?.len())
}
