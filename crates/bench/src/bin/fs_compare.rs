//! The paper's §2/§4.3 file-system comparisons, measured instead of
//! argued:
//!
//! 1. **Synchronous file writes**: LFS "cannot support synchronous writes
//!    well because of the inability to batch, and all disk writes still
//!    incur rotational latency" — versus the ext2-like FS on a standard
//!    disk and the same FS on Trail.
//! 2. **Asynchronous throughput**: LFS's strength (large sequential
//!    segment writes) is preserved, to show the comparison is fair.
//! 3. **Garbage collection**: "LFS needs a disk read and a disk write to
//!    clean a disk segment"; Trail reclaims log tracks with zero I/O
//!    because write-back happens from memory.

use std::cell::Cell;
use std::rc::Rc;

use trail_core::{format_log_disk, FormatOptions, TrailConfig, TrailDriver};
use trail_db::{BlockStack, StandardStack, TrailStack};
use trail_disk::{profiles, Disk};
use trail_fs::{ExtFs, FileSystem, Lfs, LfsConfig};
use trail_sim::{LatencySummary, SimDuration, Simulator};

const BLK: usize = 4096;

fn standard_stack() -> (Simulator, Rc<dyn BlockStack>, Disk) {
    let sim = Simulator::new();
    let disk = Disk::new("fsdev", profiles::wd_caviar_10gb());
    let stack: Rc<dyn BlockStack> = Rc::new(StandardStack::new(vec![disk.clone()]));
    (sim, stack, disk)
}

fn trail_stack() -> (Simulator, Rc<dyn BlockStack>, TrailDriver, Disk) {
    let mut sim = Simulator::new();
    let log = Disk::new("trail-log", profiles::seagate_st41601n());
    let disk = Disk::new("fsdev", profiles::wd_caviar_10gb());
    format_log_disk(&mut sim, &log, FormatOptions::default()).expect("format");
    let (drv, _) = TrailDriver::start(&mut sim, log, vec![disk.clone()], TrailConfig::default())
        .expect("boot");
    let stack: Rc<dyn BlockStack> = Rc::new(TrailStack::new(drv.clone(), 1));
    (sim, stack, drv, disk)
}

/// Issues `n` synchronous 4-KB writes into a **preallocated** log file (as
/// database systems lay out their logs, precisely to avoid paying an
/// indirect-block rewrite on every O_SYNC append) and returns the mean
/// latency in ms.
fn sync_appends(sim: &mut Simulator, fs: &dyn FileSystem, n: usize) -> f64 {
    let file = fs.create("synclog").expect("create");
    // Preallocate: one bulk write sizes the file and allocates its blocks.
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    fs.write(
        sim,
        file,
        0,
        vec![0u8; n * BLK],
        false,
        Box::new(move |_, r| {
            r.expect("preallocate");
            d.set(true);
        }),
    )
    .expect("accepted");
    while !done.get() {
        assert!(sim.step(), "preallocate stalled");
    }
    sim.run();
    let lat = Rc::new(std::cell::RefCell::new(LatencySummary::new()));
    for i in 0..n {
        let start = sim.now();
        let l = Rc::clone(&lat);
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        fs.write(
            sim,
            file,
            (i * BLK) as u64,
            vec![(i % 251) as u8; BLK],
            true,
            Box::new(move |sim, r| {
                r.expect("sync write");
                l.borrow_mut().record(sim.now().duration_since(start));
                d.set(true);
            }),
        )
        .expect("accepted");
        while !done.get() {
            assert!(sim.step(), "write stalled");
        }
        // Sparse arrivals (past the repositioning window).
        sim.run_for(SimDuration::from_millis(4));
    }
    let out = lat.borrow().mean().as_millis_f64();
    out
}

fn main() {
    println!("== FS comparison 1 — synchronous 4-KB file appends (mean latency) ==");
    println!("| file system | stack | mean sync write (ms) |");
    println!("|---|---|---|");
    let n = 150;

    let (mut sim, stack, _) = standard_stack();
    let extfs = ExtFs::format(&mut sim, Rc::clone(&stack), 0, 1_000_000).expect("format");
    let ext_std = sync_appends(&mut sim, &extfs, n);
    println!("| ext2-like | standard | {ext_std:.3} |");

    let (mut sim, stack, _drv, _) = trail_stack();
    let extfs = ExtFs::format(&mut sim, Rc::clone(&stack), 0, 1_000_000).expect("format");
    let ext_trail = sync_appends(&mut sim, &extfs, n);
    println!("| ext2-like | **Trail** | {ext_trail:.3} |");

    let (mut sim, stack, _) = standard_stack();
    let lfs = Lfs::new(Rc::clone(&stack), 0, LfsConfig::default());
    let lfs_std = sync_appends(&mut sim, &lfs, n);
    println!("| LFS | standard | {lfs_std:.3} |");

    // The paper's own §2 comparison is at the block level: a Trail log
    // write vs. an LFS partial-segment force.
    let raw_trail = trail_bench::sync_writes_trail(
        TrailConfig::default(),
        1,
        n,
        BLK,
        trail_bench::ArrivalMode::Sparse {
            gap: SimDuration::from_millis(4),
        },
        7,
    )
    .latency
    .mean()
    .as_millis_f64();
    println!("| raw block device | **Trail** | {raw_trail:.3} |");
    println!();
    println!(
        "ext2/Trail is {:.1}x faster than ext2/standard and {:.1}x faster than LFS/standard",
        ext_std / ext_trail,
        lfs_std / ext_trail
    );
    println!("(paper §2: Trail 'has a better synchronous write performance than LFS');");
    println!("LFS beats plain ext2 on sync writes only through fewer metadata writes.");

    // ---------------- async throughput sanity ----------------
    println!();
    println!("== FS comparison 2 — 128 asynchronous 4-KB writes (LFS's home turf) ==");
    let (mut sim, stack, disk) = standard_stack();
    let lfs = Lfs::new(Rc::clone(&stack), 0, LfsConfig::default());
    let f = lfs.create("bulk").expect("create");
    disk.reset_stats();
    let t0 = sim.now();
    for i in 0..128usize {
        lfs.write(
            &mut sim,
            f,
            (i * BLK) as u64,
            vec![1u8; BLK],
            false,
            Box::new(|_, _| {}),
        )
        .expect("accepted");
    }
    sim.run();
    println!(
        "LFS: 128 buffered writes -> {} disk commands, {:.1} ms",
        disk.with_stats(|s| s.writes),
        sim.now().duration_since(t0).as_millis_f64()
    );

    // ---------------- garbage collection ----------------
    println!();
    println!("== FS comparison 3 — reclaiming overwritten space ==");
    let (mut sim, stack, disk) = standard_stack();
    let lfs = Lfs::new(
        Rc::clone(&stack),
        0,
        LfsConfig {
            segment_blocks: 16,
            segments: 64,
        },
    );
    let f = lfs.create("churn").expect("create");
    // Write 128 blocks, overwrite every other one, then clean.
    for i in 0..128usize {
        lfs.write(
            &mut sim,
            f,
            (i * BLK) as u64,
            vec![2u8; BLK],
            false,
            Box::new(|_, _| {}),
        )
        .expect("accepted");
    }
    for i in (0..128usize).step_by(2) {
        lfs.write(
            &mut sim,
            f,
            (i * BLK) as u64,
            vec![3u8; BLK],
            false,
            Box::new(|_, _| {}),
        )
        .expect("accepted");
    }
    sim.run();
    disk.reset_stats();
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    lfs.clean(&mut sim, 8, Box::new(move |_, _| d.set(true)));
    sim.run();
    assert!(done.get());
    let s = lfs.lfs_stats();
    println!(
        "LFS cleaner: {} segments cleaned, {} KB read back, {} KB rewritten",
        s.segments_cleaned,
        s.cleaner_read_bytes / 1024,
        s.cleaner_rewritten_bytes / 1024
    );
    println!("Trail: log tracks are reclaimed when write-back (from memory) commits —");
    println!("zero garbage-collection I/O by construction (§2: 'Trail incurs less disk");
    println!("access overhead due to garbage collection').");
}
