//! The paper's §2/§4.3 file-system comparisons, measured: synchronous appends, asynchronous throughput, and garbage collection across ext2-like, LFS, and Trail.
//!
//! Thin wrapper over `trail_bench::scenarios`; see `run_all` to
//! regenerate every table and figure at once.
//!
//! Usage: `fs_compare [scale] [--trace-out <path>] [--metrics-out <path>]`

use trail_bench::{run_scenario, write_bench_json, BenchArgs, ScenarioConfig};
use trail_telemetry::RecorderHandle;

fn main() {
    let args = BenchArgs::parse();
    let recorder = args.recorder();
    let cfg = ScenarioConfig {
        scale: args.positional.first().and_then(|a| a.parse().ok()),
        recorder: recorder.clone().map(|r| r as RecorderHandle),
        ..ScenarioConfig::full()
    };
    let out = run_scenario("fs_compare", &cfg).expect("registered scenario");
    print!("{}", out.report);
    write_bench_json("fs_compare", &out.json).expect("write BENCH_fs_compare.json");
    if let Some(r) = &recorder {
        args.write_outputs(r).expect("write trace/metrics outputs");
    }
}
