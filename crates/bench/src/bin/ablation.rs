//! Ablations of Trail's design choices (DESIGN.md §5):
//!
//! 1. the 30 % track-utilization threshold (paper §4.2) — sweep it;
//! 2. reposition-after-every-write (the ICCD'93 policy) vs. the
//!    threshold policy (this paper);
//! 3. δ sensitivity — an under-calibrated δ costs a full rotation;
//! 4. the batched-write optimization — cap the batch size.

use trail_bench::{sync_writes_trail, testbed, ArrivalMode};
use trail_core::{format_log_disk, FormatOptions, TrailConfig, TrailDriver};
use trail_disk::{profiles, Disk, SECTOR_SIZE};
use trail_probe::calibrate_delta;
use trail_sim::{SimDuration, Simulator};

fn main() {
    threshold_sweep();
    reposition_policy();
    delta_sensitivity();
    batch_cap();
    multi_log_disks();
}

/// Paper §5.1's final optimization: "it is possible to employ multiple
/// log disks to completely hide the disk re-positioning overhead."
fn multi_log_disks() {
    use trail_core::MultiTrail;
    println!();
    println!("== Ablation 5 — multiple log disks hide repositioning ==");
    println!("| log disks | clustered mean latency (ms) | elapsed for 200 writes (ms) |");
    println!("|---|---|---|");
    for n in [1usize, 2, 3] {
        let mut sim = Simulator::new();
        let logs: Vec<Disk> = (0..n)
            .map(|i| Disk::new(format!("log{i}"), profiles::seagate_st41601n()))
            .collect();
        for l in &logs {
            format_log_disk(&mut sim, l, FormatOptions::default()).expect("format");
        }
        let data = vec![Disk::new("d0", profiles::wd_caviar_10gb())];
        let config = TrailConfig {
            reposition_every_write: true,
            ..TrailConfig::default()
        };
        let (multi, _) = MultiTrail::start(&mut sim, logs, data, config).expect("boot");
        let lat = std::rc::Rc::new(std::cell::RefCell::new(trail_sim::LatencySummary::new()));
        let start = sim.now();
        let done = std::rc::Rc::new(std::cell::Cell::new(0u32));
        fn next(
            sim: &mut Simulator,
            multi: MultiTrail,
            lat: std::rc::Rc<std::cell::RefCell<trail_sim::LatencySummary>>,
            done: std::rc::Rc<std::cell::Cell<u32>>,
            seed: u64,
            remaining: u32,
        ) {
            use rand::Rng;
            if remaining == 0 {
                return;
            }
            let mut rng = trail_sim::rng(seed);
            let lba = rng.gen_range(0..1_000_000u64);
            let nseed = rng.gen();
            let m2 = multi.clone();
            let l2 = std::rc::Rc::clone(&lat);
            let d2 = std::rc::Rc::clone(&done);
            multi
                .write(
                    sim,
                    0,
                    lba,
                    vec![1u8; SECTOR_SIZE],
                    Box::new(move |sim, doneio| {
                        l2.borrow_mut().record(doneio.latency());
                        d2.set(d2.get() + 1);
                        let l3 = std::rc::Rc::clone(&l2);
                        next(sim, m2, l3, d2, nseed, remaining - 1);
                    }),
                )
                .expect("write");
        }
        next(
            &mut sim,
            multi.clone(),
            std::rc::Rc::clone(&lat),
            std::rc::Rc::clone(&done),
            9,
            200,
        );
        while done.get() < 200 {
            assert!(sim.step(), "stalled");
        }
        let elapsed = sim.now().duration_since(start).as_millis_f64();
        println!(
            "| {n} | {:.3} | {elapsed:.1} |",
            lat.borrow().mean().as_millis_f64()
        );
    }
}

fn threshold_sweep() {
    println!("== Ablation 1 — track-utilization threshold (paper fixes 30%) ==");
    println!("| threshold | clustered mean latency (ms) | repositions | mean track util |");
    println!("|---|---|---|---|");
    for &th in &[0.10f64, 0.30, 0.50, 0.90] {
        let config = TrailConfig {
            track_util_threshold: th,
            ..TrailConfig::default()
        };
        let mut tb = testbed(config);
        use rand::Rng;
        let mut rng = trail_sim::rng(21);
        let lat = std::rc::Rc::new(std::cell::RefCell::new(trail_sim::LatencySummary::new()));
        for _ in 0..300 {
            let l = std::rc::Rc::clone(&lat);
            let lba = rng.gen_range(0..1_000_000u64);
            tb.trail
                .write(
                    &mut tb.sim,
                    0,
                    lba,
                    vec![7u8; 2 * SECTOR_SIZE],
                    Box::new(move |_, done| l.borrow_mut().record(done.latency())),
                )
                .expect("write");
        }
        tb.sim.run();
        tb.trail.run_until_quiescent(&mut tb.sim);
        let (repos, util) = tb.trail.with_stats(|s| {
            let u = if s.track_utilization.is_empty() {
                0.0
            } else {
                s.track_utilization.iter().sum::<f64>() / s.track_utilization.len() as f64
            };
            (s.repositions, u)
        });
        println!(
            "| {th:.2} | {:.3} | {repos} | {:.1}% |",
            lat.borrow().mean().as_millis_f64(),
            util * 100.0
        );
    }
    println!();
}

fn reposition_policy() {
    println!("== Ablation 2 — reposition-every-write (ICCD'93) vs. 30% threshold (DSN'02) ==");
    println!("| policy | sparse mean (ms) | clustered mean (ms) | repositions/write |");
    println!("|---|---|---|---|");
    for (name, every) in [("threshold 30%", false), ("every write", true)] {
        let config = TrailConfig {
            reposition_every_write: every,
            ..TrailConfig::default()
        };
        let sparse = sync_writes_trail(
            config,
            1,
            200,
            1024,
            ArrivalMode::Sparse {
                gap: SimDuration::from_millis(5),
            },
            31,
        );
        let clustered = sync_writes_trail(config, 1, 200, 1024, ArrivalMode::Clustered, 33);
        // Count repositions on a fresh clustered run.
        let mut tb = testbed(config);
        for i in 0..100u64 {
            tb.trail
                .write(&mut tb.sim, 0, i * 8, vec![1u8; 1024], Box::new(|_, _| {}))
                .expect("write");
            tb.trail.run_until_quiescent(&mut tb.sim);
        }
        let repos = tb.trail.with_stats(|s| s.repositions) as f64 / 100.0;
        println!(
            "| {name} | {:.3} | {:.3} | {repos:.2} |",
            sparse.latency.mean().as_millis_f64(),
            clustered.latency.mean().as_millis_f64(),
        );
    }
    println!();
}

fn delta_sensitivity() {
    println!("== Ablation 3 — prediction offset delta (calibrated vs. detuned) ==");
    // Calibrate first to know the minimal value.
    let mut sim = Simulator::new();
    let probe_disk = Disk::new("probe", profiles::seagate_st41601n());
    let cal = calibrate_delta(&mut sim, &probe_disk, 0).expect("calibration");
    println!(
        "(calibrated minimal = {}, recommended = {})",
        cal.minimal, cal.recommended
    );
    println!("| delta | sparse mean latency (ms) |");
    println!("|---|---|");
    let candidates = [
        cal.minimal.saturating_sub(4),
        cal.minimal.saturating_sub(2),
        cal.minimal,
        cal.recommended,
        cal.recommended + 4,
        cal.recommended + 12,
    ];
    for &delta in &candidates {
        let mut sim = Simulator::new();
        let log = Disk::new("log", profiles::seagate_st41601n());
        let data = Disk::new("data", profiles::wd_caviar_10gb());
        format_log_disk(
            &mut sim,
            &log,
            FormatOptions {
                delta_override: Some(delta),
            },
        )
        .expect("format");
        let (trail, _) =
            TrailDriver::start(&mut sim, log, vec![data], TrailConfig::default()).expect("boot");
        let lat = std::rc::Rc::new(std::cell::RefCell::new(trail_sim::LatencySummary::new()));
        use rand::Rng;
        let mut rng = trail_sim::rng(77);
        for _ in 0..150 {
            let l = std::rc::Rc::clone(&lat);
            let lba = rng.gen_range(0..1_000_000u64);
            trail
                .write(
                    &mut sim,
                    0,
                    lba,
                    vec![3u8; SECTOR_SIZE],
                    Box::new(move |_, done| l.borrow_mut().record(done.latency())),
                )
                .expect("write");
            trail.run_until_quiescent(&mut sim);
            sim.run_for(SimDuration::from_millis(4));
        }
        println!("| {delta} | {:.3} |", lat.borrow().mean().as_millis_f64());
    }
    println!();
}

fn batch_cap() {
    println!("== Ablation 4 — batched-write optimization (cap the batch) ==");
    println!("| max batch sectors | elapsed for 64 clustered 1-sector writes (ms) |");
    println!("|---|---|");
    for &cap in &[1u32, 4, 16, 32] {
        let config = TrailConfig {
            max_batch_sectors: cap,
            ..TrailConfig::default()
        };
        let mut tb = testbed(config);
        let start = tb.sim.now();
        let done = std::rc::Rc::new(std::cell::Cell::new(0u32));
        for i in 0..64u64 {
            let done = std::rc::Rc::clone(&done);
            tb.trail
                .write(
                    &mut tb.sim,
                    0,
                    i * 8,
                    vec![9u8; SECTOR_SIZE],
                    Box::new(move |_, _| done.set(done.get() + 1)),
                )
                .expect("write");
        }
        // Run until all 64 are acknowledged.
        while done.get() < 64 {
            assert!(tb.sim.step(), "writes did not complete");
        }
        let elapsed = tb.sim.now().duration_since(start);
        println!("| {cap} | {:.1} |", elapsed.as_millis_f64());
    }
}
