//! Ablations of Trail's design choices: track-utilization threshold, reposition policy, δ sensitivity, batch cap, and multiple log disks.
//!
//! Thin wrapper over `trail_bench::scenarios`; see `run_all` to
//! regenerate every table and figure at once.
//!
//! Usage: `ablation [scale] [--trace-out <path>] [--metrics-out <path>]`

use trail_bench::{run_scenario, write_bench_json, BenchArgs, ScenarioConfig};
use trail_telemetry::RecorderHandle;

fn main() {
    let args = BenchArgs::parse();
    let recorder = args.recorder();
    let cfg = ScenarioConfig {
        scale: args.positional.first().and_then(|a| a.parse().ok()),
        recorder: recorder.clone().map(|r| r as RecorderHandle),
        ..ScenarioConfig::full()
    };
    let out = run_scenario("ablation", &cfg).expect("registered scenario");
    print!("{}", out.report);
    write_bench_json("ablation", &out.json).expect("write BENCH_ablation.json");
    if let Some(r) = &recorder {
        args.write_outputs(r).expect("write trace/metrics outputs");
    }
}
