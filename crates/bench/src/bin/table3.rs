//! Table 3: total number of group commits (synchronous disk writes) in a
//! 10,000-transaction TPC-C run, for different log buffer sizes, at
//! concurrency 4.
//!
//! Paper row: 4 KB → 10960, 100 KB → 448, 400 KB → 113, 800 KB → 57,
//! 1200 KB → 39.

use trail_bench::{tpcc_setup, TpccRig};
use trail_db::FlushPolicy;
use trail_tpcc::{run, ChainOn, RunConfig};

fn main() {
    let txns: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10_000);
    let paper = [
        (4usize, 10_960u64),
        (100, 448),
        (400, 113),
        (800, 57),
        (1200, 39),
    ];
    println!("== Table 3 — group commits in a {txns}-transaction run, concurrency 4, w=1 ==");
    println!("| log buffer (KB) | group commits | paper |");
    println!("|---|---|---|");
    for &(kb, paper_count) in &paper {
        let rig = TpccRig {
            policy: FlushPolicy::GroupCommit {
                buffer_bytes: kb * 1024,
            },
            ..TpccRig::default()
        };
        let mut setup = tpcc_setup(false, &rig);
        let report = run(
            &mut setup.sim,
            &setup.db,
            setup.workload,
            RunConfig {
                transactions: txns,
                concurrency: 4,
                chain_on: ChainOn::Control,
            },
        );
        println!("| {kb} | {} | {paper_count} |", report.group_commits);
        eprintln!("  buffer {kb} KB done ({} commits)", report.group_commits);
    }
}
