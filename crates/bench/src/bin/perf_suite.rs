//! Times the simulator hot path in wall-clock terms and writes
//! `BENCH_simperf.json`.
//!
//! ```text
//! perf_suite [--quick] [--seed S] [--out-dir DIR]
//! ```
//!
//! - `--quick` runs the shrunk workloads (the CI smoke gate).
//! - `--seed S` mixes `S` into every workload RNG (default 0 keeps the
//!   historical per-experiment seeds).
//! - `--out-dir DIR` receives `BENCH_simperf.json` (default: current
//!   directory).
//!
//! Unlike every other bench binary, the headline numbers here are
//! *wall-clock* — they measure the executor, not the simulated hardware.
//! The `events_executed` column is virtual-time-derived and therefore
//! deterministic; CI compares it across two runs to prove the perf suite
//! times a stable workload.

use std::path::PathBuf;

use trail_bench::perf::{run_perf_suite, simperf_json, PerfOptions};
use trail_bench::write_bench_json_in;

fn main() {
    let mut opts = PerfOptions::default();
    let mut out_dir = PathBuf::from(".");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                opts.seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed needs a number");
            }
            "--out-dir" => {
                out_dir = PathBuf::from(it.next().expect("--out-dir needs a path"));
            }
            other => panic!("unknown argument {other:?} (see perf_suite --help in the source)"),
        }
    }

    let results = run_perf_suite(&opts);

    println!(
        "== perf_suite ({} mode) — executor wall-clock throughput ==",
        if opts.quick { "quick" } else { "full" }
    );
    println!("| scenario | events | wall (ms) | events/sec |");
    println!("|---|---|---|---|");
    for r in &results {
        println!(
            "| {} | {} | {:.1} | {:.0} |",
            r.name,
            r.events_executed,
            r.wall.as_secs_f64() * 1e3,
            r.events_per_sec()
        );
    }

    let doc = simperf_json(&opts, &results);
    std::fs::create_dir_all(&out_dir).expect("create --out-dir");
    let path = write_bench_json_in(&out_dir, "simperf", &doc).expect("write BENCH_simperf.json");
    eprintln!("wrote {}", path.display());
}
