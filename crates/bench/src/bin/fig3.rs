//! Figure 3: average synchronous write latency of Trail vs. the standard
//! disk subsystem, for sparse and clustered workloads, at 1 and 5
//! processes, across request sizes.
//!
//! Paper: Trail is up to 11.85× faster; clustered Trail writes are slower
//! than sparse ones (visible repositioning); the standard subsystem is
//! insensitive to the arrival mode at one process but degrades with
//! queueing at five; Trail's advantage shrinks as the request size grows.
//!
//! Usage: `fig3 [writes] [--trace-out <path>] [--metrics-out <path>]`
//! (default 400 writes per cell; the flags record every run's telemetry).

use trail_bench::{
    sync_writes_standard_recorded, sync_writes_trail_recorded, write_bench_json, ArrivalMode,
    BenchArgs,
};
use trail_core::TrailConfig;
use trail_sim::SimDuration;
use trail_telemetry::{JsonValue, RecorderHandle};

fn main() {
    let args = BenchArgs::parse();
    let writes: usize = args
        .positional
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(400);
    let recorder = args.recorder();
    let handle = |r: &Option<std::rc::Rc<trail_telemetry::MemoryRecorder>>| {
        r.clone().map(|r| r as RecorderHandle)
    };

    let sizes_kb = [1usize, 4, 8, 16, 32, 64];
    let sparse = ArrivalMode::Sparse {
        gap: SimDuration::from_millis(5),
    };
    let clustered = ArrivalMode::Clustered;
    let mut rows: Vec<JsonValue> = Vec::new();

    for procs in [1usize, 5] {
        println!();
        println!(
            "== Figure 3({}) — average synchronous write latency, {procs} process(es) ==",
            if procs == 1 { 'a' } else { 'b' }
        );
        println!(
            "| size (KB) | Trail sparse (ms) | Trail clustered (ms) | Std sparse (ms) | Std clustered (ms) | best speedup |"
        );
        println!("|---|---|---|---|---|---|");
        for &kb in &sizes_kb {
            let size = kb * 1024;
            let per_proc = (writes / procs).max(1);
            let t_sparse = sync_writes_trail_recorded(
                TrailConfig::default(),
                procs,
                per_proc,
                size,
                sparse,
                7 + kb as u64,
                handle(&recorder),
            )
            .latency
            .mean()
            .as_millis_f64();
            let t_clustered = sync_writes_trail_recorded(
                TrailConfig::default(),
                procs,
                per_proc,
                size,
                clustered,
                11 + kb as u64,
                handle(&recorder),
            )
            .latency
            .mean()
            .as_millis_f64();
            let s_sparse = sync_writes_standard_recorded(
                procs,
                per_proc,
                size,
                sparse,
                13 + kb as u64,
                handle(&recorder),
            )
            .latency
            .mean()
            .as_millis_f64();
            let s_clustered = sync_writes_standard_recorded(
                procs,
                per_proc,
                size,
                clustered,
                17 + kb as u64,
                handle(&recorder),
            )
            .latency
            .mean()
            .as_millis_f64();
            let speedup = (s_sparse / t_sparse).max(s_clustered / t_clustered);
            println!(
                "| {kb} | {t_sparse:.3} | {t_clustered:.3} | {s_sparse:.3} | {s_clustered:.3} | {speedup:.2}x |"
            );
            rows.push(JsonValue::obj(vec![
                ("procs", JsonValue::Num(procs as f64)),
                ("size_kb", JsonValue::Num(kb as f64)),
                ("trail_sparse_ms", JsonValue::Num(t_sparse)),
                ("trail_clustered_ms", JsonValue::Num(t_clustered)),
                ("std_sparse_ms", JsonValue::Num(s_sparse)),
                ("std_clustered_ms", JsonValue::Num(s_clustered)),
                ("best_speedup", JsonValue::Num(speedup)),
            ]));
        }
    }
    println!();
    println!("Paper anchors: Trail up to 11.85x faster; sparse Trail < clustered Trail;");
    println!("standard subsystem insensitive to mode at 1 process; advantage shrinks with size.");

    write_bench_json(
        "fig3",
        &JsonValue::obj(vec![
            ("bench", JsonValue::str("fig3")),
            ("writes", JsonValue::Num(writes as f64)),
            ("rows", JsonValue::Arr(rows)),
        ]),
    )
    .expect("write BENCH_fig3.json");
    if let Some(r) = &recorder {
        args.write_outputs(r).expect("write trace/metrics outputs");
    }
}
