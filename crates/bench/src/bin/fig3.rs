//! Figure 3: average synchronous write latency of Trail vs. the standard disk subsystem, for sparse and clustered workloads, at 1 and 5 processes, across request sizes.
//!
//! Thin wrapper over `trail_bench::scenarios`; see `run_all` to
//! regenerate every table and figure at once.
//!
//! Usage: `fig3 [scale] [--trace-out <path>] [--metrics-out <path>]`

use trail_bench::{run_scenario, write_bench_json, BenchArgs, ScenarioConfig};
use trail_telemetry::RecorderHandle;

fn main() {
    let args = BenchArgs::parse();
    let recorder = args.recorder();
    let cfg = ScenarioConfig {
        scale: args.positional.first().and_then(|a| a.parse().ok()),
        recorder: recorder.clone().map(|r| r as RecorderHandle),
        ..ScenarioConfig::full()
    };
    let out = run_scenario("fig3", &cfg).expect("registered scenario");
    print!("{}", out.report);
    write_bench_json("fig3", &out.json).expect("write BENCH_fig3.json");
    if let Some(r) = &recorder {
        args.write_outputs(r).expect("write trace/metrics outputs");
    }
}
