//! Figure 3: average synchronous write latency of Trail vs. the standard
//! disk subsystem, for sparse and clustered workloads, at 1 and 5
//! processes, across request sizes.
//!
//! Paper: Trail is up to 11.85× faster; clustered Trail writes are slower
//! than sparse ones (visible repositioning); the standard subsystem is
//! insensitive to the arrival mode at one process but degrades with
//! queueing at five; Trail's advantage shrinks as the request size grows.

use trail_bench::{sync_writes_standard, sync_writes_trail, ArrivalMode};
use trail_core::TrailConfig;
use trail_sim::SimDuration;

fn main() {
    let sizes_kb = [1usize, 4, 8, 16, 32, 64];
    let writes = 400;
    let sparse = ArrivalMode::Sparse {
        gap: SimDuration::from_millis(5),
    };
    let clustered = ArrivalMode::Clustered;

    for procs in [1usize, 5] {
        println!();
        println!(
            "== Figure 3({}) — average synchronous write latency, {procs} process(es) ==",
            if procs == 1 { 'a' } else { 'b' }
        );
        println!(
            "| size (KB) | Trail sparse (ms) | Trail clustered (ms) | Std sparse (ms) | Std clustered (ms) | best speedup |"
        );
        println!("|---|---|---|---|---|---|");
        for &kb in &sizes_kb {
            let size = kb * 1024;
            let per_proc = writes / procs;
            let t_sparse = sync_writes_trail(
                TrailConfig::default(),
                procs,
                per_proc,
                size,
                sparse,
                7 + kb as u64,
            )
            .latency
            .mean()
            .as_millis_f64();
            let t_clustered = sync_writes_trail(
                TrailConfig::default(),
                procs,
                per_proc,
                size,
                clustered,
                11 + kb as u64,
            )
            .latency
            .mean()
            .as_millis_f64();
            let s_sparse = sync_writes_standard(procs, per_proc, size, sparse, 13 + kb as u64)
                .latency
                .mean()
                .as_millis_f64();
            let s_clustered =
                sync_writes_standard(procs, per_proc, size, clustered, 17 + kb as u64)
                    .latency
                    .mean()
                    .as_millis_f64();
            let speedup = (s_sparse / t_sparse).max(s_clustered / t_clustered);
            println!(
                "| {kb} | {t_sparse:.3} | {t_clustered:.3} | {s_sparse:.3} | {s_clustered:.3} | {speedup:.2}x |"
            );
        }
    }
    println!();
    println!("Paper anchors: Trail up to 11.85x faster; sparse Trail < clustered Trail;");
    println!("standard subsystem insensitive to mode at 1 process; advantage shrinks with size.");
}
