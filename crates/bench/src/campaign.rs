//! Crash campaigns: deterministic crash-point sampling over the fault
//! plane, fanned across OS threads.
//!
//! A campaign fixes one workload (a burst of `writes` distinct-block
//! tagged writes through Trail — the log-size knob) and crashes it at
//! `crash_points` instants spread across the workload's measured
//! duration, each crash declared through a [`FaultPlan`] armed on the
//! stack's [`trail_sim::FaultClock`]. Every sampled point reboots,
//! runs the three-stage recovery, and checks the durability contract:
//! every write acknowledged before the cut must read back exactly from
//! the data disks (and, for the RAID-5 flavor, every touched parity
//! stripe must XOR to zero). Points are independent simulations, so the
//! sweep fans out through [`crate::parallel_map`]; all reported numbers
//! are virtual-time quantities, byte-identical for any thread count.

use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;
use std::rc::Rc;

use trail::volume::{raid5_map, RaidVolume, VolumeLayout};
use trail::StackBuilder;
use trail_blockio::{IoDone, SharedBlockDevice};
use trail_core::{read_header, recover, recover_with_targets, RecoveryOptions, RecoveryReport};
use trail_disk::{Disk, SECTOR_SIZE};
use trail_sim::{
    Delivered, Fault, FaultKind, FaultPlan, FaultSink, FaultTarget, SimDuration, Simulator,
};

use crate::runner::parallel_map;

/// Which stack a campaign crashes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CampaignFlavor {
    /// Trail over the paper's three raw data disks; the plan cuts power
    /// to the whole system (log and data disks at once).
    RawDisks,
    /// Trail over a three-member RAID-5 volume; the plan cuts the log
    /// disk only (the members stay powered, so the parity-maintenance
    /// machinery keeps running and its invariant can be checked after
    /// recovery).
    Raid5,
}

impl CampaignFlavor {
    /// Short stable label for reports and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CampaignFlavor::RawDisks => "raw",
            CampaignFlavor::Raid5 => "raid5",
        }
    }
}

/// One campaign: a workload size, a crash-point count, and a seed.
#[derive(Clone, Copy, Debug)]
pub struct CampaignSpec {
    /// Which stack to crash.
    pub flavor: CampaignFlavor,
    /// Burst size: how many 4-KB writes the workload submits up front.
    /// This is the log-size knob — more outstanding writes mean more
    /// active log at any crash instant.
    pub writes: usize,
    /// How many crash instants to sample across the workload duration.
    pub crash_points: usize,
    /// Workload RNG seed (also the stack seed).
    pub seed: u64,
}

/// What one sampled crash point produced (all virtual-time).
#[derive(Clone, Debug)]
pub struct CrashPointOutcome {
    /// The cut instant, relative to measurement start.
    pub cut: SimDuration,
    /// Writes acknowledged before the cut.
    pub acked: usize,
    /// Blocks still pinned (pending write-back) at the cut.
    pub pending: usize,
    /// The recovery report from the reboot.
    pub report: RecoveryReport,
    /// Durability-contract violations found after recovery (acknowledged
    /// writes that did not read back, plus inconsistent parity stripes
    /// in the RAID-5 flavor). A healthy campaign reports zero.
    pub violations: usize,
}

/// Per-`writes`-point aggregate over a campaign's crash points — one
/// point on the recovery-time-vs-log-size curve.
#[derive(Clone, Copy, Debug)]
pub struct CampaignAggregate {
    /// The workload burst size.
    pub writes: usize,
    /// Crash points sampled.
    pub points: usize,
    /// Total contract violations (zero for a correct stack).
    pub violations: usize,
    /// Mean writes acknowledged before the cut.
    pub mean_acked: f64,
    /// Mean blocks pending write-back at the cut.
    pub mean_pending: f64,
    /// Mean active log sectors the rebuild stage walked.
    pub mean_active_log_sectors: f64,
    /// Mean log-head span (sectors between recovered head and tail).
    pub mean_log_head_span: f64,
    /// Mean records recovered.
    pub mean_records: f64,
    /// Mean sectors written back.
    pub mean_sectors_replayed: f64,
    /// Mean locate-stage time (ms).
    pub mean_locate_ms: f64,
    /// Mean rebuild-stage time (ms).
    pub mean_rebuild_ms: f64,
    /// Mean write-back-stage time (ms).
    pub mean_writeback_ms: f64,
    /// Mean total recovery time (ms).
    pub mean_total_ms: f64,
    /// Worst-case total recovery time (ms).
    pub max_total_ms: f64,
}

/// Folds a campaign's outcomes into one curve point.
///
/// # Panics
///
/// Panics on an empty outcome list (a campaign bug).
#[must_use]
pub fn aggregate(writes: usize, outcomes: &[CrashPointOutcome]) -> CampaignAggregate {
    assert!(!outcomes.is_empty(), "campaign produced no crash points");
    let n = outcomes.len() as f64;
    let mean = |f: &dyn Fn(&CrashPointOutcome) -> f64| outcomes.iter().map(f).sum::<f64>() / n;
    CampaignAggregate {
        writes,
        points: outcomes.len(),
        violations: outcomes.iter().map(|o| o.violations).sum(),
        mean_acked: mean(&|o| o.acked as f64),
        mean_pending: mean(&|o| o.pending as f64),
        mean_active_log_sectors: mean(&|o| o.report.active_log_sectors as f64),
        mean_log_head_span: mean(&|o| o.report.log_head_span as f64),
        mean_records: mean(&|o| o.report.records_found as f64),
        mean_sectors_replayed: mean(&|o| o.report.sectors_replayed as f64),
        mean_locate_ms: mean(&|o| o.report.locate_time.as_millis_f64()),
        mean_rebuild_ms: mean(&|o| o.report.rebuild_time.as_millis_f64()),
        mean_writeback_ms: mean(&|o| o.report.writeback_time.as_millis_f64()),
        mean_total_ms: mean(&|o| o.report.total_time().as_millis_f64()),
        max_total_ms: outcomes
            .iter()
            .map(|o| o.report.total_time().as_millis_f64())
            .fold(0.0, f64::max),
    }
}

/// Runs one campaign: a probe run measures the workload duration, the
/// cut instants are spread evenly across it, and every crash point runs
/// on the [`parallel_map`] worker pool. Outcomes come back in cut-instant
/// order regardless of thread count.
///
/// # Panics
///
/// Panics if the stack fails to boot or recover, or if an armed cut does
/// not fire — harness bugs, not workload outcomes (contract violations
/// are *counted*, not panicked on).
#[must_use]
pub fn run_campaign(spec: &CampaignSpec, threads: usize) -> Vec<CrashPointOutcome> {
    let probe = run_workload(spec, None);
    assert_eq!(
        probe.acked.len(),
        spec.writes,
        "probe run must acknowledge every write"
    );
    let duration_ns = probe.last_ack.as_nanos().max(1);
    // Midpoint sampling: cut k of n lands at (2k+1)/(2n) of the workload,
    // so no cut falls on the degenerate endpoints.
    let cuts: Vec<SimDuration> = (0..spec.crash_points)
        .map(|k| {
            let num = u128::from(duration_ns) * (2 * k as u128 + 1);
            SimDuration::from_nanos((num / (2 * spec.crash_points as u128)) as u64)
        })
        .collect();
    parallel_map(cuts, threads, |cut| crash_point(spec, cut))
}

/// Observer sink: records that the planned cut fired. Returns `false` so
/// the per-device sinks still own the actual power loss.
struct CrashFlag(Rc<Cell<bool>>);

impl FaultSink for CrashFlag {
    fn apply(&self, _sim: &mut Simulator, fault: &Fault) -> bool {
        if matches!(fault.kind, FaultKind::PowerCut) {
            self.0.set(true);
        }
        false
    }
}

/// One finished workload run: the devices (post-drain), what was
/// acknowledged, and the crash bookkeeping.
struct WorkloadRun {
    log: Disk,
    data: Vec<Disk>,
    volumes: Vec<RaidVolume>,
    /// `(dev, lba, tag)` for every write acknowledged OK, in ack order.
    acked: Vec<(usize, u64, u8)>,
    /// `(dev, lba, tag)` for every write submitted, in submission order.
    submitted: Vec<(usize, u64, u8)>,
    /// Last successful ack instant, relative to measurement start.
    last_ack: SimDuration,
    /// Blocks still pinned (pending write-back) when the run ended.
    pending: usize,
    /// Whether the armed cut fired (always `false` on probe runs).
    crashed: bool,
}

/// The RAID-5 flavor's fixed geometry.
const RAID_MEMBERS: usize = 3;
const RAID_CHUNK_SECTORS: u32 = 8;

/// Runs the campaign workload, optionally crashing it `cut` after the
/// measurement starts, and drains the simulator.
fn run_workload(spec: &CampaignSpec, cut: Option<SimDuration>) -> WorkloadRun {
    let plan = match cut {
        None => FaultPlan::new(),
        Some(at) => match spec.flavor {
            CampaignFlavor::RawDisks => FaultPlan::power_cut_at(at),
            CampaignFlavor::Raid5 => FaultPlan::new().with(Fault {
                at,
                target: FaultTarget::Log(0),
                kind: FaultKind::PowerCut,
            }),
        },
    };
    let builder = StackBuilder::new().seed(spec.seed).trail_default();
    let builder = match spec.flavor {
        CampaignFlavor::RawDisks => builder.data_disks(3),
        CampaignFlavor::Raid5 => builder.data_disks(1).volumes(
            VolumeLayout::Raid5 {
                chunk_sectors: RAID_CHUNK_SECTORS,
            },
            RAID_MEMBERS,
        ),
    };
    let built = builder.faults(plan).build().expect("campaign stack boots");
    let mut sim = built.sim;
    let trail = built.trail.expect("campaign stack runs Trail");
    let log = built.log_disk.expect("campaign stack has a log disk");
    let data = built.data_disks;
    let volumes = built.volumes;
    let crashed = Rc::new(Cell::new(false));
    built
        .fault_clock
        .register(Rc::new(CrashFlag(Rc::clone(&crashed))));

    // The workload: a burst of distinct-block 4-KB tagged writes, all
    // submitted at measurement start (the fig4 shape — Trail absorbs the
    // queue, so the active log grows with the burst size).
    let devs = match spec.flavor {
        CampaignFlavor::RawDisks => data.len(),
        CampaignFlavor::Raid5 => volumes.len(),
    };
    let sectors = u64::from(RAID_CHUNK_SECTORS);
    let acked: Rc<RefCell<Vec<(usize, u64, u8)>>> = Rc::new(RefCell::new(Vec::new()));
    let last_ack = Rc::new(Cell::new(SimDuration::ZERO));
    let mut submitted = Vec::with_capacity(spec.writes);
    let start = sim.now();
    for i in 0..spec.writes {
        let dev = i % devs;
        let lba = 2048 + i as u64 * sectors;
        let tag = (i % 251 + 1) as u8;
        submitted.push((dev, lba, tag));
        let acked = Rc::clone(&acked);
        let last_ack = Rc::clone(&last_ack);
        let done = sim.completion(move |sim: &mut Simulator, del: Delivered<IoDone>| {
            if del.is_ok() {
                acked.borrow_mut().push((dev, lba, tag));
                last_ack.set(sim.now() - start);
            }
        });
        trail
            .write(
                &mut sim,
                dev,
                lba,
                vec![tag; sectors as usize * SECTOR_SIZE],
                done,
            )
            .expect("campaign write accepted");
    }
    sim.run();
    let pending = trail.pinned_blocks();
    let acked = acked.borrow().clone();
    WorkloadRun {
        log,
        data,
        volumes,
        acked,
        submitted,
        last_ack: last_ack.get(),
        pending,
        crashed: crashed.get(),
    }
}

/// Crashes the workload at `cut`, reboots, recovers, and checks the
/// durability contract.
fn crash_point(spec: &CampaignSpec, cut: SimDuration) -> CrashPointOutcome {
    let run = run_workload(spec, Some(cut));
    assert!(run.crashed, "the armed power cut must fire");

    run.log.power_on();
    for d in &run.data {
        d.power_on();
    }
    let mut sim = Simulator::new();
    let header = read_header(&mut sim, &run.log).expect("log header readable after crash");
    let report = match spec.flavor {
        CampaignFlavor::RawDisks => recover(
            &mut sim,
            &run.log,
            &run.data,
            &header,
            RecoveryOptions::default(),
        ),
        CampaignFlavor::Raid5 => {
            let targets: Vec<SharedBlockDevice> = run
                .volumes
                .iter()
                .map(|v| Rc::new(v.clone()) as SharedBlockDevice)
                .collect();
            recover_with_targets(
                &mut sim,
                &run.log,
                &targets,
                &header,
                RecoveryOptions::default(),
            )
        }
    }
    .expect("recovery succeeds");

    let violations = match spec.flavor {
        CampaignFlavor::RawDisks => verify_raw(&run),
        CampaignFlavor::Raid5 => verify_raid5(&run),
    };
    CrashPointOutcome {
        cut,
        acked: run.acked.len(),
        pending: run.pending,
        report,
        violations,
    }
}

/// Checks every acknowledged write reads back from its raw data disk.
fn verify_raw(run: &WorkloadRun) -> usize {
    let sectors = u64::from(RAID_CHUNK_SECTORS);
    run.acked
        .iter()
        .filter(|&&(dev, lba, tag)| {
            (0..sectors).any(|s| run.data[dev].peek_sector(lba + s).iter().any(|&b| b != tag))
        })
        .count()
}

/// Checks every acknowledged write reads back through the RAID-5 layout
/// mapping, and that every stripe the workload touched has parity that
/// XORs to zero across the members.
fn verify_raid5(run: &WorkloadRun) -> usize {
    let mut violations = 0;
    for &(_, lba, tag) in &run.acked {
        let bad = raid5_map(RAID_MEMBERS, RAID_CHUNK_SECTORS, lba, RAID_CHUNK_SECTORS)
            .iter()
            .any(|seg| {
                let base = seg.member_lba(RAID_CHUNK_SECTORS);
                (0..u64::from(seg.sectors)).any(|s| {
                    run.data[seg.member]
                        .peek_sector(base + s)
                        .iter()
                        .any(|&b| b != tag)
                })
            });
        if bad {
            violations += 1;
        }
    }
    // Parity invariant: the members never lost power, so even a crash
    // mid-write must leave every touched stripe consistent once the
    // queues drained and recovery replayed through the volume.
    let touched: BTreeSet<u64> = run
        .submitted
        .iter()
        .flat_map(|&(_, lba, _)| {
            raid5_map(RAID_MEMBERS, RAID_CHUNK_SECTORS, lba, RAID_CHUNK_SECTORS)
                .into_iter()
                .map(|seg| seg.stripe)
        })
        .collect();
    let chunk = u64::from(RAID_CHUNK_SECTORS);
    for stripe in touched {
        for off in 0..chunk {
            let mut acc = [0u8; SECTOR_SIZE];
            for member in &run.data {
                let sector = member.peek_sector(stripe * chunk + off);
                for (a, b) in acc.iter_mut().zip(sector.iter()) {
                    *a ^= b;
                }
            }
            if acc.iter().any(|&b| b != 0) {
                violations += 1;
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let spec = CampaignSpec {
            flavor: CampaignFlavor::RawDisks,
            writes: 8,
            crash_points: 5,
            seed: 7,
        };
        let a = run_campaign(&spec, 1);
        let b = run_campaign(&spec, 4);
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cut, y.cut);
            assert_eq!(x.acked, y.acked);
            assert_eq!(x.pending, y.pending);
            assert_eq!(x.report.total_time(), y.report.total_time());
            assert_eq!(x.violations, 0);
            assert_eq!(y.violations, 0);
        }
    }

    #[test]
    fn raid5_campaign_holds_the_parity_invariant() {
        let spec = CampaignSpec {
            flavor: CampaignFlavor::Raid5,
            writes: 8,
            crash_points: 3,
            seed: 11,
        };
        let outcomes = run_campaign(&spec, 2);
        assert_eq!(outcomes.len(), 3);
        for o in outcomes {
            assert_eq!(o.violations, 0, "cut at {} violated the contract", o.cut);
        }
    }
}
