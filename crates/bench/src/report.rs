//! Machine-readable bench artifacts: `BENCH_<name>.json` result files and
//! the shared `--trace-out` / `--metrics-out` command-line plumbing.
//!
//! Every table/figure binary serializes its headline numbers through
//! [`write_bench_json`] so the perf trajectory is tracked across PRs, and
//! accepts `--trace-out <path>` (Chrome trace-event JSON, loadable in
//! Perfetto) and `--metrics-out <path>` (compact metrics JSON) via
//! [`BenchArgs`].

use std::path::PathBuf;
use std::rc::Rc;

use trail_telemetry::{chrome_trace_string, metrics_json_string, JsonValue, MemoryRecorder};

/// Command-line options shared by the bench binaries.
#[derive(Clone, Debug, Default)]
pub struct BenchArgs {
    /// Where to write a Chrome trace-event JSON (`--trace-out <path>`).
    pub trace_out: Option<PathBuf>,
    /// Where to write the compact metrics JSON (`--metrics-out <path>`).
    pub metrics_out: Option<PathBuf>,
    /// Remaining arguments, in order, with the two flags stripped.
    pub positional: Vec<String>,
}

impl BenchArgs {
    /// Parses the process arguments (excluding `argv[0]`).
    ///
    /// # Panics
    ///
    /// Panics if a flag is given without its path operand.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable form of
    /// [`parse`](Self::parse)).
    ///
    /// # Panics
    ///
    /// Panics if a flag is given without its path operand.
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--trace-out" => {
                    out.trace_out =
                        Some(PathBuf::from(it.next().expect("--trace-out needs a path")));
                }
                "--metrics-out" => {
                    out.metrics_out = Some(PathBuf::from(
                        it.next().expect("--metrics-out needs a path"),
                    ));
                }
                _ => out.positional.push(a),
            }
        }
        out
    }

    /// A recorder to attach to the stack under test, when either output
    /// was requested; `None` means run with the zero-cost `NullRecorder`.
    pub fn recorder(&self) -> Option<Rc<MemoryRecorder>> {
        (self.trace_out.is_some() || self.metrics_out.is_some()).then(MemoryRecorder::shared)
    }

    /// Writes the requested output files from `recorder`'s events.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn write_outputs(&self, recorder: &MemoryRecorder) -> std::io::Result<()> {
        let events = recorder.snapshot();
        if let Some(p) = &self.trace_out {
            std::fs::write(p, chrome_trace_string(&events))?;
            eprintln!(
                "wrote Chrome trace ({} events) to {}",
                events.len(),
                p.display()
            );
        }
        if let Some(p) = &self.metrics_out {
            std::fs::write(p, metrics_json_string(&events))?;
            eprintln!("wrote metrics to {}", p.display());
        }
        Ok(())
    }
}

/// Serializes one bench run's headline results to `BENCH_<name>.json` in
/// the current directory, returning the path written.
///
/// # Errors
///
/// Propagates file-system errors.
pub fn write_bench_json(name: &str, results: &JsonValue) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    std::fs::write(&path, results.to_json())?;
    eprintln!("wrote {}", path.display());
    Ok(path)
}

/// [`write_bench_json`] into an explicit directory, silently (the
/// `run_all` runner prints its own ledger). Returns the path written.
///
/// # Errors
///
/// Propagates file-system errors.
pub fn write_bench_json_in(
    dir: &std::path::Path,
    name: &str,
    results: &JsonValue,
) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, results.to_json())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_positionals() {
        let args = BenchArgs::from_args(
            [
                "500",
                "--trace-out",
                "t.json",
                "--metrics-out",
                "m.json",
                "extra",
            ]
            .map(String::from),
        );
        assert_eq!(
            args.trace_out.as_deref(),
            Some(std::path::Path::new("t.json"))
        );
        assert_eq!(
            args.metrics_out.as_deref(),
            Some(std::path::Path::new("m.json"))
        );
        assert_eq!(
            args.positional,
            vec!["500".to_string(), "extra".to_string()]
        );
        assert!(args.recorder().is_some());
    }

    #[test]
    fn no_flags_means_no_recorder() {
        let args = BenchArgs::from_args(["5000".to_string()]);
        assert!(args.recorder().is_none());
        assert_eq!(args.positional, vec!["5000".to_string()]);
    }
}
