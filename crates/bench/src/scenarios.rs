//! Every table/figure experiment as a callable scenario.
//!
//! Each scenario function runs one paper experiment to completion and
//! returns a [`ScenarioOutput`]: the human-readable report the old
//! binaries printed, plus the `BENCH_<name>.json` payload. The binaries
//! in `src/bin/` are thin wrappers over these functions, and the
//! `run_all` runner executes the whole registry in parallel — each
//! scenario builds its own single-threaded `Simulator`, so scenarios are
//! embarrassingly parallel by construction.
//!
//! All randomness flows through [`ScenarioConfig::mix`], so a fixed
//! config produces byte-identical JSON regardless of how many threads
//! the runner uses (nothing in a report or JSON depends on wall-clock
//! time).

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::rc::Rc;

use rand::Rng;
use trail_core::{
    format_log_disk, read_header, recover, FormatOptions, LogRouting, MultiTrail, RecoveryOptions,
    TrailConfig, TrailDriver,
};
use trail_db::{BlockStack, FlushPolicy, StandardStack, StorageService, TrailStack};
use trail_disk::{profiles, Disk, SECTOR_SIZE};
use trail_fs::{ExtFs, FileSystem, FsError, Lfs, LfsConfig};
use trail_probe::{calibrate_delta, estimate_write_overhead, measure_rotation_period};
use trail_serve::{
    run_fleet, AdmissionPolicy, FleetMode, FleetReport, FleetSpec, Server, ServerConfig,
};
use trail_sim::{Delivered, FaultPlan, LatencySummary, SimDuration, Simulator};
use trail_telemetry::{JsonValue, RecorderHandle};
use trail_tpcc::{run, ChainOn, RunConfig, TpccReport};
use trail_trace::{
    generate, generate_stream, replay as trace_replay, replay_stream as trace_replay_stream,
    replay_stream_sharded, ArrivalModel, ChunkEncoding, ReplayOptions, ReplayReport, ShardPlan,
    SpatialModel, SyntheticSpec, TargetKind, Trace, TraceCapture, TraceMeta, TraceReader,
    TraceWriter, DEFAULT_CHUNK_RECORDS,
};

use crate::campaign::{aggregate, run_campaign, CampaignAggregate, CampaignFlavor, CampaignSpec};
use crate::{
    sync_writes_standard_recorded, sync_writes_trail, sync_writes_trail_recorded, testbed,
    testbed_recorded, tpcc_setup, tpcc_setup_recorded, ArrivalMode, TpccRig,
};

/// How a scenario should run.
#[derive(Clone, Default)]
pub struct ScenarioConfig {
    /// Shrink the sweep so the whole suite finishes in seconds (the CI
    /// smoke gate); `false` reproduces the paper-scale runs.
    pub quick: bool,
    /// Base seed mixed into every workload RNG; `0` keeps the historical
    /// per-experiment seeds.
    pub seed: u64,
    /// Overrides the experiment's headline count (writes for `fig3`,
    /// transactions for the TPC-C scenarios), like the old binaries'
    /// positional argument.
    pub scale: Option<usize>,
    /// Telemetry recorder attached to every stack the scenario builds.
    pub recorder: Option<RecorderHandle>,
}

impl ScenarioConfig {
    /// Paper-scale configuration.
    #[must_use]
    pub fn full() -> Self {
        Self::default()
    }

    /// Seconds-not-minutes configuration for smoke testing.
    #[must_use]
    pub fn quick() -> Self {
        ScenarioConfig {
            quick: true,
            ..Self::default()
        }
    }

    /// Mixes the config's base seed into an experiment-local seed.
    #[must_use]
    pub fn mix(&self, local: u64) -> u64 {
        local ^ self.seed
    }

    fn handle(&self) -> Option<RecorderHandle> {
        self.recorder.clone()
    }
}

/// What one scenario produced.
pub struct ScenarioOutput {
    /// The human-readable report (what the old binary printed).
    pub report: String,
    /// The `BENCH_<name>.json` payload.
    pub json: JsonValue,
}

/// A named entry in the scenario registry.
pub struct ScenarioSpec {
    /// The registry name (what `run_all --filter` matches and the
    /// per-scenario binaries are called).
    pub name: &'static str,
    /// The `BENCH_<artifact>.json` stem — usually the name, but a
    /// scenario may publish under a shorter artifact stem (`serve_fleet`
    /// writes `BENCH_serve.json`).
    pub artifact: &'static str,
    /// One-line description for the runner's progress output.
    pub title: &'static str,
    /// The experiment. A plain function pointer so the registry is
    /// `Send` and each runner thread can call into it directly.
    pub run: fn(&ScenarioConfig) -> ScenarioOutput,
}

/// The full experiment registry, in the order `run_all` reports them.
#[must_use]
pub fn all_scenarios() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            name: "micro",
            artifact: "micro",
            title: "§5.1 micro-measurements (latency anchors)",
            run: micro,
        },
        ScenarioSpec {
            name: "table1",
            artifact: "table1",
            title: "Table 1: elapsed time vs. write batch size",
            run: table1,
        },
        ScenarioSpec {
            name: "fig3",
            artifact: "fig3",
            title: "Figure 3: sync write latency, Trail vs. standard",
            run: fig3,
        },
        ScenarioSpec {
            name: "fig4",
            artifact: "fig4",
            title: "Figure 4: recovery overhead vs. pending requests",
            run: fig4,
        },
        ScenarioSpec {
            name: "ablation",
            artifact: "ablation",
            title: "Design ablations (threshold, reposition, delta, batch, multi-log)",
            run: ablation,
        },
        ScenarioSpec {
            name: "fs_compare",
            artifact: "fs_compare",
            title: "FS comparison: ext2-like vs. LFS vs. Trail",
            run: fs_compare,
        },
        ScenarioSpec {
            name: "table2",
            artifact: "table2",
            title: "Table 2: TPC-C response time / logging IO / tpmC",
            run: table2,
        },
        ScenarioSpec {
            name: "table3",
            artifact: "table3",
            title: "Table 3: group commits vs. log buffer size",
            run: table3,
        },
        ScenarioSpec {
            name: "track_util",
            artifact: "track_util",
            title: "§5.2: log-track utilization vs. concurrency",
            run: track_util,
        },
        ScenarioSpec {
            name: "replay_synthetic",
            artifact: "replay_synthetic",
            title: "Trace replay: synthetic open-loop workload vs. every stack",
            run: replay_synthetic,
        },
        ScenarioSpec {
            name: "overload_sweep",
            artifact: "overload_sweep",
            title: "Overload sweep: replay speed 0.5-8x vs. every stack",
            run: overload_sweep,
        },
        ScenarioSpec {
            name: "replay_tpcc",
            artifact: "replay_tpcc",
            title: "Trace replay: captured TPC-C workload vs. every stack",
            run: replay_tpcc,
        },
        ScenarioSpec {
            name: "replay_stream",
            artifact: "replaystream",
            title: "Streaming replay: chunked trace pipeline, bounded-memory throughput",
            run: replay_stream_bench,
        },
        ScenarioSpec {
            name: "serve_fleet",
            artifact: "serve",
            title:
                "Serving layer: client fleets (open/closed loop) vs. admission policy and overload",
            run: serve_fleet,
        },
        ScenarioSpec {
            name: "serve_sweep",
            artifact: "serve_sweep",
            title: "Serving layer: log routing x admission policy overload sweep on a Trail array",
            run: serve_sweep,
        },
        ScenarioSpec {
            name: "raid_sweep",
            artifact: "raid",
            title: "RAID volumes: geometry x Trail-fronting x overload, incl. degraded mode",
            run: raid_sweep,
        },
        ScenarioSpec {
            name: "crash_campaign",
            artifact: "recovery",
            title: "Crash campaign: recovery time vs. log size across sampled crash points",
            run: crash_campaign,
        },
    ]
}

/// Runs the registered scenario called `name`; `None` if unknown. This is
/// how the per-table binaries reach their scenario.
#[must_use]
pub fn run_scenario(name: &str, cfg: &ScenarioConfig) -> Option<ScenarioOutput> {
    all_scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .map(|s| (s.run)(cfg))
}

// ------------------------------------------------------------- table 1

/// Issues `total` one-sector writes in groups of `batch`: each group is
/// submitted at once (so the driver folds it into one record) and the
/// next group is submitted when the whole group has been acknowledged.
fn elapsed_for_batch(batch: usize, total: usize, recorder: Option<RecorderHandle>) -> f64 {
    // Match the paper's Table 1 setup: each physical log write pays the
    // repositioning delay.
    let config = TrailConfig {
        reposition_every_write: true,
        ..TrailConfig::default()
    };
    let mut tb = testbed_recorded(config, recorder);
    let start = tb.sim.now();
    let done_at = Rc::new(RefCell::new(start));
    fn submit_group(
        sim: &mut Simulator,
        trail: TrailDriver,
        issued: usize,
        batch: usize,
        total: usize,
        done_at: Rc<RefCell<trail_sim::SimTime>>,
    ) {
        if issued >= total {
            return;
        }
        let group = batch.min(total - issued);
        let pending = Rc::new(Cell::new(group));
        for k in 0..group {
            let trail2 = trail.clone();
            let pending = Rc::clone(&pending);
            let done_at = Rc::clone(&done_at);
            let token = sim.completion(move |sim: &mut Simulator, _: Delivered<_>| {
                *done_at.borrow_mut() = sim.now();
                pending.set(pending.get() - 1);
                if pending.get() == 0 {
                    submit_group(sim, trail2, issued + group, batch, total, done_at);
                }
            });
            trail
                .write(
                    sim,
                    0,
                    (issued + k) as u64 * 16,
                    vec![0xB7; SECTOR_SIZE],
                    token,
                )
                .expect("write accepted");
        }
    }
    submit_group(
        &mut tb.sim,
        tb.trail.clone(),
        0,
        batch,
        total,
        Rc::clone(&done_at),
    );
    tb.sim.run();
    let end = *done_at.borrow();
    end.duration_since(start).as_millis_f64()
}

fn table1(cfg: &ScenarioConfig) -> ScenarioOutput {
    let total = cfg.scale.unwrap_or(32);
    let batches: &[(usize, f64)] = if cfg.quick {
        &[(1, 129.9), (4, 33.1), (16, 10.9)]
    } else {
        &[
            (1, 129.9),
            (2, 69.6),
            (4, 33.1),
            (8, 17.7),
            (16, 10.9),
            (32, 8.4),
        ]
    };
    let mut report = String::new();
    let _ = writeln!(
        report,
        "== Table 1 — elapsed time for {total} one-sector writes vs. batch size =="
    );
    let _ = writeln!(report, "| batch size | elapsed (ms) | paper (ms) |");
    let _ = writeln!(report, "|---|---|---|");
    let mut rows: Vec<JsonValue> = Vec::new();
    let mut elapsed: Vec<f64> = Vec::new();
    for &(batch, paper_ms) in batches {
        let ms = elapsed_for_batch(batch, total, cfg.handle());
        let _ = writeln!(report, "| {batch} | {ms:.1} | {paper_ms} |");
        elapsed.push(ms);
        rows.push(JsonValue::obj(vec![
            ("batch", JsonValue::Num(batch as f64)),
            ("elapsed_ms", JsonValue::Num(ms)),
            ("paper_ms", JsonValue::Num(paper_ms)),
        ]));
    }
    let ratio = elapsed.first().copied().unwrap_or(1.0) / elapsed.last().copied().unwrap_or(1.0);
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "Extremes ratio: {ratio:.1}x (paper: ~15x; 129.9 / 8.4 = 15.5)"
    );
    ScenarioOutput {
        report,
        json: JsonValue::obj(vec![
            ("bench", JsonValue::str("table1")),
            ("rows", JsonValue::Arr(rows)),
            ("extremes_ratio", JsonValue::Num(ratio)),
        ]),
    }
}

// ------------------------------------------------------------- figure 3

fn fig3(cfg: &ScenarioConfig) -> ScenarioOutput {
    let writes = cfg.scale.unwrap_or(if cfg.quick { 60 } else { 400 });
    let sizes_kb: &[usize] = if cfg.quick {
        &[1, 8, 64]
    } else {
        &[1, 4, 8, 16, 32, 64]
    };
    let sparse = ArrivalMode::Sparse {
        gap: SimDuration::from_millis(5),
    };
    let clustered = ArrivalMode::Clustered;
    let mut rows: Vec<JsonValue> = Vec::new();
    let mut report = String::new();

    for procs in [1usize, 5] {
        let _ = writeln!(report);
        let _ = writeln!(
            report,
            "== Figure 3({}) — average synchronous write latency, {procs} process(es) ==",
            if procs == 1 { 'a' } else { 'b' }
        );
        let _ = writeln!(
            report,
            "| size (KB) | Trail sparse (ms) | Trail clustered (ms) | Std sparse (ms) | Std clustered (ms) | best speedup |"
        );
        let _ = writeln!(report, "|---|---|---|---|---|---|");
        for &kb in sizes_kb {
            let size = kb * 1024;
            let per_proc = (writes / procs).max(1);
            let t_sparse = sync_writes_trail_recorded(
                TrailConfig::default(),
                procs,
                per_proc,
                size,
                sparse,
                cfg.mix(7 + kb as u64),
                cfg.handle(),
            )
            .latency
            .mean()
            .as_millis_f64();
            let t_clustered = sync_writes_trail_recorded(
                TrailConfig::default(),
                procs,
                per_proc,
                size,
                clustered,
                cfg.mix(11 + kb as u64),
                cfg.handle(),
            )
            .latency
            .mean()
            .as_millis_f64();
            let s_sparse = sync_writes_standard_recorded(
                procs,
                per_proc,
                size,
                sparse,
                cfg.mix(13 + kb as u64),
                cfg.handle(),
            )
            .latency
            .mean()
            .as_millis_f64();
            let s_clustered = sync_writes_standard_recorded(
                procs,
                per_proc,
                size,
                clustered,
                cfg.mix(17 + kb as u64),
                cfg.handle(),
            )
            .latency
            .mean()
            .as_millis_f64();
            let speedup = (s_sparse / t_sparse).max(s_clustered / t_clustered);
            let _ = writeln!(
                report,
                "| {kb} | {t_sparse:.3} | {t_clustered:.3} | {s_sparse:.3} | {s_clustered:.3} | {speedup:.2}x |"
            );
            rows.push(JsonValue::obj(vec![
                ("procs", JsonValue::Num(procs as f64)),
                ("size_kb", JsonValue::Num(kb as f64)),
                ("trail_sparse_ms", JsonValue::Num(t_sparse)),
                ("trail_clustered_ms", JsonValue::Num(t_clustered)),
                ("std_sparse_ms", JsonValue::Num(s_sparse)),
                ("std_clustered_ms", JsonValue::Num(s_clustered)),
                ("best_speedup", JsonValue::Num(speedup)),
            ]));
        }
    }
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "Paper anchors: Trail up to 11.85x faster; sparse Trail < clustered Trail;"
    );
    let _ = writeln!(
        report,
        "standard subsystem insensitive to mode at 1 process; advantage shrinks with size."
    );
    ScenarioOutput {
        report,
        json: JsonValue::obj(vec![
            ("bench", JsonValue::str("fig3")),
            ("writes", JsonValue::Num(writes as f64)),
            ("rows", JsonValue::Arr(rows)),
        ]),
    }
}

// ------------------------------------------------------------- figure 4

/// Runs a burst of `q` 4-KB writes and cuts power the moment the last one
/// is acknowledged. Returns the crashed devices and the pending count.
fn crash_with_pending(q: usize, seed: u64) -> (Disk, Vec<Disk>, usize) {
    let mut sim = Simulator::new();
    let log = Disk::new("trail-log", profiles::seagate_st41601n());
    let data: Vec<Disk> = (0..3)
        .map(|i| Disk::new(format!("data{i}"), profiles::wd_caviar_10gb()))
        .collect();
    format_log_disk(&mut sim, &log, FormatOptions::default()).expect("format");
    let (trail, _) =
        TrailDriver::start(&mut sim, log.clone(), data.clone(), TrailConfig::default())
            .expect("boot");
    let mut rng = trail_sim::rng(seed);
    let acked = Rc::new(Cell::new(0usize));
    let capacity = data[0].geometry().total_sectors() - 64;
    for _ in 0..q {
        let acked = Rc::clone(&acked);
        let log2 = log.clone();
        let data2 = data.clone();
        let lba = rng.gen_range(0..capacity / 8) * 8;
        let dev = rng.gen_range(0..3);
        let payload = vec![rng.gen::<u8>(); 8 * SECTOR_SIZE];
        let token = sim.completion(move |sim: &mut Simulator, del: Delivered<_>| {
            if del.is_err() {
                return;
            }
            acked.set(acked.get() + 1);
            if acked.get() == q {
                let now = sim.now();
                log2.power_cut(now);
                for d in &data2 {
                    d.power_cut(now);
                }
            }
        });
        trail
            .write(&mut sim, dev, lba, payload, token)
            .expect("write accepted");
    }
    sim.run();
    assert_eq!(acked.get(), q, "all requests must be acknowledged");
    let pending = trail.pinned_blocks();
    (log, data, pending)
}

fn fig4(cfg: &ScenarioConfig) -> ScenarioOutput {
    let qs: &[usize] = if cfg.quick {
        &[32, 64]
    } else {
        &[32, 64, 128, 256]
    };
    let mut report = String::new();
    let _ = writeln!(
        report,
        "== Figure 4 — recovery overhead vs. pending requests Q =="
    );
    let _ = writeln!(
        report,
        "| Q | pending at crash | locate (ms) | rebuild (ms) | write-back (ms) | total (ms) | total w/o WB (ms) | WB/no-WB |"
    );
    let _ = writeln!(report, "|---|---|---|---|---|---|---|---|");
    let mut rows: Vec<JsonValue> = Vec::new();
    for &q in qs {
        // Two identically-seeded crashes: one recovered with write-back,
        // one without (recovery mutates the disks).
        let (log_a, data_a, pending) = crash_with_pending(q, cfg.mix(99));
        let (log_b, data_b, _) = crash_with_pending(q, cfg.mix(99));

        let with_wb = {
            log_a.power_on();
            for d in &data_a {
                d.power_on();
            }
            let mut sim = Simulator::new();
            let header = read_header(&mut sim, &log_a).expect("header");
            recover(
                &mut sim,
                &log_a,
                &data_a,
                &header,
                RecoveryOptions::default(),
            )
            .expect("recovery")
        };
        let without_wb = {
            log_b.power_on();
            for d in &data_b {
                d.power_on();
            }
            let mut sim = Simulator::new();
            let header = read_header(&mut sim, &log_b).expect("header");
            recover(
                &mut sim,
                &log_b,
                &data_b,
                &header,
                RecoveryOptions { write_back: false },
            )
            .expect("recovery")
        };
        let _ = writeln!(
            report,
            "| {q} | {pending} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.2}x |",
            with_wb.locate_time.as_millis_f64(),
            with_wb.rebuild_time.as_millis_f64(),
            with_wb.writeback_time.as_millis_f64(),
            with_wb.total_time().as_millis_f64(),
            without_wb.total_time().as_millis_f64(),
            with_wb.total_time() / without_wb.total_time(),
        );
        rows.push(JsonValue::obj(vec![
            ("q", JsonValue::Num(q as f64)),
            ("pending", JsonValue::Num(pending as f64)),
            (
                "locate_ms",
                JsonValue::Num(with_wb.locate_time.as_millis_f64()),
            ),
            (
                "rebuild_ms",
                JsonValue::Num(with_wb.rebuild_time.as_millis_f64()),
            ),
            (
                "writeback_ms",
                JsonValue::Num(with_wb.writeback_time.as_millis_f64()),
            ),
            (
                "total_ms",
                JsonValue::Num(with_wb.total_time().as_millis_f64()),
            ),
            (
                "total_no_wb_ms",
                JsonValue::Num(without_wb.total_time().as_millis_f64()),
            ),
        ]));
    }
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "Paper anchors: locate stage ~450 ms (binary search, ~20 track scans of 35,717);"
    );
    let _ = writeln!(
        report,
        "write-back dominates; >3.5x slower with write-back at Q=256."
    );
    ScenarioOutput {
        report,
        json: JsonValue::obj(vec![
            ("bench", JsonValue::str("fig4")),
            ("rows", JsonValue::Arr(rows)),
        ]),
    }
}

// ------------------------------------------------------------- micro

fn micro(cfg: &ScenarioConfig) -> ScenarioOutput {
    let n = if cfg.quick { 60 } else { 300 };
    let mut report = String::new();
    let _ = writeln!(
        report,
        "== §5.1 micro-measurements (ST41601N-class log disk) =="
    );

    // --- Probe-level calibration -------------------------------------
    let mut sim = Simulator::new();
    let disk = Disk::new("log", profiles::seagate_st41601n());
    let rotation = measure_rotation_period(&mut sim, &disk, 7).expect("rotation probe");
    let _ = writeln!(
        report,
        "rotation period: {:.3} ms (5400 RPM = 11.111 ms; avg rotational delay {:.2} ms, paper 5.5 ms)",
        rotation.as_millis_f64(),
        rotation.as_millis_f64() / 2.0
    );
    let cal = calibrate_delta(&mut sim, &disk, 0).expect("delta calibration");
    let _ = writeln!(
        report,
        "delta calibration: minimal {} sectors, recommended {} (paper: < 15 on this drive)",
        cal.minimal, cal.recommended
    );
    let _ = writeln!(report, "| delta | single-sector write latency (ms) |");
    let _ = writeln!(report, "|---|---|");
    for s in cal
        .samples
        .iter()
        .filter(|s| s.delta + 4 >= cal.minimal && s.delta <= cal.minimal + 4)
    {
        let _ = writeln!(report, "| {} | {:.3} |", s.delta, s.latency.as_millis_f64());
    }
    let overhead = estimate_write_overhead(&mut sim, &disk, 3, 90).expect("overhead probe");
    let _ = writeln!(
        report,
        "fixed write overhead estimate: {:.3} ms (paper: ~1.3 ms hardware-related)",
        overhead.as_millis_f64()
    );

    // --- Driver-level latency anchors ---------------------------------
    let sparse = ArrivalMode::Sparse {
        gap: SimDuration::from_millis(5),
    };
    let one_sector = sync_writes_trail_recorded(
        TrailConfig::default(),
        1,
        n,
        512,
        sparse,
        cfg.mix(3),
        cfg.handle(),
    );
    let _ = writeln!(
        report,
        "one-sector sync write (sparse): mean {:.3} ms, max {:.3} ms (paper: ~1.40 ms)",
        one_sector.latency.mean().as_millis_f64(),
        one_sector.latency.max().as_millis_f64()
    );
    let four_kb = sync_writes_trail_recorded(
        TrailConfig::default(),
        1,
        n,
        4096,
        sparse,
        cfg.mix(5),
        cfg.handle(),
    );
    let _ = writeln!(
        report,
        "4-KB sync write (sparse): mean {:.3} ms (abstract claims <1.5 ms; media-rate transfer of 8 sectors alone is ~1.0 ms — see EXPERIMENTS.md)",
        four_kb.latency.mean().as_millis_f64()
    );
    let clustered = sync_writes_trail_recorded(
        TrailConfig::default(),
        1,
        n,
        512,
        ArrivalMode::Clustered,
        cfg.mix(7),
        cfg.handle(),
    );
    let _ = writeln!(
        report,
        "one-sector sync write (clustered): mean {:.3} ms — includes visible repositioning (paper: write + reposition ≈ 3.0 ms)",
        clustered.latency.mean().as_millis_f64()
    );

    // --- Residual rotational latency ----------------------------------
    // Run a sparse workload and read the log disk's rotation-wait stats.
    let mut tb = testbed_recorded(TrailConfig::default(), cfg.handle());
    let mut rng = trail_sim::rng(cfg.mix(11));
    for _ in 0..(n.min(200)) {
        let lba = rng.gen_range(0..1_000_000u64);
        let token = tb.sim.completion(|_, _: Delivered<_>| {});
        tb.trail
            .write(&mut tb.sim, 0, lba, vec![1u8; 512], token)
            .expect("write");
        tb.trail.run_until_quiescent(&mut tb.sim);
        tb.sim.run_for(SimDuration::from_millis(4));
    }
    let (mean_rot, max_rot) = tb.log_disk.with_stats(|s| {
        (
            s.rotation_waits.mean().as_millis_f64(),
            s.rotation_waits.max().as_millis_f64(),
        )
    });
    let _ = writeln!(
        report,
        "log-disk rotational latency during Trail writes: mean {mean_rot:.3} ms, max {max_rot:.3} ms (paper: reduced below 0.5 ms vs. 5.5 ms average)"
    );
    let repositions = tb.trail.with_stats(|s| s.repositions);
    let _ = writeln!(report, "repositions performed: {repositions}");

    ScenarioOutput {
        report,
        json: JsonValue::obj(vec![
            ("bench", JsonValue::str("micro")),
            (
                "rotation_period_ms",
                JsonValue::Num(rotation.as_millis_f64()),
            ),
            ("delta_minimal", JsonValue::Num(cal.minimal as f64)),
            (
                "write_overhead_ms",
                JsonValue::Num(overhead.as_millis_f64()),
            ),
            (
                "one_sector_sparse_ms",
                JsonValue::Num(one_sector.latency.mean().as_millis_f64()),
            ),
            (
                "four_kb_sparse_ms",
                JsonValue::Num(four_kb.latency.mean().as_millis_f64()),
            ),
            (
                "one_sector_clustered_ms",
                JsonValue::Num(clustered.latency.mean().as_millis_f64()),
            ),
            ("residual_rotation_mean_ms", JsonValue::Num(mean_rot)),
            ("residual_rotation_max_ms", JsonValue::Num(max_rot)),
            ("repositions", JsonValue::Num(repositions as f64)),
        ]),
    }
}

// ------------------------------------------------------------- ablation

fn ablation(cfg: &ScenarioConfig) -> ScenarioOutput {
    let mut report = String::new();
    let mut json: Vec<(&'static str, JsonValue)> = vec![("bench", JsonValue::str("ablation"))];

    // --- 1: track-utilization threshold -------------------------------
    let writes = if cfg.quick { 80 } else { 300 };
    let _ = writeln!(
        report,
        "== Ablation 1 — track-utilization threshold (paper fixes 30%) =="
    );
    let _ = writeln!(
        report,
        "| threshold | clustered mean latency (ms) | repositions | mean track util |"
    );
    let _ = writeln!(report, "|---|---|---|---|");
    let mut threshold_rows = Vec::new();
    for &th in &[0.10f64, 0.30, 0.50, 0.90] {
        let config = TrailConfig {
            track_util_threshold: th,
            ..TrailConfig::default()
        };
        let mut tb = testbed(config);
        let mut rng = trail_sim::rng(cfg.mix(21));
        let lat = Rc::new(RefCell::new(LatencySummary::new()));
        for _ in 0..writes {
            let l = Rc::clone(&lat);
            let lba = rng.gen_range(0..1_000_000u64);
            let token = tb
                .sim
                .completion(move |_, done: Delivered<trail_blockio::IoDone>| {
                    if let Ok(done) = done {
                        l.borrow_mut().record(done.latency());
                    }
                });
            tb.trail
                .write(&mut tb.sim, 0, lba, vec![7u8; 2 * SECTOR_SIZE], token)
                .expect("write");
        }
        tb.sim.run();
        tb.trail.run_until_quiescent(&mut tb.sim);
        let (repos, util) = tb.trail.with_stats(|s| {
            let u = if s.track_utilization.is_empty() {
                0.0
            } else {
                s.track_utilization.iter().sum::<f64>() / s.track_utilization.len() as f64
            };
            (s.repositions, u)
        });
        let mean = lat.borrow().mean().as_millis_f64();
        let _ = writeln!(
            report,
            "| {th:.2} | {mean:.3} | {repos} | {:.1}% |",
            util * 100.0
        );
        threshold_rows.push(JsonValue::obj(vec![
            ("threshold", JsonValue::Num(th)),
            ("clustered_mean_ms", JsonValue::Num(mean)),
            ("repositions", JsonValue::Num(repos as f64)),
            ("mean_track_util", JsonValue::Num(util)),
        ]));
    }
    json.push(("threshold_sweep", JsonValue::Arr(threshold_rows)));
    let _ = writeln!(report);

    // --- 2: reposition policy -----------------------------------------
    let n = if cfg.quick { 50 } else { 200 };
    let repos_n = if cfg.quick { 30 } else { 100 };
    let _ = writeln!(
        report,
        "== Ablation 2 — reposition-every-write (ICCD'93) vs. 30% threshold (DSN'02) =="
    );
    let _ = writeln!(
        report,
        "| policy | sparse mean (ms) | clustered mean (ms) | repositions/write |"
    );
    let _ = writeln!(report, "|---|---|---|---|");
    let mut policy_rows = Vec::new();
    for (name, every) in [("threshold 30%", false), ("every write", true)] {
        let config = TrailConfig {
            reposition_every_write: every,
            ..TrailConfig::default()
        };
        let sparse = sync_writes_trail(
            config,
            1,
            n,
            1024,
            ArrivalMode::Sparse {
                gap: SimDuration::from_millis(5),
            },
            cfg.mix(31),
        );
        let clustered = sync_writes_trail(config, 1, n, 1024, ArrivalMode::Clustered, cfg.mix(33));
        // Count repositions on a fresh clustered run.
        let mut tb = testbed(config);
        for i in 0..repos_n as u64 {
            let token = tb.sim.completion(|_, _: Delivered<_>| {});
            tb.trail
                .write(&mut tb.sim, 0, i * 8, vec![1u8; 1024], token)
                .expect("write");
            tb.trail.run_until_quiescent(&mut tb.sim);
        }
        let repos = tb.trail.with_stats(|s| s.repositions) as f64 / repos_n as f64;
        let sparse_ms = sparse.latency.mean().as_millis_f64();
        let clustered_ms = clustered.latency.mean().as_millis_f64();
        let _ = writeln!(
            report,
            "| {name} | {sparse_ms:.3} | {clustered_ms:.3} | {repos:.2} |"
        );
        policy_rows.push(JsonValue::obj(vec![
            ("policy", JsonValue::str(name)),
            ("sparse_mean_ms", JsonValue::Num(sparse_ms)),
            ("clustered_mean_ms", JsonValue::Num(clustered_ms)),
            ("repositions_per_write", JsonValue::Num(repos)),
        ]));
    }
    json.push(("reposition_policy", JsonValue::Arr(policy_rows)));
    let _ = writeln!(report);

    // --- 3: delta sensitivity ------------------------------------------
    let delta_n = if cfg.quick { 40 } else { 150 };
    let _ = writeln!(
        report,
        "== Ablation 3 — prediction offset delta (calibrated vs. detuned) =="
    );
    let mut sim = Simulator::new();
    let probe_disk = Disk::new("probe", profiles::seagate_st41601n());
    let cal = calibrate_delta(&mut sim, &probe_disk, 0).expect("calibration");
    let _ = writeln!(
        report,
        "(calibrated minimal = {}, recommended = {})",
        cal.minimal, cal.recommended
    );
    let _ = writeln!(report, "| delta | sparse mean latency (ms) |");
    let _ = writeln!(report, "|---|---|");
    let candidates = [
        cal.minimal.saturating_sub(4),
        cal.minimal.saturating_sub(2),
        cal.minimal,
        cal.recommended,
        cal.recommended + 4,
        cal.recommended + 12,
    ];
    let mut delta_rows = Vec::new();
    for &delta in &candidates {
        let mut sim = Simulator::new();
        let log = Disk::new("log", profiles::seagate_st41601n());
        let data = Disk::new("data", profiles::wd_caviar_10gb());
        format_log_disk(
            &mut sim,
            &log,
            FormatOptions {
                delta_override: Some(delta),
            },
        )
        .expect("format");
        let (trail, _) =
            TrailDriver::start(&mut sim, log, vec![data], TrailConfig::default()).expect("boot");
        let lat = Rc::new(RefCell::new(LatencySummary::new()));
        let mut rng = trail_sim::rng(cfg.mix(77));
        for _ in 0..delta_n {
            let l = Rc::clone(&lat);
            let lba = rng.gen_range(0..1_000_000u64);
            let token = sim.completion(move |_, done: Delivered<trail_blockio::IoDone>| {
                if let Ok(done) = done {
                    l.borrow_mut().record(done.latency());
                }
            });
            trail
                .write(&mut sim, 0, lba, vec![3u8; SECTOR_SIZE], token)
                .expect("write");
            trail.run_until_quiescent(&mut sim);
            sim.run_for(SimDuration::from_millis(4));
        }
        let mean = lat.borrow().mean().as_millis_f64();
        let _ = writeln!(report, "| {delta} | {mean:.3} |");
        delta_rows.push(JsonValue::obj(vec![
            ("delta", JsonValue::Num(delta as f64)),
            ("sparse_mean_ms", JsonValue::Num(mean)),
        ]));
    }
    json.push(("delta_sensitivity", JsonValue::Arr(delta_rows)));
    let _ = writeln!(report);

    // --- 4: batch cap ---------------------------------------------------
    let batch_writes: u32 = if cfg.quick { 32 } else { 64 };
    let _ = writeln!(
        report,
        "== Ablation 4 — batched-write optimization (cap the batch) =="
    );
    let _ = writeln!(
        report,
        "| max batch sectors | elapsed for {batch_writes} clustered 1-sector writes (ms) |"
    );
    let _ = writeln!(report, "|---|---|");
    let mut cap_rows = Vec::new();
    for &cap in &[1u32, 4, 16, 32] {
        let config = TrailConfig {
            max_batch_sectors: cap,
            ..TrailConfig::default()
        };
        let mut tb = testbed(config);
        let start = tb.sim.now();
        let done = Rc::new(Cell::new(0u32));
        for i in 0..u64::from(batch_writes) {
            let done = Rc::clone(&done);
            let token = tb.sim.completion(move |_, _: Delivered<_>| {
                done.set(done.get() + 1);
            });
            tb.trail
                .write(&mut tb.sim, 0, i * 8, vec![9u8; SECTOR_SIZE], token)
                .expect("write");
        }
        // Run until all writes are acknowledged.
        while done.get() < batch_writes {
            assert!(tb.sim.step(), "writes did not complete");
        }
        let elapsed = tb.sim.now().duration_since(start).as_millis_f64();
        let _ = writeln!(report, "| {cap} | {elapsed:.1} |");
        cap_rows.push(JsonValue::obj(vec![
            ("max_batch_sectors", JsonValue::Num(f64::from(cap))),
            ("elapsed_ms", JsonValue::Num(elapsed)),
        ]));
    }
    json.push(("batch_cap", JsonValue::Arr(cap_rows)));

    // --- 5: multiple log disks -----------------------------------------
    let multi_writes: u32 = if cfg.quick { 60 } else { 200 };
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "== Ablation 5 — multiple log disks hide repositioning =="
    );
    let _ = writeln!(
        report,
        "| log disks | clustered mean latency (ms) | elapsed for {multi_writes} writes (ms) |"
    );
    let _ = writeln!(report, "|---|---|---|");
    let mut multi_rows = Vec::new();
    for n_logs in [1usize, 2, 3] {
        let config = TrailConfig {
            reposition_every_write: true,
            ..TrailConfig::default()
        };
        let built = trail::StackBuilder::new()
            .data_disks(1)
            .trail_multi(n_logs, config)
            .build()
            .expect("boot");
        let mut sim = built.sim;
        let multi = built.multi.expect("multi-log stack");
        let lat = Rc::new(RefCell::new(LatencySummary::new()));
        let start = sim.now();
        let done = Rc::new(Cell::new(0u32));
        fn next(
            sim: &mut Simulator,
            multi: MultiTrail,
            lat: Rc<RefCell<LatencySummary>>,
            done: Rc<Cell<u32>>,
            seed: u64,
            remaining: u32,
        ) {
            if remaining == 0 {
                return;
            }
            let mut rng = trail_sim::rng(seed);
            let lba = rng.gen_range(0..1_000_000u64);
            let nseed = rng.gen();
            let m2 = multi.clone();
            let l2 = Rc::clone(&lat);
            let d2 = Rc::clone(&done);
            let token = sim.completion(
                move |sim: &mut Simulator, doneio: Delivered<trail_blockio::IoDone>| {
                    if let Ok(doneio) = doneio {
                        l2.borrow_mut().record(doneio.latency());
                    }
                    d2.set(d2.get() + 1);
                    let l3 = Rc::clone(&l2);
                    next(sim, m2, l3, d2, nseed, remaining - 1);
                },
            );
            multi
                .write(sim, 0, lba, vec![1u8; SECTOR_SIZE], token)
                .expect("write");
        }
        next(
            &mut sim,
            multi.clone(),
            Rc::clone(&lat),
            Rc::clone(&done),
            cfg.mix(9),
            multi_writes,
        );
        while done.get() < multi_writes {
            assert!(sim.step(), "stalled");
        }
        let elapsed = sim.now().duration_since(start).as_millis_f64();
        let mean = lat.borrow().mean().as_millis_f64();
        let _ = writeln!(report, "| {n_logs} | {mean:.3} | {elapsed:.1} |");
        multi_rows.push(JsonValue::obj(vec![
            ("log_disks", JsonValue::Num(n_logs as f64)),
            ("clustered_mean_ms", JsonValue::Num(mean)),
            ("elapsed_ms", JsonValue::Num(elapsed)),
        ]));
    }
    json.push(("multi_log_disks", JsonValue::Arr(multi_rows)));

    ScenarioOutput {
        report,
        json: JsonValue::obj(json),
    }
}

// ------------------------------------------------------------- fs_compare

const FS_BLK: usize = 4096;

fn fs_standard_stack() -> (Simulator, Rc<dyn BlockStack>, Disk) {
    let sim = Simulator::new();
    let disk = Disk::new("fsdev", profiles::wd_caviar_10gb());
    let stack: Rc<dyn BlockStack> = Rc::new(StandardStack::new(vec![disk.clone()]));
    (sim, stack, disk)
}

fn fs_trail_stack() -> (Simulator, Rc<dyn BlockStack>, TrailDriver, Disk) {
    let mut sim = Simulator::new();
    let log = Disk::new("trail-log", profiles::seagate_st41601n());
    let disk = Disk::new("fsdev", profiles::wd_caviar_10gb());
    format_log_disk(&mut sim, &log, FormatOptions::default()).expect("format");
    let (drv, _) = TrailDriver::start(&mut sim, log, vec![disk.clone()], TrailConfig::default())
        .expect("boot");
    let stack: Rc<dyn BlockStack> = Rc::new(TrailStack::new(drv.clone(), 1));
    (sim, stack, drv, disk)
}

/// Issues `n` synchronous 4-KB writes into a **preallocated** log file (as
/// database systems lay out their logs, precisely to avoid paying an
/// indirect-block rewrite on every O_SYNC append) and returns the mean
/// latency in ms.
fn sync_appends(sim: &mut Simulator, fs: &dyn FileSystem, n: usize) -> f64 {
    let file = fs.create("synclog").expect("create");
    // Preallocate: one bulk write sizes the file and allocates its blocks.
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    let token = sim.completion(move |_, r: Delivered<Result<(), FsError>>| {
        r.expect("delivered").expect("preallocate");
        d.set(true);
    });
    fs.write(sim, file, 0, vec![0u8; n * FS_BLK], false, token)
        .expect("accepted");
    while !done.get() {
        assert!(sim.step(), "preallocate stalled");
    }
    sim.run();
    let lat = Rc::new(RefCell::new(LatencySummary::new()));
    for i in 0..n {
        let start = sim.now();
        let l = Rc::clone(&lat);
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        let token = sim.completion(
            move |sim: &mut Simulator, r: Delivered<Result<(), FsError>>| {
                r.expect("delivered").expect("sync write");
                l.borrow_mut().record(sim.now().duration_since(start));
                d.set(true);
            },
        );
        fs.write(
            sim,
            file,
            (i * FS_BLK) as u64,
            vec![(i % 251) as u8; FS_BLK],
            true,
            token,
        )
        .expect("accepted");
        while !done.get() {
            assert!(sim.step(), "write stalled");
        }
        // Sparse arrivals (past the repositioning window).
        sim.run_for(SimDuration::from_millis(4));
    }
    let out = lat.borrow().mean().as_millis_f64();
    out
}

fn fs_compare(cfg: &ScenarioConfig) -> ScenarioOutput {
    let n = cfg.scale.unwrap_or(if cfg.quick { 30 } else { 150 });
    let mut report = String::new();
    let _ = writeln!(
        report,
        "== FS comparison 1 — synchronous 4-KB file appends (mean latency) =="
    );
    let _ = writeln!(report, "| file system | stack | mean sync write (ms) |");
    let _ = writeln!(report, "|---|---|---|");

    let (mut sim, stack, _) = fs_standard_stack();
    let extfs = ExtFs::format(&mut sim, Rc::clone(&stack), 0, 1_000_000).expect("format");
    let ext_std = sync_appends(&mut sim, &extfs, n);
    let _ = writeln!(report, "| ext2-like | standard | {ext_std:.3} |");

    let (mut sim, stack, _drv, _) = fs_trail_stack();
    let extfs = ExtFs::format(&mut sim, Rc::clone(&stack), 0, 1_000_000).expect("format");
    let ext_trail = sync_appends(&mut sim, &extfs, n);
    let _ = writeln!(report, "| ext2-like | **Trail** | {ext_trail:.3} |");

    let (mut sim, stack, _) = fs_standard_stack();
    let lfs = Lfs::new(Rc::clone(&stack), 0, LfsConfig::default());
    let lfs_std = sync_appends(&mut sim, &lfs, n);
    let _ = writeln!(report, "| LFS | standard | {lfs_std:.3} |");

    // The paper's own §2 comparison is at the block level: a Trail log
    // write vs. an LFS partial-segment force.
    let raw_trail = sync_writes_trail(
        TrailConfig::default(),
        1,
        n,
        FS_BLK,
        ArrivalMode::Sparse {
            gap: SimDuration::from_millis(4),
        },
        cfg.mix(7),
    )
    .latency
    .mean()
    .as_millis_f64();
    let _ = writeln!(report, "| raw block device | **Trail** | {raw_trail:.3} |");
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "ext2/Trail is {:.1}x faster than ext2/standard and {:.1}x faster than LFS/standard",
        ext_std / ext_trail,
        lfs_std / ext_trail
    );
    let _ = writeln!(
        report,
        "(paper §2: Trail 'has a better synchronous write performance than LFS');"
    );
    let _ = writeln!(
        report,
        "LFS beats plain ext2 on sync writes only through fewer metadata writes."
    );

    // ---------------- async throughput sanity ----------------
    let async_n = if cfg.quick { 64 } else { 128 };
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "== FS comparison 2 — {async_n} asynchronous 4-KB writes (LFS's home turf) =="
    );
    let (mut sim, stack, disk) = fs_standard_stack();
    let lfs = Lfs::new(Rc::clone(&stack), 0, LfsConfig::default());
    let f = lfs.create("bulk").expect("create");
    disk.reset_stats();
    let t0 = sim.now();
    for i in 0..async_n {
        let token = sim.completion(|_, _: Delivered<Result<(), FsError>>| {});
        lfs.write(
            &mut sim,
            f,
            (i * FS_BLK) as u64,
            vec![1u8; FS_BLK],
            false,
            token,
        )
        .expect("accepted");
    }
    sim.run();
    let async_cmds = disk.with_stats(|s| s.writes);
    let async_ms = sim.now().duration_since(t0).as_millis_f64();
    let _ = writeln!(
        report,
        "LFS: {async_n} buffered writes -> {async_cmds} disk commands, {async_ms:.1} ms"
    );

    // ---------------- garbage collection ----------------
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "== FS comparison 3 — reclaiming overwritten space =="
    );
    let (mut sim, stack, disk) = fs_standard_stack();
    let lfs = Lfs::new(
        Rc::clone(&stack),
        0,
        LfsConfig {
            segment_blocks: 16,
            segments: 64,
        },
    );
    let f = lfs.create("churn").expect("create");
    // Write 128 blocks, overwrite every other one, then clean.
    for i in 0..128usize {
        let token = sim.completion(|_, _: Delivered<Result<(), FsError>>| {});
        lfs.write(
            &mut sim,
            f,
            (i * FS_BLK) as u64,
            vec![2u8; FS_BLK],
            false,
            token,
        )
        .expect("accepted");
    }
    for i in (0..128usize).step_by(2) {
        let token = sim.completion(|_, _: Delivered<Result<(), FsError>>| {});
        lfs.write(
            &mut sim,
            f,
            (i * FS_BLK) as u64,
            vec![3u8; FS_BLK],
            false,
            token,
        )
        .expect("accepted");
    }
    sim.run();
    disk.reset_stats();
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    let token = sim.completion(move |_, _: Delivered<Result<(), FsError>>| d.set(true));
    lfs.clean(&mut sim, 8, token);
    sim.run();
    assert!(done.get());
    let s = lfs.lfs_stats();
    let _ = writeln!(
        report,
        "LFS cleaner: {} segments cleaned, {} KB read back, {} KB rewritten",
        s.segments_cleaned,
        s.cleaner_read_bytes / 1024,
        s.cleaner_rewritten_bytes / 1024
    );
    let _ = writeln!(
        report,
        "Trail: log tracks are reclaimed when write-back (from memory) commits —"
    );
    let _ = writeln!(
        report,
        "zero garbage-collection I/O by construction (§2: 'Trail incurs less disk"
    );
    let _ = writeln!(report, "access overhead due to garbage collection').");

    ScenarioOutput {
        report,
        json: JsonValue::obj(vec![
            ("bench", JsonValue::str("fs_compare")),
            ("appends", JsonValue::Num(n as f64)),
            ("ext_std_ms", JsonValue::Num(ext_std)),
            ("ext_trail_ms", JsonValue::Num(ext_trail)),
            ("lfs_std_ms", JsonValue::Num(lfs_std)),
            ("raw_trail_ms", JsonValue::Num(raw_trail)),
            ("async_disk_cmds", JsonValue::Num(async_cmds as f64)),
            ("async_elapsed_ms", JsonValue::Num(async_ms)),
            (
                "gc_segments_cleaned",
                JsonValue::Num(s.segments_cleaned as f64),
            ),
            (
                "gc_read_kb",
                JsonValue::Num((s.cleaner_read_bytes / 1024) as f64),
            ),
            (
                "gc_rewritten_kb",
                JsonValue::Num((s.cleaner_rewritten_bytes / 1024) as f64),
            ),
        ]),
    }
}

// ------------------------------------------------------------- table 2

fn table2_config(
    cfg: &ScenarioConfig,
    trail: bool,
    policy: FlushPolicy,
    chain: ChainOn,
    txns: usize,
) -> TpccReport {
    let rig = TpccRig {
        policy,
        seed: cfg.mix(TpccRig::default().seed),
        ..TpccRig::default()
    };
    let mut setup = tpcc_setup_recorded(trail, &rig, cfg.handle());
    run(
        &mut setup.sim,
        &setup.db,
        setup.workload,
        RunConfig {
            transactions: txns,
            concurrency: 1,
            chain_on: chain,
        },
    )
}

fn table2(cfg: &ScenarioConfig) -> ScenarioOutput {
    let txns = cfg.scale.unwrap_or(if cfg.quick { 300 } else { 5000 });
    let trail = table2_config(cfg, true, FlushPolicy::EveryCommit, ChainOn::Durable, txns);
    let plain = table2_config(cfg, false, FlushPolicy::EveryCommit, ChainOn::Durable, txns);
    let gc = table2_config(
        cfg,
        false,
        FlushPolicy::GroupCommit {
            buffer_bytes: 50 * 1024,
        },
        ChainOn::Control,
        txns,
    );

    let mut report = String::new();
    let _ = writeln!(
        report,
        "== Table 2 — TPC-C, {txns} transactions, concurrency 1, w=1, 50 KB log buffer =="
    );
    let _ = writeln!(
        report,
        "| metric | EXT2+Trail | EXT2 | EXT2+GC | paper (Trail/EXT2/GC) |"
    );
    let _ = writeln!(report, "|---|---|---|---|---|");
    let _ = writeln!(
        report,
        "| avg response time (s) | {:.3} | {:.3} | {:.3} | 0.059 / 0.097 / 0.90 |",
        trail.response.mean().as_secs_f64(),
        plain.response.mean().as_secs_f64(),
        gc.response.mean().as_secs_f64(),
    );
    let _ = writeln!(
        report,
        "| disk I/O time for logging (s) | {:.1} | {:.1} | {:.1} | 17.6 / 30.4 / 28.8 |",
        trail.logging_io_time.as_secs_f64(),
        plain.logging_io_time.as_secs_f64(),
        gc.logging_io_time.as_secs_f64(),
    );
    let _ = writeln!(
        report,
        "| throughput (tpmC) | {:.0} | {:.0} | {:.0} | 1004 / 616 / 663 |",
        trail.tpmc, plain.tpmc, gc.tpmc,
    );
    let _ = writeln!(
        report,
        "| group commits | {} | {} | {} | — |",
        trail.group_commits, plain.group_commits, gc.group_commits,
    );
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "Shape checks: Trail/EXT2 throughput = {:.2}x (paper 1.63x); \
         Trail logging reduction vs EXT2 = {:.0}% (paper 42%); \
         GC response {:.1}x EXT2's (paper ~9x).",
        trail.tpmc / plain.tpmc,
        100.0 * (1.0 - trail.logging_io_time.as_secs_f64() / plain.logging_io_time.as_secs_f64()),
        gc.response.mean().as_secs_f64() / plain.response.mean().as_secs_f64(),
    );

    let config_json = |name: &str, r: &TpccReport| {
        JsonValue::obj(vec![
            ("config", JsonValue::str(name)),
            (
                "avg_response_s",
                JsonValue::Num(r.response.mean().as_secs_f64()),
            ),
            (
                "logging_io_s",
                JsonValue::Num(r.logging_io_time.as_secs_f64()),
            ),
            ("tpmc", JsonValue::Num(r.tpmc)),
            ("group_commits", JsonValue::Num(r.group_commits as f64)),
        ])
    };
    ScenarioOutput {
        report,
        json: JsonValue::obj(vec![
            ("bench", JsonValue::str("table2")),
            ("transactions", JsonValue::Num(txns as f64)),
            (
                "rows",
                JsonValue::Arr(vec![
                    config_json("ext2+trail", &trail),
                    config_json("ext2", &plain),
                    config_json("ext2+gc", &gc),
                ]),
            ),
        ]),
    }
}

// ------------------------------------------------------------- table 3

fn table3(cfg: &ScenarioConfig) -> ScenarioOutput {
    let txns = cfg.scale.unwrap_or(if cfg.quick { 400 } else { 10_000 });
    let buffers: &[(usize, u64)] = if cfg.quick {
        &[(4, 10_960), (400, 113)]
    } else {
        &[(4, 10_960), (100, 448), (400, 113), (800, 57), (1200, 39)]
    };
    let mut report = String::new();
    let _ = writeln!(
        report,
        "== Table 3 — group commits in a {txns}-transaction run, concurrency 4, w=1 =="
    );
    let _ = writeln!(report, "| log buffer (KB) | group commits | paper |");
    let _ = writeln!(report, "|---|---|---|");
    let mut rows = Vec::new();
    for &(kb, paper_count) in buffers {
        let rig = TpccRig {
            policy: FlushPolicy::GroupCommit {
                buffer_bytes: kb * 1024,
            },
            seed: cfg.mix(TpccRig::default().seed),
            ..TpccRig::default()
        };
        let mut setup = tpcc_setup(false, &rig);
        let result = run(
            &mut setup.sim,
            &setup.db,
            setup.workload,
            RunConfig {
                transactions: txns,
                concurrency: 4,
                chain_on: ChainOn::Control,
            },
        );
        let _ = writeln!(
            report,
            "| {kb} | {} | {paper_count} |",
            result.group_commits
        );
        rows.push(JsonValue::obj(vec![
            ("buffer_kb", JsonValue::Num(kb as f64)),
            ("group_commits", JsonValue::Num(result.group_commits as f64)),
            ("paper", JsonValue::Num(paper_count as f64)),
        ]));
    }
    ScenarioOutput {
        report,
        json: JsonValue::obj(vec![
            ("bench", JsonValue::str("table3")),
            ("transactions", JsonValue::Num(txns as f64)),
            ("rows", JsonValue::Arr(rows)),
        ]),
    }
}

// ------------------------------------------------------------- track_util

fn track_util(cfg: &ScenarioConfig) -> ScenarioOutput {
    let txns = cfg.scale.unwrap_or(if cfg.quick { 300 } else { 2000 });
    let confs: &[(usize, &str)] = if cfg.quick {
        &[(1, "—"), (4, "12%")]
    } else {
        &[(1, "—"), (4, "12%"), (8, "21%"), (12, ">30%")]
    };
    let mut report = String::new();
    let _ = writeln!(
        report,
        "== Log-disk per-track utilization vs. TPC-C concurrency ({txns} txns) =="
    );
    let _ = writeln!(report, "| concurrency | mean track utilization | paper |");
    let _ = writeln!(report, "|---|---|---|");
    let mut rows = Vec::new();
    for &(conc, paper_val) in confs {
        let rig = TpccRig {
            policy: FlushPolicy::EveryCommit,
            seed: cfg.mix(TpccRig::default().seed),
            ..TpccRig::default()
        };
        let mut setup = tpcc_setup(true, &rig);
        let trail = setup.trail.clone().expect("trail rig");
        run(
            &mut setup.sim,
            &setup.db,
            setup.workload,
            RunConfig {
                transactions: txns,
                concurrency: conc,
                chain_on: ChainOn::Durable,
            },
        );
        // The paper's §5.2 statistic assumes "Trail performs exactly one
        // batched write to each track": utilization = batch sectors (plus
        // the header) over the track's capacity. Use the outer zone's SPT
        // (90), where the log head spends these short runs.
        let spt = 90.0;
        let batch_util = trail.with_stats(|s| {
            if s.batch_sizes.is_empty() {
                0.0
            } else {
                s.batch_sizes
                    .iter()
                    .map(|&b| f64::from(b + 1) / spt)
                    .sum::<f64>()
                    / s.batch_sizes.len() as f64
            }
        });
        let track_fill = trail.with_stats(|s| {
            if s.track_utilization.is_empty() {
                0.0
            } else {
                s.track_utilization.iter().sum::<f64>() / s.track_utilization.len() as f64
            }
        });
        let _ = writeln!(
            report,
            "| {conc} | {:.1}% (actual track fill: {:.1}%) | {paper_val} |",
            batch_util * 100.0,
            track_fill * 100.0
        );
        rows.push(JsonValue::obj(vec![
            ("concurrency", JsonValue::Num(conc as f64)),
            ("batch_util", JsonValue::Num(batch_util)),
            ("track_fill", JsonValue::Num(track_fill)),
        ]));
    }
    ScenarioOutput {
        report,
        json: JsonValue::obj(vec![
            ("bench", JsonValue::str("track_util")),
            ("transactions", JsonValue::Num(txns as f64)),
            ("rows", JsonValue::Arr(rows)),
        ]),
    }
}

// ------------------------------------------------------- trace replay

/// Replays `trace` against one target and renders a report row plus the
/// JSON payload (the full `ReplayReport::to_json` document).
fn replay_target_row(
    trace: &Trace,
    target: TargetKind,
    speed: f64,
    recorder: Option<RecorderHandle>,
    report: &mut String,
) -> JsonValue {
    let rep = trace_replay(
        trace,
        &ReplayOptions {
            target,
            speed,
            fs_file_blocks: 256,
            recorder,
            ..ReplayOptions::default()
        },
    )
    .expect("replay target");
    let label = if speed == 1.0 {
        rep.target.clone()
    } else {
        format!("{}@{speed}x", rep.target)
    };
    let _ = writeln!(
        report,
        "| {label} | {:.3} | {:.3} | {:.3} | {:.3} | {} | {} |",
        rep.latency.percentile(50.0).as_millis_f64(),
        rep.latency.percentile(99.0).as_millis_f64(),
        rep.latency.percentile(99.9).as_millis_f64(),
        rep.latency.max().as_millis_f64(),
        rep.max_queue_depth,
        rep.errors,
    );
    rep.to_json()
}

fn replay_table_header(report: &mut String) {
    let _ = writeln!(
        report,
        "| target | p50 (ms) | p99 (ms) | p99.9 (ms) | max (ms) | max QD | errors |"
    );
    let _ = writeln!(report, "|---|---|---|---|---|---|---|");
}

fn replay_synthetic(cfg: &ScenarioConfig) -> ScenarioOutput {
    let requests = cfg.scale.unwrap_or(if cfg.quick { 240 } else { 3000 });
    let spec = SyntheticSpec {
        seed: cfg.mix(0x0054_5241_4345), // "TRACE"
        requests,
        devices: 3,
        streams: 4,
        capacity_sectors: 2 * 1024 * 1024,
        read_fraction: 0.3,
        request_sectors: 8,
        arrivals: ArrivalModel::Poisson {
            mean_iat: SimDuration::from_millis(20),
        },
        spatial: SpatialModel::Zipf { skew: 2.0 },
    };
    let trace = generate(&spec);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "== Trace replay — {requests} synthetic requests (4 Poisson streams, \
         Zipf skew 2, 30% reads) against every stack =="
    );
    replay_table_header(&mut report);
    let targets: &[(TargetKind, f64)] = &[
        (TargetKind::Standard, 1.0),
        (TargetKind::Trail, 1.0),
        (TargetKind::TrailMulti { logs: 2 }, 1.0),
        (TargetKind::Ext2 { trail: false }, 1.0),
        (TargetKind::Lfs { trail: false }, 1.0),
        // The time-scale knob: the same trace offered 4x faster shows
        // how Trail absorbs overload the standard stack queues on.
        (TargetKind::Trail, 4.0),
        (TargetKind::Standard, 4.0),
    ];
    let rows: Vec<JsonValue> = targets
        .iter()
        .map(|&(t, speed)| replay_target_row(&trace, t, speed, cfg.handle(), &mut report))
        .collect();
    ScenarioOutput {
        report,
        json: JsonValue::obj(vec![
            ("bench", JsonValue::str("replay_synthetic")),
            ("requests", JsonValue::Num(requests as f64)),
            (
                "trace_duration_ms",
                JsonValue::Num(trace.duration().as_millis_f64()),
            ),
            ("rows", JsonValue::Arr(rows)),
        ]),
    }
}

/// The `BENCH_replaystream.json` payload for one streaming replay —
/// shared with the standalone `replay_stream` binary so the artifact
/// schema cannot drift between the registry and the CI gate. Every
/// field is virtual-time-derived: `records_per_sec` is records over
/// the replay's *virtual* duration, and `peak_resident_records` is the
/// engine's bounded-memory proxy (arrival batch + requests in flight),
/// so a fixed trace produces identical bytes on every run.
#[must_use]
pub fn replay_stream_json(rep: &ReplayReport, chunk_records: u32, trace_bytes: u64) -> JsonValue {
    let chunk = if chunk_records == 0 {
        DEFAULT_CHUNK_RECORDS
    } else {
        chunk_records
    };
    let secs = rep.duration.as_secs_f64();
    let records_per_sec = if secs > 0.0 {
        rep.requests as f64 / secs
    } else {
        0.0
    };
    JsonValue::obj(vec![
        ("bench", JsonValue::str("replay_stream")),
        ("target", JsonValue::str(rep.target.clone())),
        ("requests", JsonValue::Num(rep.requests as f64)),
        ("chunk_records", JsonValue::Num(f64::from(chunk))),
        ("trace_bytes", JsonValue::Num(trace_bytes as f64)),
        ("duration_ms", JsonValue::Num(rep.duration.as_millis_f64())),
        ("records_per_sec", JsonValue::Num(records_per_sec)),
        (
            "peak_resident_records",
            JsonValue::Num(rep.peak_resident_records as f64),
        ),
        (
            "latency_fingerprint",
            JsonValue::str(format!("{:016x}", rep.latency_fingerprint)),
        ),
        ("latency", rep.latency.to_json()),
        (
            "max_queue_depth",
            JsonValue::Num(f64::from(rep.max_queue_depth)),
        ),
        ("errors", JsonValue::Num(rep.errors as f64)),
    ])
}

/// Renders the one-line summary `replay_stream` prints per replay.
fn replay_stream_row(report: &mut String, rep: &ReplayReport, trace_bytes: u64) {
    let secs = rep.duration.as_secs_f64();
    let _ = writeln!(
        report,
        "| {} | {:.0} | {} | {} | {:.3} | {:.3} | {} |",
        rep.target,
        if secs > 0.0 {
            rep.requests as f64 / secs
        } else {
            0.0
        },
        rep.peak_resident_records,
        rep.max_queue_depth,
        rep.latency.percentile(50.0).as_millis_f64(),
        rep.latency.percentile(99.0).as_millis_f64(),
        trace_bytes,
    );
}

/// Streams a chunked synthetic trace through the bounded-memory replay
/// engine — a million records in full mode — and reports virtual
/// throughput plus the peak-residency proxy. In quick mode the
/// streamed report is additionally checked byte-for-byte against the
/// in-memory oracle, the acceptance property of the streaming pipeline.
fn replay_stream_bench(cfg: &ScenarioConfig) -> ScenarioOutput {
    let requests = cfg
        .scale
        .unwrap_or(if cfg.quick { 2_000 } else { 1_000_000 });
    let spec = SyntheticSpec {
        seed: cfg.mix(0x0053_5452_4541), // "STREA"
        requests,
        devices: 2,
        streams: 4,
        capacity_sectors: 2 * 1024 * 1024,
        read_fraction: 0.3,
        request_sectors: 8,
        arrivals: ArrivalModel::Poisson {
            mean_iat: SimDuration::from_millis(20),
        },
        spatial: SpatialModel::Uniform,
    };
    // The trace is encoded straight into a chunk-framed buffer and
    // decoded back one chunk at a time — the full Vec<TraceRecord>
    // never exists on the streaming side.
    let bytes = generate_stream(&spec, 0, Vec::new()).expect("encode trace");
    let trace_bytes = bytes.len() as u64;
    // Re-encode with delta-compressed chunks: identical records, smaller
    // file. The replay below reads the *compressed* buffer, so the
    // oracle check also proves the codec transparent end to end.
    let delta = {
        let mut reader =
            TraceReader::new(std::io::Cursor::new(bytes.clone())).expect("trace header");
        let mut meta = reader.meta().clone();
        meta.encoding = ChunkEncoding::Delta;
        let mut w = TraceWriter::new(Vec::new(), &meta).expect("delta writer");
        loop {
            match reader.next_record() {
                None => break,
                Some(r) => w
                    .write_record(&r.expect("decode record"))
                    .expect("re-encode record"),
            }
        }
        w.finish().expect("finish delta trace")
    };
    let trace_bytes_delta = delta.len() as u64;
    let compression_ratio = trace_bytes_delta as f64 / trace_bytes as f64;
    assert!(
        compression_ratio < 0.6,
        "delta chunks should cut the Poisson trace below 60% of raw, got {compression_ratio:.3}"
    );
    let opts = ReplayOptions {
        target: TargetKind::Trail,
        fs_file_blocks: 256,
        recorder: cfg.handle(),
        ..ReplayOptions::default()
    };
    let reader = TraceReader::new(std::io::Cursor::new(delta.clone())).expect("trace header");
    let rep = trace_replay_stream(reader, &opts).expect("streaming replay");
    assert_eq!(
        rep.requests, requests as u64,
        "stream replayed every record"
    );

    let mut report = String::new();
    let _ = writeln!(
        report,
        "== Streaming replay — {requests} records decoded chunk-at-a-time \
         ({DEFAULT_CHUNK_RECORDS}/chunk) through the bounded-memory engine =="
    );
    let _ = writeln!(
        report,
        "| target | records/s (virtual) | peak resident | max QD | p50 (ms) | p99 (ms) | trace bytes |"
    );
    let _ = writeln!(report, "|---|---|---|---|---|---|---|");
    replay_stream_row(&mut report, &rep, trace_bytes);
    let oracle_checked = cfg.quick;
    if oracle_checked {
        // The acceptance property, exercised at smoke size: the
        // streaming engine's report is byte-identical to replaying the
        // fully materialized trace.
        let oracle = trace_replay(&generate(&spec), &opts).expect("in-memory oracle");
        assert_eq!(
            rep.latency_fingerprint, oracle.latency_fingerprint,
            "streamed replay diverged from the in-memory oracle"
        );
        assert_eq!(
            rep.to_json().to_json(),
            oracle.to_json().to_json(),
            "streamed report diverged from the in-memory oracle"
        );
        let _ = writeln!(
            report,
            "oracle: streamed report byte-identical to the in-memory replay"
        );
    }

    // Sharded replay over the same compressed buffer: four shards on
    // two worker threads. The merged report is a deterministic artifact
    // of the trace and the shard count — never the thread count.
    let shard_opts = ReplayOptions {
        target: TargetKind::Trail,
        fs_file_blocks: 256,
        ..ReplayOptions::default()
    };
    let open = || TraceReader::new(std::io::Cursor::new(delta.clone()));
    let sharded = replay_stream_sharded(
        open,
        ShardPlan {
            shards: 4,
            threads: 2,
        },
        &shard_opts,
    )
    .expect("sharded replay");
    assert_eq!(
        sharded.requests, requests as u64,
        "the shards together replayed every record"
    );
    if cfg.quick {
        // A single shard is the unsharded engine plus an identity
        // merge: the reports must match byte for byte.
        let plain =
            trace_replay_stream(open().expect("trace header"), &shard_opts).expect("plain replay");
        let one =
            replay_stream_sharded(open, ShardPlan::new(1), &shard_opts).expect("1-shard replay");
        assert_eq!(
            one.to_json().to_json(),
            plain.to_json().to_json(),
            "a 1-shard sharded replay diverged from the unsharded engine"
        );
    }
    let _ = writeln!(
        report,
        "delta chunks: {trace_bytes_delta} bytes ({:.1}% of {trace_bytes} raw); \
         sharded (4 shards) fingerprint {:016x}",
        compression_ratio * 100.0,
        sharded.latency_fingerprint,
    );

    let mut json = replay_stream_json(&rep, 0, trace_bytes);
    if let JsonValue::Obj(fields) = &mut json {
        fields.push((
            "oracle_checked".to_string(),
            JsonValue::Num(f64::from(u8::from(oracle_checked))),
        ));
        fields.push((
            "trace_bytes_delta".to_string(),
            JsonValue::Num(trace_bytes_delta as f64),
        ));
        fields.push((
            "compression_ratio".to_string(),
            JsonValue::Num(compression_ratio),
        ));
        fields.push(("shards".to_string(), JsonValue::Num(4.0)));
        fields.push((
            "sharded_fingerprint".to_string(),
            JsonValue::Str(format!("{:016x}", sharded.latency_fingerprint)),
        ));
    }
    ScenarioOutput { report, json }
}

/// Offers one synthetic trace to every base stack at several
/// time-compression factors. The replay `speed` knob rescales arrival
/// instants, so 8x presents the recorded load eight times faster than it
/// was generated — the open-loop overload regime where queueing, not
/// service time, dominates the tail.
fn overload_sweep(cfg: &ScenarioConfig) -> ScenarioOutput {
    let requests = cfg.scale.unwrap_or(if cfg.quick { 120 } else { 2000 });
    let speeds: &[f64] = if cfg.quick {
        &[0.5, 2.0, 8.0]
    } else {
        &[0.5, 1.0, 2.0, 4.0, 8.0]
    };
    let spec = SyntheticSpec {
        seed: cfg.mix(0x004F_5645_524C), // "OVERL"
        requests,
        devices: 2,
        streams: 4,
        capacity_sectors: 2 * 1024 * 1024,
        read_fraction: 0.3,
        request_sectors: 8,
        arrivals: ArrivalModel::Poisson {
            mean_iat: SimDuration::from_millis(10),
        },
        spatial: SpatialModel::Uniform,
    };
    let trace = generate(&spec);
    let targets: &[TargetKind] = &[
        TargetKind::Standard,
        TargetKind::Trail,
        TargetKind::TrailMulti { logs: 2 },
        TargetKind::Ext2 { trail: false },
        TargetKind::Lfs { trail: false },
    ];
    let mut report = String::new();
    let _ = writeln!(
        report,
        "== Overload sweep — {requests} synthetic requests (4 Poisson streams) \
         replayed at {speeds:?}x against every stack =="
    );
    let _ = writeln!(
        report,
        "| target | speed | p50 (ms) | p95 (ms) | p99 (ms) | p99.9 (ms) | mean (ms) | max QD | errors |"
    );
    let _ = writeln!(report, "|---|---|---|---|---|---|---|---|---|");
    let mut series = Vec::new();
    for &target in targets {
        let mut points = Vec::new();
        for &speed in speeds {
            let rep = trace_replay(
                &trace,
                &ReplayOptions {
                    target,
                    speed,
                    fs_file_blocks: 256,
                    recorder: cfg.handle(),
                    ..ReplayOptions::default()
                },
            )
            .expect("overload replay");
            let _ = writeln!(
                report,
                "| {} | {speed}x | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} | {} | {} |",
                rep.target,
                rep.latency.percentile(50.0).as_millis_f64(),
                rep.latency.percentile(95.0).as_millis_f64(),
                rep.latency.percentile(99.0).as_millis_f64(),
                rep.latency.percentile(99.9).as_millis_f64(),
                rep.latency.mean().as_millis_f64(),
                rep.max_queue_depth,
                rep.errors,
            );
            points.push(JsonValue::obj(vec![
                ("speed", JsonValue::Num(speed)),
                (
                    "p50_ms",
                    JsonValue::Num(rep.latency.percentile(50.0).as_millis_f64()),
                ),
                (
                    "p95_ms",
                    JsonValue::Num(rep.latency.percentile(95.0).as_millis_f64()),
                ),
                (
                    "p99_ms",
                    JsonValue::Num(rep.latency.percentile(99.0).as_millis_f64()),
                ),
                (
                    "p999_ms",
                    JsonValue::Num(rep.latency.percentile(99.9).as_millis_f64()),
                ),
                (
                    "mean_ms",
                    JsonValue::Num(rep.latency.mean().as_millis_f64()),
                ),
                (
                    "max_queue_depth",
                    JsonValue::Num(f64::from(rep.max_queue_depth)),
                ),
                ("errors", JsonValue::Num(rep.errors as f64)),
            ]));
        }
        series.push(JsonValue::obj(vec![
            ("target", JsonValue::str(target.label())),
            ("points", JsonValue::Arr(points)),
        ]));
    }
    ScenarioOutput {
        report,
        json: JsonValue::obj(vec![
            ("bench", JsonValue::str("overload_sweep")),
            ("requests", JsonValue::Num(requests as f64)),
            (
                "trace_duration_ms",
                JsonValue::Num(trace.duration().as_millis_f64()),
            ),
            ("targets", JsonValue::Arr(series)),
        ]),
    }
}

// ------------------------------------------------------------ raid sweep

/// Reads one numeric field out of a JSON object (0.0 when absent) —
/// used to lift headline counters back out of volume statistics.
fn json_field_num(v: &JsonValue, key: &str) -> f64 {
    if let JsonValue::Obj(fields) = v {
        for (k, val) in fields {
            if k == key {
                if let JsonValue::Num(n) = val {
                    return *n;
                }
            }
        }
    }
    0.0
}

/// One sweep row: replay the shared small-write trace against `target`
/// at `speed` under the given fault plan (empty for a healthy run; the
/// degraded rows fail volume 0's member 1 mid-trace).
fn raid_sweep_row(
    trace: &Trace,
    target: TargetKind,
    speed: f64,
    faults: FaultPlan,
    cfg: &ScenarioConfig,
    report: &mut String,
) -> (JsonValue, ReplayReport) {
    let degraded = !faults.is_empty();
    let rep = trace_replay(
        trace,
        &ReplayOptions {
            target,
            speed,
            faults,
            recorder: cfg.handle(),
            ..ReplayOptions::default()
        },
    )
    .expect("raid replay");
    let degraded_reads: f64 = rep
        .volume_stats
        .iter()
        .map(|v| json_field_num(v, "degraded_reads"))
        .sum();
    let reconstruct_writes: f64 = rep
        .volume_stats
        .iter()
        .map(|v| json_field_num(v, "reconstruct_writes") + json_field_num(v, "parityless_writes"))
        .sum();
    let _ = writeln!(
        report,
        "| {} | {speed}x | {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.0} | {:.0} | {} | {} |",
        rep.target,
        if degraded { "degraded" } else { "healthy" },
        rep.write_latency.mean().as_millis_f64(),
        rep.write_latency.percentile(50.0).as_millis_f64(),
        rep.write_latency.percentile(99.0).as_millis_f64(),
        rep.read_latency.mean().as_millis_f64(),
        degraded_reads,
        reconstruct_writes,
        rep.max_queue_depth,
        rep.errors,
    );
    let row = JsonValue::obj(vec![
        ("target", JsonValue::str(rep.target.clone())),
        ("speed", JsonValue::Num(speed)),
        ("degraded", JsonValue::Num(f64::from(u8::from(degraded)))),
        ("requests", JsonValue::Num(rep.requests as f64)),
        ("writes", JsonValue::Num(rep.writes as f64)),
        ("errors", JsonValue::Num(rep.errors as f64)),
        (
            "write_mean_ms",
            JsonValue::Num(rep.write_latency.mean().as_millis_f64()),
        ),
        (
            "write_p50_ms",
            JsonValue::Num(rep.write_latency.percentile(50.0).as_millis_f64()),
        ),
        (
            "write_p99_ms",
            JsonValue::Num(rep.write_latency.percentile(99.0).as_millis_f64()),
        ),
        (
            "read_mean_ms",
            JsonValue::Num(rep.read_latency.mean().as_millis_f64()),
        ),
        ("degraded_reads", JsonValue::Num(degraded_reads)),
        (
            "max_queue_depth",
            JsonValue::Num(f64::from(rep.max_queue_depth)),
        ),
        ("volumes", JsonValue::Arr(rep.volume_stats.clone())),
    ]);
    (row, rep)
}

/// The volume-layer sweep: one small-write-heavy trace offered to RAID
/// geometries behind the standard stack and behind Trail, at and above
/// recorded load, plus degraded-mode (member-failure) and per-stream
/// (one volume set per Trail instance) rows. The headline is RAID-5's
/// small-write penalty: the standard stack pays the read-modify-write
/// cycle on every small write, while Trail acknowledges at log speed
/// and pays parity maintenance in background write-backs.
fn raid_sweep(cfg: &ScenarioConfig) -> ScenarioOutput {
    use trail::volume::{ReadPolicy, VolumeLayout};
    let requests = cfg.scale.unwrap_or(if cfg.quick { 150 } else { 1200 });
    let chunk = 8u32;
    let layout5 = VolumeLayout::Raid5 {
        chunk_sectors: chunk,
    };
    // Small writes (1 KB, a quarter of a chunk) against a mostly-write
    // mix: the workload Trail §5.1 targets, and RAID-5's worst case.
    let mean_iat = SimDuration::from_millis(20);
    let spec = SyntheticSpec {
        seed: cfg.mix(0x0052_4149_4453), // "RAIDS"
        requests,
        devices: 1,
        streams: 4,
        capacity_sectors: 2 * 1024 * 1024,
        read_fraction: 0.25,
        request_sectors: 2,
        arrivals: ArrivalModel::Poisson { mean_iat },
        spatial: SpatialModel::Uniform,
    };
    let trace = generate(&spec);
    // Fail data member 1 a third of the way into the trace, so the
    // remainder exercises degraded reads and reconstruct-mode writes.
    let fail = FaultPlan::member_fail(
        0,
        1,
        SimDuration::from_nanos(trace.duration().as_nanos() / 3),
    );

    let mut report = String::new();
    let _ = writeln!(
        report,
        "== RAID sweep — {requests} small writes (1 KB, 25% reads) vs. \
         geometry x Trail-fronting x load =="
    );
    let _ = writeln!(
        report,
        "| target | speed | mode | write mean (ms) | write p50 | write p99 | read mean | \
         degraded reads | reconstructed writes | max QD | errors |"
    );
    let _ = writeln!(report, "|---|---|---|---|---|---|---|---|---|---|---|");

    let mut rows = Vec::new();
    let mut std5_mean = 0.0f64;
    let mut trail5_mean = 0.0f64;

    // Geometry sweep at recorded load, standard vs. Trail-fronted.
    let geoms: &[(VolumeLayout, usize)] = &[
        (
            VolumeLayout::Raid0 {
                chunk_sectors: chunk,
            },
            3,
        ),
        (
            VolumeLayout::Raid1 {
                read_policy: ReadPolicy::NearestHead,
            },
            2,
        ),
        (layout5, 3),
    ];
    for &(layout, members) in geoms {
        for trail_front in [false, true] {
            let target = TargetKind::Raid {
                layout,
                members,
                trail: trail_front,
            };
            let (row, rep) =
                raid_sweep_row(&trace, target, 1.0, FaultPlan::new(), cfg, &mut report);
            if layout == layout5 {
                let mean = rep.write_latency.mean().as_millis_f64();
                if trail_front {
                    trail5_mean = mean;
                } else {
                    std5_mean = mean;
                }
            }
            rows.push(row);
        }
    }

    // Overload: the RAID-5 pair above recorded speed.
    let overload: &[f64] = if cfg.quick { &[2.0] } else { &[2.0, 4.0] };
    for &speed in overload {
        for trail_front in [false, true] {
            let target = TargetKind::Raid {
                layout: layout5,
                members: 3,
                trail: trail_front,
            };
            let (row, _) =
                raid_sweep_row(&trace, target, speed, FaultPlan::new(), cfg, &mut report);
            rows.push(row);
        }
    }

    // Per-stream placement: each Trail instance owns its own RAID-5
    // set, so every routed stream's data lands on its own members.
    let (row, _) = raid_sweep_row(
        &trace,
        TargetKind::RaidPerStream {
            layout: layout5,
            members: 3,
            logs: 2,
        },
        1.0,
        FaultPlan::new(),
        cfg,
        &mut report,
    );
    rows.push(row);

    // Degraded mode: the RAID-5 pair with a member failing mid-trace.
    for trail_front in [false, true] {
        let target = TargetKind::Raid {
            layout: layout5,
            members: 3,
            trail: trail_front,
        };
        let (row, rep) = raid_sweep_row(&trace, target, 1.0, fail.clone(), cfg, &mut report);
        let survived: f64 = rep
            .volume_stats
            .iter()
            .map(|v| {
                json_field_num(v, "degraded_reads")
                    + json_field_num(v, "reconstruct_writes")
                    + json_field_num(v, "parityless_writes")
            })
            .sum();
        assert!(
            survived > 0.0,
            "degraded {} run never exercised a degraded path",
            rep.target
        );
        rows.push(row);
    }

    let speedup = if trail5_mean > 0.0 {
        std5_mean / trail5_mean
    } else {
        0.0
    };
    let _ = writeln!(
        report,
        "headline: RAID-5 small-write mean {std5_mean:.3} ms standard vs. \
         {trail5_mean:.3} ms Trail-fronted ({speedup:.1}x)"
    );

    ScenarioOutput {
        report,
        json: JsonValue::obj(vec![
            ("bench", JsonValue::str("raid_sweep")),
            ("requests", JsonValue::Num(requests as f64)),
            ("request_sectors", JsonValue::Num(2.0)),
            ("chunk_sectors", JsonValue::Num(f64::from(chunk))),
            (
                "trace_duration_ms",
                JsonValue::Num(trace.duration().as_millis_f64()),
            ),
            ("rows", JsonValue::Arr(rows)),
            (
                "headline",
                JsonValue::obj(vec![
                    ("standard_raid5_write_mean_ms", JsonValue::Num(std5_mean)),
                    ("trail_raid5_write_mean_ms", JsonValue::Num(trail5_mean)),
                    ("small_write_speedup", JsonValue::Num(speedup)),
                ]),
            ),
        ]),
    }
}

fn replay_tpcc(cfg: &ScenarioConfig) -> ScenarioOutput {
    let txns = cfg.scale.unwrap_or(if cfg.quick { 100 } else { 800 });
    let rig = TpccRig {
        seed: cfg.mix(TpccRig::default().seed),
        ..TpccRig::default()
    };
    // Capture the offered block-level workload of a TPC-C run over
    // Trail: the tap sees the logical request stream (WAL forces, page
    // evictions, reads), not the log-disk records, so the capture
    // replays against any stack.
    let mut setup = tpcc_setup_recorded(true, &rig, None);
    let capture = TraceCapture::new();
    setup.stack.set_tap(capture.handle());
    let tpcc = run(
        &mut setup.sim,
        &setup.db,
        setup.workload,
        RunConfig {
            transactions: txns,
            concurrency: 4,
            chain_on: ChainOn::Durable,
        },
    );
    let mut trace = capture.take(TraceMeta {
        source: "capture:tpcc".to_string(),
        seed: rig.seed,
        devices: 0,
        note: format!("{txns} transactions, concurrency 4, over Trail"),
        chunk_records: 0,
        encoding: ChunkEncoding::Raw,
    });
    trace.rebase_to_first();

    let mut report = String::new();
    let _ = writeln!(
        report,
        "== Trace replay — TPC-C capture ({txns} txns, {} requests, {:.1} s) \
         against every stack ==",
        trace.len(),
        trace.duration().as_secs_f64(),
    );
    let _ = writeln!(
        report,
        "capture source: {} ({:.0} tpmC while recording)",
        trace.meta.source, tpcc.tpmc
    );
    replay_table_header(&mut report);
    let targets: &[(TargetKind, f64)] = &[
        (TargetKind::Standard, 1.0),
        (TargetKind::Trail, 1.0),
        (TargetKind::TrailMulti { logs: 2 }, 1.0),
    ];
    let rows: Vec<JsonValue> = targets
        .iter()
        .map(|&(t, speed)| replay_target_row(&trace, t, speed, cfg.handle(), &mut report))
        .collect();
    ScenarioOutput {
        report,
        json: JsonValue::obj(vec![
            ("bench", JsonValue::str("replay_tpcc")),
            ("transactions", JsonValue::Num(txns as f64)),
            ("captured_requests", JsonValue::Num(trace.len() as f64)),
            (
                "capture_duration_ms",
                JsonValue::Num(trace.duration().as_millis_f64()),
            ),
            ("tpmc_while_recording", JsonValue::Num(tpcc.tpmc)),
            ("rows", JsonValue::Arr(rows)),
        ]),
    }
}

// ------------------------------------------------------- serving layer

/// Builds a serving testbed: a [`Server`] over a [`StorageService`] over
/// a Trail stack — single-log for `logs <= 1`, otherwise a Trail array
/// with the given stream routing.
fn serve_testbed(
    logs: usize,
    routing: LogRouting,
    admission: AdmissionPolicy,
    worker_slots: usize,
) -> (Simulator, Server) {
    let builder = trail::StackBuilder::new().data_disks(2);
    let builder = if logs <= 1 {
        builder.trail_default()
    } else {
        builder.trail_multi(logs, TrailConfig::default())
    };
    let built = builder.build().expect("serve stack boots");
    if let Some(multi) = &built.multi {
        multi.set_routing(routing);
    }
    let capacity = built
        .data_disks
        .iter()
        .map(|d| d.geometry().total_sectors())
        .collect();
    let service = StorageService::new(Rc::clone(&built.stack), capacity);
    (
        built.sim,
        Server::new(
            service,
            ServerConfig {
                worker_slots,
                admission,
            },
        ),
    )
}

/// Per-session mean inter-arrival time that keeps the *fleet-wide*
/// offered rate constant as the session count scales: every session
/// thinks `sessions x 2 ms`, so the fleet offers ~500 requests/s at
/// `overload = 1.0` — right at the measured capacity of the testbed
/// (the log disk and two data disks bound throughput, not the worker
/// pool) — regardless of how many sessions share the load.
fn serve_mean_iat(sessions: u32) -> SimDuration {
    SimDuration::from_nanos(u64::from(sessions) * 2_000_000)
}

const SERVE_ADMISSIONS: [AdmissionPolicy; 3] = [
    AdmissionPolicy::Unbounded,
    AdmissionPolicy::BoundedQueue { max_queue: 64 },
    AdmissionPolicy::DeadlineShed {
        max_wait: SimDuration::from_millis(25),
    },
];

fn serve_row(
    report: &mut String,
    label: &str,
    admission: &AdmissionPolicy,
    overload: f64,
    rep: &FleetReport,
) {
    let _ = writeln!(
        report,
        "| {label} | {} | {overload}x | {} | {} | {} | {} | {} | {:.3} | {:.3} | {:.3} | {} |",
        admission.label(),
        rep.issued,
        rep.served,
        rep.rejected,
        rep.shed,
        rep.cancelled,
        rep.latency.percentile(50.0).as_millis_f64(),
        rep.latency.percentile(99.0).as_millis_f64(),
        rep.latency.percentile(99.9).as_millis_f64(),
        rep.server.max_queue_depth,
    );
}

fn serve_cell_json(
    mode_label: &str,
    admission: &AdmissionPolicy,
    overload: f64,
    rep: &FleetReport,
) -> JsonValue {
    let fields = vec![
        ("mode", JsonValue::str(mode_label)),
        ("admission", JsonValue::str(admission.label())),
        ("overload", JsonValue::Num(overload)),
    ];
    let JsonValue::Obj(body) = rep.to_json_with_clients(4) else {
        unreachable!("fleet reports are objects");
    };
    let mut out = JsonValue::obj(fields);
    if let JsonValue::Obj(dst) = &mut out {
        dst.extend(body);
    }
    out
}

fn serve_table_header(report: &mut String) {
    let _ = writeln!(
        report,
        "| mode | admission | load | issued | served | rejected | shed | cancelled \
         | p50 (ms) | p99 (ms) | p99.9 (ms) | max QD |"
    );
    let _ = writeln!(report, "|---|---|---|---|---|---|---|---|---|---|---|---|");
}

/// The serving-layer fleet benchmark (`BENCH_serve.json`): open- and
/// closed-loop client fleets against every admission policy across a
/// 0.5-8x overload sweep, on a single-log Trail stack. Open-loop cells
/// churn connections mid-run, so the cancel-cascade shows up in the
/// `cancelled` columns. Latency percentiles cover *admitted* (served)
/// requests only — the point of the comparison is that bounded-queue
/// and deadline-shed admission keep the served tail flat at 8x offered
/// load while the unbounded queue diverges.
fn serve_fleet(cfg: &ScenarioConfig) -> ScenarioOutput {
    let per_cell = cfg.scale.unwrap_or(if cfg.quick { 400 } else { 8000 });
    let sessions: u32 = if cfg.quick { 64 } else { 2000 };
    let overloads: &[f64] = if cfg.quick {
        &[0.5, 8.0]
    } else {
        &[0.5, 1.0, 2.0, 4.0, 8.0]
    };
    let modes = [FleetMode::OpenLoop, FleetMode::ClosedLoop];
    let mut report = String::new();
    let _ = writeln!(
        report,
        "== Serving layer — {sessions} sessions, {per_cell} requests per cell, \
         worker pool of 8 over a Trail log, overload {overloads:?} =="
    );
    serve_table_header(&mut report);
    let mut cells = Vec::new();
    for (mode_idx, &mode) in modes.iter().enumerate() {
        for &overload in overloads {
            for admission in &SERVE_ADMISSIONS {
                let (mut sim, server) = serve_testbed(1, LogRouting::BlockHash, *admission, 8);
                let rep = run_fleet(
                    &mut sim,
                    &server,
                    &FleetSpec {
                        // One workload per (mode, overload): the three
                        // admission policies see identical arrivals.
                        seed: cfg.mix(0x5345_5256_4500 + mode_idx as u64),
                        sessions,
                        requests: per_cell,
                        mode,
                        overload,
                        mean_iat: serve_mean_iat(sessions),
                        read_fraction: 0.3,
                        payload_sectors: 2,
                        commit_every: 16,
                        churn: mode == FleetMode::OpenLoop,
                        spatial: SpatialModel::Zipf { skew: 2.0 },
                    },
                );
                serve_row(&mut report, mode.label(), admission, overload, &rep);
                cells.push(serve_cell_json(mode.label(), admission, overload, &rep));
            }
        }
    }
    ScenarioOutput {
        report,
        json: JsonValue::obj(vec![
            ("bench", JsonValue::str("serve")),
            ("sessions", JsonValue::Num(f64::from(sessions))),
            ("requests_per_cell", JsonValue::Num(per_cell as f64)),
            ("worker_slots", JsonValue::Num(8.0)),
            ("cells", JsonValue::Arr(cells)),
        ]),
    }
}

/// The serving-layer routing sweep (`BENCH_serve_sweep.json`): an
/// open-loop fleet against a two-log Trail array, sweeping log routing
/// (block-hash vs. stream-affinity) x admission policy x overload.
/// Terminal-as-stream is what makes stream-affinity routing meaningful:
/// every session's log writes land on "its" log disk.
fn serve_sweep(cfg: &ScenarioConfig) -> ScenarioOutput {
    let per_cell = cfg.scale.unwrap_or(if cfg.quick { 300 } else { 6000 });
    let sessions: u32 = if cfg.quick { 48 } else { 1000 };
    let overloads: &[f64] = if cfg.quick {
        &[0.5, 8.0]
    } else {
        &[0.5, 1.0, 2.0, 4.0, 8.0]
    };
    let routings = [
        ("block_hash", LogRouting::BlockHash),
        ("stream_affinity", LogRouting::StreamAffinity),
    ];
    let mut report = String::new();
    let _ = writeln!(
        report,
        "== Serving-layer routing sweep — {sessions} open-loop sessions on a \
         2-log Trail array, {per_cell} requests per cell =="
    );
    serve_table_header(&mut report);
    let mut series = Vec::new();
    for (routing_label, routing) in routings {
        let mut cells = Vec::new();
        for &overload in overloads {
            for admission in &SERVE_ADMISSIONS {
                let (mut sim, server) = serve_testbed(2, routing, *admission, 8);
                let rep = run_fleet(
                    &mut sim,
                    &server,
                    &FleetSpec {
                        seed: cfg.mix(0x5345_5256_4557), // same workload per cell
                        sessions,
                        requests: per_cell,
                        mode: FleetMode::OpenLoop,
                        overload,
                        mean_iat: serve_mean_iat(sessions),
                        read_fraction: 0.3,
                        payload_sectors: 2,
                        commit_every: 0,
                        churn: false,
                        spatial: SpatialModel::Zipf { skew: 2.0 },
                    },
                );
                serve_row(&mut report, routing_label, admission, overload, &rep);
                cells.push(serve_cell_json(routing_label, admission, overload, &rep));
            }
        }
        series.push(JsonValue::obj(vec![
            ("routing", JsonValue::str(routing_label)),
            ("cells", JsonValue::Arr(cells)),
        ]));
    }
    ScenarioOutput {
        report,
        json: JsonValue::obj(vec![
            ("bench", JsonValue::str("serve_sweep")),
            ("sessions", JsonValue::Num(f64::from(sessions))),
            ("requests_per_cell", JsonValue::Num(per_cell as f64)),
            ("routings", JsonValue::Arr(series)),
        ]),
    }
}

// ------------------------------------------------------ crash campaign

/// One curve point of the crash campaign as a JSON row.
fn campaign_point_json(flavor: CampaignFlavor, agg: &CampaignAggregate) -> JsonValue {
    JsonValue::obj(vec![
        ("flavor", JsonValue::str(flavor.label())),
        ("q", JsonValue::Num(agg.writes as f64)),
        ("crash_points", JsonValue::Num(agg.points as f64)),
        ("violations", JsonValue::Num(agg.violations as f64)),
        ("mean_acked", JsonValue::Num(agg.mean_acked)),
        ("mean_pending", JsonValue::Num(agg.mean_pending)),
        (
            "mean_active_log_sectors",
            JsonValue::Num(agg.mean_active_log_sectors),
        ),
        ("mean_log_head_span", JsonValue::Num(agg.mean_log_head_span)),
        ("mean_records", JsonValue::Num(agg.mean_records)),
        (
            "mean_sectors_replayed",
            JsonValue::Num(agg.mean_sectors_replayed),
        ),
        ("mean_locate_ms", JsonValue::Num(agg.mean_locate_ms)),
        ("mean_rebuild_ms", JsonValue::Num(agg.mean_rebuild_ms)),
        ("mean_writeback_ms", JsonValue::Num(agg.mean_writeback_ms)),
        ("mean_total_ms", JsonValue::Num(agg.mean_total_ms)),
        ("max_total_ms", JsonValue::Num(agg.max_total_ms)),
    ])
}

/// Appends one campaign table row to the report.
fn campaign_row(report: &mut String, flavor: CampaignFlavor, agg: &CampaignAggregate) {
    let _ = writeln!(
        report,
        "| {} | {} | {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {} |",
        flavor.label(),
        agg.writes,
        agg.points,
        agg.mean_acked,
        agg.mean_pending,
        agg.mean_active_log_sectors,
        agg.mean_locate_ms,
        agg.mean_rebuild_ms,
        agg.mean_writeback_ms,
        agg.mean_total_ms,
        agg.max_total_ms,
        agg.violations,
    );
}

fn crash_campaign(cfg: &ScenarioConfig) -> ScenarioOutput {
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // The raw-disk flavor carries the recovery-time-vs-log-size curve;
    // the RAID-5 flavor adds the parity-invariant fan at a coarser grid.
    let raw_qs: &[usize] = if cfg.quick {
        &[16, 32]
    } else {
        &[32, 64, 128, 256]
    };
    let raw_points = cfg.scale.unwrap_or(if cfg.quick { 24 } else { 64 });
    let raid_qs: &[usize] = if cfg.quick { &[16] } else { &[32, 64] };
    let raid_points = (raw_points / 3 * 2).max(4);

    let mut report = String::new();
    let _ = writeln!(
        report,
        "== Crash campaign — recovery time vs. log size over the fault plane =="
    );
    let _ = writeln!(
        report,
        "| flavor | Q | crash points | mean acked | mean pending | mean active log sectors | \
         locate (ms) | rebuild (ms) | write-back (ms) | total mean (ms) | total max (ms) | \
         violations |"
    );
    let _ = writeln!(report, "|---|---|---|---|---|---|---|---|---|---|---|---|");

    let run_flavor = |flavor: CampaignFlavor, qs: &[usize], points: usize| {
        qs.iter()
            .map(|&q| {
                let spec = CampaignSpec {
                    flavor,
                    writes: q,
                    crash_points: points,
                    seed: cfg.mix(0x0043_5241_5348 + q as u64),
                };
                aggregate(q, &run_campaign(&spec, threads))
            })
            .collect::<Vec<_>>()
    };
    let curve = run_flavor(CampaignFlavor::RawDisks, raw_qs, raw_points);
    let raid = run_flavor(CampaignFlavor::Raid5, raid_qs, raid_points);
    for agg in &curve {
        campaign_row(&mut report, CampaignFlavor::RawDisks, agg);
    }
    for agg in &raid {
        campaign_row(&mut report, CampaignFlavor::Raid5, agg);
    }

    let total_points: usize = curve.iter().chain(&raid).map(|a| a.points).sum();
    let violations: usize = curve.iter().chain(&raid).map(|a| a.violations).sum();
    assert_eq!(
        violations, 0,
        "crash campaign found durability-contract violations"
    );
    // The headline claim: recovery cost scales with the active log, so
    // the curve over Q must be monotone in both the log-size witness and
    // the recovery time.
    for pair in curve.windows(2) {
        assert!(
            pair[1].mean_sectors_replayed >= pair[0].mean_sectors_replayed,
            "write-back volume must grow with Q"
        );
        assert!(
            pair[1].mean_total_ms >= pair[0].mean_total_ms,
            "recovery time must grow with Q (Q={} {:.3} ms -> Q={} {:.3} ms)",
            pair[0].writes,
            pair[0].mean_total_ms,
            pair[1].writes,
            pair[1].mean_total_ms,
        );
    }
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "{total_points} crash points sampled, {violations} violations; every acknowledged \
         write read back exactly after recovery,"
    );
    let _ = writeln!(
        report,
        "and every RAID-5 stripe the workload touched XORs to zero across the members."
    );
    ScenarioOutput {
        report,
        json: JsonValue::obj(vec![
            ("bench", JsonValue::str("crash_campaign")),
            ("crash_points_total", JsonValue::Num(total_points as f64)),
            ("violations", JsonValue::Num(violations as f64)),
            (
                "curve",
                JsonValue::Arr(
                    curve
                        .iter()
                        .map(|a| campaign_point_json(CampaignFlavor::RawDisks, a))
                        .collect(),
                ),
            ),
            (
                "raid5",
                JsonValue::Arr(
                    raid.iter()
                        .map(|a| campaign_point_json(CampaignFlavor::Raid5, a))
                        .collect(),
                ),
            ),
        ]),
    }
}
