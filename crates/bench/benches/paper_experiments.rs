//! Criterion benchmarks: wall-clock performance of the library's hot
//! paths, plus scaled-down versions of each paper experiment so `cargo
//! bench` exercises every harness end to end.
//!
//! The *virtual-time* results that reproduce the paper's tables are
//! produced by the `src/bin/*` harnesses; these benches measure how fast
//! the reproduction itself runs (events per second matters when the TPC-C
//! harness simulates tens of millions of events).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use trail_bench::{sync_writes_standard, sync_writes_trail, tpcc_setup, ArrivalMode, TpccRig};
use trail_core::format::{build_record, PayloadSector, RecordHeader};
use trail_core::{HeadPredictor, TrailConfig};
use trail_db::FlushPolicy;
use trail_disk::{profiles, SectorBuf, SECTOR_SIZE};
use trail_sim::{SimDuration, SimTime};
use trail_tpcc::{run, ChainOn, RunConfig};

fn bench_prediction(c: &mut Criterion) {
    let p = profiles::seagate_st41601n();
    let mut predictor = HeadPredictor::new(p.geometry, p.mech.rotation_period, 12);
    predictor.set_reference(SimTime::ZERO, 1234);
    c.bench_function("predict_same_track", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t = t.wrapping_add(37_000);
            black_box(predictor.predict_same_track(SimTime::from_nanos(t)))
        })
    });
    c.bench_function("predict_on_track", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t = t.wrapping_add(37_000);
            black_box(predictor.predict_on_track(500, SimTime::from_nanos(t), 0))
        })
    });
}

fn bench_record_codec(c: &mut Criterion) {
    let payload: Vec<PayloadSector> = (0..32)
        .map(|i| PayloadSector {
            data_major: 1,
            data_minor: 0,
            data_lba: 1000 + i,
            data: [i as u8; SECTOR_SIZE],
        })
        .collect();
    c.bench_function("build_record_32_sectors", |b| {
        b.iter(|| black_box(build_record(3, 42, Some(77), 50, 40, 2000, &payload).unwrap()))
    });
    let (_, bytes) = build_record(3, 42, Some(77), 50, 40, 2000, &payload).unwrap();
    let header: SectorBuf = bytes[..SECTOR_SIZE].try_into().unwrap();
    c.bench_function("decode_record_header", |b| {
        b.iter(|| black_box(RecordHeader::decode(&header).unwrap()))
    });
}

fn bench_fig3_slice(c: &mut Criterion) {
    c.bench_function("fig3_trail_sparse_1k_x50", |b| {
        b.iter(|| {
            black_box(sync_writes_trail(
                TrailConfig::default(),
                1,
                50,
                1024,
                ArrivalMode::Sparse {
                    gap: SimDuration::from_millis(5),
                },
                7,
            ))
        })
    });
    c.bench_function("fig3_standard_clustered_1k_x50", |b| {
        b.iter(|| black_box(sync_writes_standard(1, 50, 1024, ArrivalMode::Clustered, 9)))
    });
}

fn bench_tpcc_slice(c: &mut Criterion) {
    // A small TPC-C slice end to end (population dominates, so batch it).
    c.bench_function("table2_trail_slice_100txn", |b| {
        b.iter_batched(
            || {
                tpcc_setup(
                    true,
                    &TpccRig {
                        scale: trail_tpcc::Scale::tiny(),
                        cache_pages: 64,
                        policy: FlushPolicy::EveryCommit,
                        ..TpccRig::default()
                    },
                )
            },
            |mut setup| {
                black_box(run(
                    &mut setup.sim,
                    &setup.db,
                    setup.workload,
                    RunConfig {
                        transactions: 100,
                        concurrency: 1,
                        chain_on: ChainOn::Durable,
                    },
                ))
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_prediction,
    bench_record_codec,
    bench_fig3_slice,
    bench_tpcc_slice
);
criterion_main!(benches);
