//! Acceptance for the `run_all` runner: a fixed seed must produce
//! byte-identical `BENCH_<name>.json` artifacts no matter how many worker
//! threads execute the scenarios, and a different seed must actually
//! change the workloads.

use std::path::{Path, PathBuf};

use trail_bench::{run_all_scenarios, RunAllOptions};

fn run_into(dir: &Path, threads: usize, seed: u64) -> (Vec<PathBuf>, Vec<(&'static str, u64)>) {
    let summary = run_all_scenarios(&RunAllOptions {
        quick: true,
        seed,
        threads,
        out_dir: dir.to_path_buf(),
        filter: None,
    })
    .expect("runner writes artifacts");
    assert_eq!(
        summary.results.len(),
        trail_bench::all_scenarios().len(),
        "every registered scenario must run"
    );
    assert_eq!(summary.threads, threads.clamp(1, summary.results.len()));
    for r in &summary.results {
        assert!(r.json_path.exists(), "{} missing", r.json_path.display());
        assert!(!r.report.is_empty(), "{} produced no report", r.name);
        assert!(r.events_executed > 0, "{} executed no events", r.name);
    }
    (
        summary
            .results
            .iter()
            .map(|r| r.json_path.clone())
            .collect(),
        summary
            .results
            .iter()
            .map(|r| (r.name, r.events_executed))
            .collect(),
    )
}

#[test]
fn replay_scenarios_are_registered() {
    // The trace-replay experiments ride the same registry (and therefore
    // the same determinism guarantee) as the paper scenarios.
    let names: Vec<&str> = trail_bench::all_scenarios()
        .iter()
        .map(|s| s.name)
        .collect();
    for required in ["replay_synthetic", "replay_tpcc"] {
        assert!(names.contains(&required), "{required} not registered");
    }
}

#[test]
fn filter_selects_matching_scenarios_and_tolerates_no_match() {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join("run_all_filter");
    let opts = RunAllOptions {
        quick: true,
        out_dir: base.clone(),
        filter: Some("serve".into()),
        ..RunAllOptions::default()
    };
    let summary = run_all_scenarios(&opts).expect("filtered run writes artifacts");
    let names: Vec<&str> = summary.results.iter().map(|r| r.name).collect();
    assert_eq!(names, ["serve_fleet", "serve_sweep"]);
    // The fleet scenario publishes under the shorter `serve` artifact stem.
    assert!(base.join("BENCH_serve.json").exists());
    assert!(base.join("BENCH_serve_sweep.json").exists());

    // A filter matching nothing is an empty run, not a panic.
    let none = run_all_scenarios(&RunAllOptions {
        filter: Some("no-such-scenario".into()),
        out_dir: base,
        ..RunAllOptions::default()
    })
    .expect("empty run succeeds");
    assert!(none.results.is_empty());
}

#[test]
fn fixed_seed_is_byte_identical_across_thread_counts() {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join("run_all_det");
    let (serial, serial_events) = run_into(&base.join("t1"), 1, 0);
    let (parallel, parallel_events) = run_into(&base.join("t4"), 4, 0);
    let (reseeded, _) = run_into(&base.join("t1s9"), 1, 9);
    assert_eq!(serial.len(), parallel.len());
    // The executed-event counts are virtual-time quantities: like the JSON
    // artifacts, they must not move with the worker-thread count.
    assert_eq!(
        serial_events, parallel_events,
        "events_executed drifted between 1 and 4 threads"
    );
    let mut any_seed_sensitive = false;
    for (a, b) in serial.iter().zip(&parallel) {
        let left = std::fs::read(a).expect("read serial artifact");
        let right = std::fs::read(b).expect("read parallel artifact");
        assert_eq!(
            left,
            right,
            "{} differs between 1 and 4 threads",
            a.file_name().unwrap().to_string_lossy()
        );
        let c = base.join("t1s9").join(a.file_name().unwrap());
        if std::fs::read(&c).expect("read reseeded artifact") != left {
            any_seed_sensitive = true;
        }
    }
    let _ = reseeded;
    // The seed knob must not be vacuous: at least one scenario's numbers
    // have to move when the base seed changes.
    assert!(any_seed_sensitive, "--seed changed nothing");
}
