//! Full-stack telemetry acceptance tests: exact latency decomposition,
//! deterministic event streams, zero perturbation when recording, and a
//! parseable Chrome trace from the `fig3` binary.

use std::rc::Rc;

use trail_bench::{sync_writes_trail, sync_writes_trail_recorded, ArrivalMode};
use trail_core::TrailConfig;
use trail_sim::SimDuration;
use trail_telemetry::{EventKind, JsonValue, Layer, MemoryRecorder, RecorderHandle};

fn sparse() -> ArrivalMode {
    ArrivalMode::Sparse {
        gap: SimDuration::from_millis(5),
    }
}

/// Acceptance: record a sparse-sync-write workload through the full stack
/// and assert, for every request, that the telemetry breakdown (queue +
/// command overhead + seek + rotational wait + transfer) equals the
/// observed end-to-end latency within 1 µs of virtual time.
#[test]
fn breakdowns_sum_exactly_to_end_to_end_latency() {
    let rec = MemoryRecorder::shared();
    let _ = sync_writes_trail_recorded(
        TrailConfig::default(),
        2,
        60,
        512,
        sparse(),
        17,
        Some(Rc::clone(&rec) as RecorderHandle),
    );
    let completes: Vec<_> = rec
        .snapshot()
        .into_iter()
        .filter_map(|e| match e.kind {
            EventKind::Complete { breakdown } => Some((e.layer, breakdown)),
            _ => None,
        })
        .collect();
    assert!(
        completes.len() >= 120,
        "expected at least one Complete per request, got {}",
        completes.len()
    );
    // The shared completion lifecycle must emit Completes from BOTH layers
    // the token traverses: the core driver's host-facing acknowledgement
    // and the block layer's per-disk command completion.
    for layer in [Layer::Core, Layer::BlockIo] {
        let n = completes.iter().filter(|(l, _)| *l == layer).count();
        assert!(
            n >= 60,
            "expected one {layer:?} Complete per request, got {n}"
        );
    }
    for (_, b) in &completes {
        assert!(
            b.residual_nanos().unsigned_abs() <= 1_000,
            "breakdown off by {} ns: {b:?}",
            b.residual_nanos()
        );
        // The construction is additive, so the bound is met with zero slack.
        assert!(b.is_exact(), "non-zero residual: {b:?}");
        assert_eq!(b.component_sum(), b.total);
    }
}

/// Acceptance: two identically-seeded runs produce byte-identical
/// recorded event streams.
#[test]
fn identically_seeded_runs_produce_identical_streams() {
    let run = || {
        let rec = MemoryRecorder::shared();
        let _ = sync_writes_trail_recorded(
            TrailConfig::default(),
            4,
            25,
            2048,
            ArrivalMode::Clustered,
            99,
            Some(Rc::clone(&rec) as RecorderHandle),
        );
        assert!(!rec.is_empty());
        rec.fingerprint()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "seeded runs diverged");
    // A different seed must produce a different stream — otherwise the
    // fingerprint is vacuous.
    let rec = MemoryRecorder::shared();
    let _ = sync_writes_trail_recorded(
        TrailConfig::default(),
        4,
        25,
        2048,
        ArrivalMode::Clustered,
        100,
        Some(Rc::clone(&rec) as RecorderHandle),
    );
    assert_ne!(first, rec.fingerprint(), "seed is ignored");
}

/// Acceptance: attaching a recorder must not perturb the simulation, so
/// results with the default `NullRecorder` are identical to results with
/// a live `MemoryRecorder` — and therefore unchanged from the seed.
#[test]
fn recording_does_not_perturb_latency_results() {
    let plain = sync_writes_trail(TrailConfig::default(), 2, 40, 512, sparse(), 7);
    let rec = MemoryRecorder::shared();
    let recorded = sync_writes_trail_recorded(
        TrailConfig::default(),
        2,
        40,
        512,
        sparse(),
        7,
        Some(Rc::clone(&rec) as RecorderHandle),
    );
    assert!(!rec.is_empty());
    assert_eq!(plain.latency.count(), recorded.latency.count());
    assert_eq!(plain.latency.total(), recorded.latency.total());
    assert_eq!(plain.latency.min(), recorded.latency.min());
    assert_eq!(plain.latency.max(), recorded.latency.max());
}

/// Acceptance: `fig3 --trace-out` produces a Chrome trace-event JSON that
/// parses, survives a serialize/parse round trip, and contains at least
/// one event of every disk, blockio, and core event kind.
#[test]
fn fig3_trace_out_round_trips_and_covers_all_kinds() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(dir).expect("tmpdir");
    let trace_path = dir.join("fig3_trace.json");
    let metrics_path = dir.join("fig3_metrics.json");
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_fig3"))
        .arg("40")
        .arg("--trace-out")
        .arg(&trace_path)
        .arg("--metrics-out")
        .arg(&metrics_path)
        .current_dir(dir)
        .status()
        .expect("run fig3");
    assert!(status.success(), "fig3 exited with {status}");

    let text = std::fs::read_to_string(&trace_path).expect("read trace");
    let trace = JsonValue::parse(&text).expect("trace parses");
    // Round trip: serialize and parse again, structure must be identical.
    let again = JsonValue::parse(&trace.to_json()).expect("round trip parses");
    assert_eq!(trace, again, "trace JSON does not round-trip");

    let events = trace
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    for kind in [
        // disk
        "Seek",
        "RotWait",
        "Transfer",
        "FullRotationMiss",
        "TrackSwitch",
        // blockio
        "Enqueue",
        "Dispatch",
        "Complete",
        // core
        "PredictHit",
        "PredictMiss",
        "Reposition",
        "BatchFlush",
        "WriteBack",
    ] {
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(|n| n.as_str()) == Some(kind)),
            "trace has no {kind} event"
        );
    }

    let metrics_text = std::fs::read_to_string(&metrics_path).expect("read metrics");
    let metrics = JsonValue::parse(&metrics_text).expect("metrics parse");
    assert!(metrics.get("events").is_some(), "metrics lack event counts");
}
