//! Lock-step equivalence of the indexed event queue against a reference
//! model.
//!
//! The executor's semantics are pinned by the old `BinaryHeap` + cancelled
//! set design: events fire in `(time, scheduling-sequence)` order, `cancel`
//! returns `true` exactly once for a still-pending event and `false` for
//! anything stale (fired, cancelled, or a reused slot), and
//! `events_pending` counts live events only. This test drives the real
//! [`Simulator`] and a transparent [`BTreeMap`] model through the same
//! random interleavings of schedule / cancel / run_until — including
//! equal-timestamp ties and cancels aimed at already-executed ids — and
//! demands identical observable behaviour at every step.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use proptest::prelude::*;
use trail_sim::{EventId, SimDuration, SimTime, Simulator};

/// One generated operation on the queue.
#[derive(Clone, Debug)]
enum Op {
    /// Schedule a token `delay_ns` after the current virtual time. Small
    /// deltas (including zero) make equal-timestamp ties common.
    Schedule { delay_ns: u64 },
    /// Cancel the `idx % scheduled`-th id handed out so far — which may
    /// already have fired, already be cancelled, or still be pending.
    Cancel { idx: usize },
    /// Advance virtual time, firing everything due.
    RunFor { ns: u64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0u64..50).prop_map(|delay_ns| Op::Schedule { delay_ns }),
        any::<usize>().prop_map(|idx| Op::Cancel { idx }),
        (0u64..80).prop_map(|ns| Op::RunFor { ns }),
    ];
    proptest::collection::vec(op, 1..200)
}

/// Reference model: an ordered map over `(time, seq)` with tombstones.
struct Model {
    now: SimTime,
    next_seq: u64,
    /// `(fire_time, seq) -> (token, cancelled)`.
    pending: BTreeMap<(SimTime, u64), (u32, bool)>,
    /// Tokens in expected execution order.
    executed: Vec<u32>,
}

impl Model {
    fn schedule(&mut self, delay: SimDuration, token: u32) -> (SimTime, u64) {
        let key = (self.now + delay, self.next_seq);
        self.next_seq += 1;
        self.pending.insert(key, (token, false));
        key
    }

    /// Mirrors `Simulator::cancel`: true iff the event is still pending.
    fn cancel(&mut self, key: (SimTime, u64)) -> bool {
        match self.pending.get_mut(&key) {
            Some((_, cancelled @ false)) => {
                *cancelled = true;
                true
            }
            _ => false,
        }
    }

    fn run_until(&mut self, until: SimTime) {
        while let Some((&key, &(token, cancelled))) = self.pending.first_key_value() {
            if key.0 > until {
                break;
            }
            self.pending.remove(&key);
            if !cancelled {
                self.executed.push(token);
            }
        }
        self.now = until;
    }

    fn live_pending(&self) -> usize {
        self.pending.values().filter(|(_, c)| !c).count()
    }
}

fn lockstep(ops: &[Op]) {
    let mut sim = Simulator::new();
    let mut model = Model {
        now: SimTime::ZERO,
        next_seq: 0,
        pending: BTreeMap::new(),
        executed: Vec::new(),
    };
    let fired: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
    // Parallel arrays: the real id and the model key for every schedule.
    let mut ids: Vec<EventId> = Vec::new();
    let mut keys: Vec<(SimTime, u64)> = Vec::new();

    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Schedule { delay_ns } => {
                let token = ids.len() as u32;
                let delay = SimDuration::from_nanos(delay_ns);
                let log = Rc::clone(&fired);
                ids.push(sim.schedule_in(delay, move |_| log.borrow_mut().push(token)));
                keys.push(model.schedule(delay, token));
            }
            Op::Cancel { idx } => {
                if ids.is_empty() {
                    continue;
                }
                let i = idx % ids.len();
                assert_eq!(
                    sim.cancel(ids[i]),
                    model.cancel(keys[i]),
                    "cancel verdict diverged at op {step} for schedule #{i}"
                );
            }
            Op::RunFor { ns } => {
                let until = sim.now() + SimDuration::from_nanos(ns);
                sim.run_until(until);
                model.run_until(until);
            }
        }
        assert_eq!(sim.now(), model.now, "clock diverged at op {step}");
        assert_eq!(
            sim.events_pending(),
            model.live_pending(),
            "pending count diverged at op {step}"
        );
        assert_eq!(
            *fired.borrow(),
            model.executed,
            "execution order diverged at op {step}"
        );
    }

    // Drain both queues completely; order must still agree.
    sim.run();
    if let Some((&(last, _), _)) = model.pending.last_key_value() {
        model.run_until(last);
    }
    assert_eq!(*fired.borrow(), model.executed, "final drain diverged");
    assert_eq!(sim.events_pending(), 0);
    assert_eq!(model.live_pending(), 0);
}

proptest! {
    #[test]
    fn simulator_matches_reference_model(ops in arb_ops()) {
        lockstep(&ops);
    }
}

/// A handwritten interleaving that exercises the nastiest transitions in
/// one deterministic pass: ties, interior cancels, cancel-of-executed, and
/// slot reuse between them.
#[test]
fn lockstep_regression_dense_ties_and_stale_cancels() {
    let ops = vec![
        Op::Schedule { delay_ns: 10 },
        Op::Schedule { delay_ns: 10 },
        Op::Schedule { delay_ns: 10 },
        Op::Cancel { idx: 1 },
        Op::RunFor { ns: 10 },
        Op::Cancel { idx: 0 },        // already executed
        Op::Cancel { idx: 1 },        // already cancelled
        Op::Schedule { delay_ns: 0 }, // reuses a vacated slot
        Op::Schedule { delay_ns: 0 },
        Op::Cancel { idx: 3 },
        Op::Cancel { idx: 3 }, // double cancel on the reused slot
        Op::RunFor { ns: 0 },
        Op::RunFor { ns: 100 },
    ];
    lockstep(&ops);
}
