//! Typed, cancel-safe completion tokens for cross-layer request lifecycles.
//!
//! Every layer of the storage stack (block driver, Trail core, WAL, file
//! systems) hands requests downward and wants to hear back exactly once.
//! Bespoke per-layer `Box<dyn FnOnce(&mut Simulator, …)>` typedefs made two
//! hazards easy to write:
//!
//! - **Re-entrancy**: a callback invoked synchronously from inside a
//!   component could submit new I/O back into that component while its
//!   `RefCell` state was still mutably borrowed.
//! - **Silent drops**: tearing down a component (power loss, unmount) could
//!   drop pending callbacks on the floor, leaving upper layers waiting
//!   forever.
//!
//! [`Completion<T>`] removes both by construction. Delivery is **deferred**:
//! [`Completion::complete`] schedules the handler as a fresh simulator event
//! instead of calling it inline, so a handler that submits new I/O is never
//! re-entrant into the component that fired it. And a completion **dropped
//! while still armed** parks an `Err(`[`Cancelled`]`)` delivery in its
//! [`CompletionSink`]; the simulator drains that queue on its next step, so
//! the upper layer always hears back.
//!
//! # Examples
//!
//! ```
//! use std::cell::Cell;
//! use std::rc::Rc;
//! use trail_sim::Simulator;
//!
//! let mut sim = Simulator::new();
//! let seen = Rc::new(Cell::new(0u32));
//!
//! // Delivered normally.
//! let s = Rc::clone(&seen);
//! let done = sim.completion(move |_, d: trail_sim::Delivered<u32>| {
//!     s.set(d.expect("delivered"));
//! });
//! done.complete(&mut sim, 7);
//! assert_eq!(seen.get(), 0, "delivery is deferred, not inline");
//! sim.run();
//! assert_eq!(seen.get(), 7);
//!
//! // Dropped while armed: the handler still fires, with Err(Cancelled).
//! let s = Rc::clone(&seen);
//! let orphan = sim.completion(move |_, d: trail_sim::Delivered<u32>| {
//!     assert!(d.is_err());
//!     s.set(99);
//! });
//! drop(orphan);
//! sim.run();
//! assert_eq!(seen.get(), 99);
//! ```

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::event::{EventFn, Simulator};

/// The completion was dropped or explicitly cancelled before a value was
/// delivered (power loss, unmount, supersession).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "completion cancelled before delivery")
    }
}

impl std::error::Error for Cancelled {}

/// What a completion handler receives: the value, or proof of cancellation.
pub type Delivered<T> = Result<T, Cancelled>;

/// Identifies a completion token, unique within its [`CompletionSink`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CompletionId(u64);

impl CompletionId {
    /// The raw identifier value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

struct SinkShared {
    next_id: u64,
    orphans: Vec<EventFn>,
    cancelled: u64,
}

/// Mints [`Completion`] tokens and collects cancellations from dropped ones.
///
/// Cloning is cheap and shares the underlying state. The [`Simulator`] owns
/// a master sink ([`Simulator::completions`]) whose orphan queue it drains
/// on every step; that drain is what makes dropping an armed completion
/// deliver `Err(`[`Cancelled`]`)` instead of silence.
#[derive(Clone)]
pub struct CompletionSink {
    shared: Rc<RefCell<SinkShared>>,
}

impl CompletionSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        CompletionSink {
            shared: Rc::new(RefCell::new(SinkShared {
                next_id: 0,
                orphans: Vec::new(),
                cancelled: 0,
            })),
        }
    }

    /// Mints a completion token whose `handler` fires exactly once with the
    /// delivered value or `Err(`[`Cancelled`]`)`.
    pub fn completion<T: 'static>(
        &self,
        handler: impl FnOnce(&mut Simulator, Delivered<T>) + 'static,
    ) -> Completion<T> {
        let id = {
            let mut s = self.shared.borrow_mut();
            let id = s.next_id;
            s.next_id += 1;
            CompletionId(id)
        };
        Completion {
            id,
            handler: Some(Box::new(handler)),
            sink: self.clone(),
        }
    }

    /// Number of cancellations parked by dropped completions and not yet
    /// delivered.
    pub fn orphan_count(&self) -> usize {
        self.shared.borrow().orphans.len()
    }

    /// Total completions from this sink that ended in `Err(`[`Cancelled`]`)`
    /// — explicitly via [`Completion::cancel`] or implicitly by being
    /// dropped while armed. Monotonic over the sink's lifetime; harnesses
    /// read it instead of re-deriving shed/cancelled request counts from
    /// their own handlers.
    pub fn cancelled_count(&self) -> u64 {
        self.shared.borrow().cancelled
    }

    fn note_cancelled(&self) {
        self.shared.borrow_mut().cancelled += 1;
    }

    /// Takes the parked cancellation deliveries (called by the simulator).
    pub(crate) fn take_orphans(&self) -> Vec<EventFn> {
        std::mem::take(&mut self.shared.borrow_mut().orphans)
    }

    fn park(&self, f: EventFn) {
        self.shared.borrow_mut().orphans.push(f);
    }
}

impl Default for CompletionSink {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for CompletionSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.shared.borrow();
        f.debug_struct("CompletionSink")
            .field("next_id", &s.next_id)
            .field("orphans", &s.orphans.len())
            .finish()
    }
}

/// A one-shot, typed acknowledgement of a submitted request.
///
/// Obtained from [`Simulator::completion`] (or any [`CompletionSink`]) and
/// passed *down* the stack with the request; the layer that finishes the
/// work calls [`complete`](Completion::complete) (or
/// [`cancel`](Completion::cancel)). The handler runs as its own simulator
/// event — never inline — so it may freely submit new I/O into the very
/// component that completed it.
///
/// Dropping an armed completion is safe: the handler is delivered
/// `Err(`[`Cancelled`]`)` on the simulator's next step.
pub struct Completion<T: 'static> {
    id: CompletionId,
    handler: Option<Handler<T>>,
    sink: CompletionSink,
}

/// The boxed delivery handler held by an armed [`Completion`].
type Handler<T> = Box<dyn FnOnce(&mut Simulator, Delivered<T>)>;

impl<T: 'static> Completion<T> {
    /// The token's identity (stable across the request's lifetime; useful
    /// as a telemetry correlation key).
    pub fn id(&self) -> CompletionId {
        self.id
    }

    /// Delivers `value`, consuming the token. The handler runs as a fresh
    /// event at the current simulated time, after already-queued events.
    pub fn complete(mut self, sim: &mut Simulator, value: T) {
        if let Some(h) = self.handler.take() {
            sim.schedule_now(move |sim: &mut Simulator| h(sim, Ok(value)));
        }
    }

    /// Delivers `Err(`[`Cancelled`]`)`, consuming the token. Same deferred
    /// semantics as [`complete`](Completion::complete).
    pub fn cancel(mut self, sim: &mut Simulator) {
        if let Some(h) = self.handler.take() {
            self.sink.note_cancelled();
            sim.schedule_now(move |sim: &mut Simulator| h(sim, Err(Cancelled)));
        }
    }
}

impl<T: 'static> Drop for Completion<T> {
    fn drop(&mut self) {
        if let Some(h) = self.handler.take() {
            // No `&mut Simulator` here, so park the cancellation in the
            // sink; the simulator drains it on its next step.
            self.sink.note_cancelled();
            self.sink.park(Box::new(move |sim| h(sim, Err(Cancelled))));
        }
    }
}

impl<T: 'static> fmt::Debug for Completion<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Completion")
            .field("id", &self.id)
            .field("armed", &self.handler.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use std::cell::{Cell, RefCell};

    #[test]
    fn ids_are_unique_and_monotonic() {
        let mut sim = Simulator::new();
        let a = sim.completion(|_, _: Delivered<()>| {});
        let b = sim.completion(|_, _: Delivered<()>| {});
        assert!(a.id() < b.id());
        assert_ne!(a.id().raw(), b.id().raw());
        a.cancel(&mut sim);
        b.cancel(&mut sim);
        sim.run();
    }

    #[test]
    fn delivery_is_deferred_not_inline() {
        let mut sim = Simulator::new();
        let seen = Rc::new(Cell::new(false));
        let s = Rc::clone(&seen);
        let done = sim.completion(move |_, d: Delivered<u8>| {
            assert_eq!(d, Ok(5));
            s.set(true);
        });
        done.complete(&mut sim, 5);
        assert!(!seen.get(), "handler must not run inline");
        assert!(sim.step());
        assert!(seen.get());
    }

    #[test]
    fn deferred_delivery_runs_after_already_queued_same_time_events() {
        let mut sim = Simulator::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        let o = Rc::clone(&order);
        sim.schedule_now(move |_| o.borrow_mut().push("queued"));
        let o = Rc::clone(&order);
        let done = sim.completion(move |_, _: Delivered<()>| o.borrow_mut().push("completion"));
        done.complete(&mut sim, ());
        sim.run();
        assert_eq!(*order.borrow(), vec!["queued", "completion"]);
    }

    #[test]
    fn cancel_delivers_err() {
        let mut sim = Simulator::new();
        let seen = Rc::new(Cell::new(false));
        let s = Rc::clone(&seen);
        let done = sim.completion(move |_, d: Delivered<u8>| {
            assert_eq!(d, Err(Cancelled));
            s.set(true);
        });
        done.cancel(&mut sim);
        sim.run();
        assert!(seen.get());
    }

    #[test]
    fn dropped_completion_is_delivered_as_cancelled() {
        let mut sim = Simulator::new();
        let seen = Rc::new(Cell::new(false));
        let s = Rc::clone(&seen);
        let done = sim.completion(move |_, d: Delivered<u32>| {
            assert!(d.is_err());
            s.set(true);
        });
        drop(done);
        assert_eq!(sim.completions().orphan_count(), 1);
        sim.run();
        assert!(seen.get());
        assert_eq!(sim.completions().orphan_count(), 0);
    }

    #[test]
    fn orphans_flush_even_when_queue_had_drained() {
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_millis(1), |_| {});
        sim.run();
        let seen = Rc::new(Cell::new(false));
        let s = Rc::clone(&seen);
        drop(sim.completion(move |_, _: Delivered<()>| s.set(true)));
        sim.run();
        assert!(seen.get());
    }

    #[test]
    fn run_until_delivers_orphans() {
        let mut sim = Simulator::new();
        let seen = Rc::new(Cell::new(false));
        let s = Rc::clone(&seen);
        drop(sim.completion(move |_, _: Delivered<()>| s.set(true)));
        sim.run_until(sim.now() + SimDuration::from_millis(1));
        assert!(seen.get());
    }

    #[test]
    fn completed_token_does_not_double_deliver_on_drop() {
        let mut sim = Simulator::new();
        let count = Rc::new(Cell::new(0u32));
        let c = Rc::clone(&count);
        let done = sim.completion(move |_, _: Delivered<()>| c.set(c.get() + 1));
        done.complete(&mut sim, ());
        sim.run();
        assert_eq!(count.get(), 1);
        assert_eq!(sim.completions().orphan_count(), 0);
    }

    #[test]
    fn cancelled_count_covers_explicit_and_dropped() {
        let mut sim = Simulator::new();
        assert_eq!(sim.completions().cancelled_count(), 0);
        let a = sim.completion(|_, _: Delivered<()>| {});
        a.cancel(&mut sim);
        drop(sim.completion(|_, _: Delivered<()>| {}));
        let delivered = sim.completion(|_, _: Delivered<()>| {});
        delivered.complete(&mut sim, ());
        sim.run();
        // Explicit cancel + drop count; normal delivery does not.
        assert_eq!(sim.completions().cancelled_count(), 2);
        assert_eq!(sim.completions().orphan_count(), 0);
    }

    #[test]
    fn handler_submitting_new_io_is_not_reentrant() {
        // A "component" that holds a RefCell borrow across completion would
        // panic if delivery were inline; deferred delivery makes it safe.
        struct Component {
            state: RefCell<Vec<u32>>,
        }
        impl Component {
            fn fire(self: &Rc<Self>, sim: &mut Simulator, done: Completion<u32>) {
                let mut state = self.state.borrow_mut();
                state.push(1);
                done.complete(sim, 1);
                // Borrow still held here; any inline handler touching the
                // component would double-borrow.
                state.push(2);
            }
        }
        let mut sim = Simulator::new();
        let comp = Rc::new(Component {
            state: RefCell::new(Vec::new()),
        });
        let seen = Rc::new(Cell::new(0u32));
        let c2 = Rc::clone(&comp);
        let s = Rc::clone(&seen);
        let outer = sim.completion(move |sim, d: Delivered<u32>| {
            // Re-enter the component from the handler.
            let s2 = Rc::clone(&s);
            let inner = sim.completion(move |_, d2: Delivered<u32>| {
                s2.set(d.unwrap() + d2.unwrap() + 10);
            });
            c2.fire(sim, inner);
        });
        Rc::clone(&comp).fire(&mut sim, outer);
        sim.run();
        assert_eq!(seen.get(), 12);
        assert_eq!(*comp.state.borrow(), vec![1, 2, 1, 2]);
    }
}
