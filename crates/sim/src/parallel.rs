//! Order-preserving parallel work queue over scoped OS threads.
//!
//! The simulator itself is single-threaded by design (components share
//! state through `Rc<RefCell<_>>`), but many harnesses are embarrassingly
//! parallel *across* simulations: each work item boots its own
//! [`Simulator`](crate::Simulator) and never touches shared state. This
//! module provides the one fan-out primitive those harnesses share —
//! `run_all`, the crash campaigns, and sharded trace replay all drain the
//! same kind of queue.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Applies `f` to every item on a pool of `threads` scoped OS workers and
/// returns the results in item order.
///
/// Workers drain a shared index queue and only *compute*; the caller
/// receives the results in the original item order regardless of which
/// worker ran what, so a deterministic `f` yields identical output for
/// any thread count. `threads` is clamped to `1..=items.len()`.
///
/// # Panics
///
/// Panics if `f` panics on a worker thread (the panic is propagated when
/// the thread scope joins).
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, items.len());
    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let queue: Mutex<VecDeque<usize>> = Mutex::new((0..tasks.len()).collect());
    let slots: Vec<Mutex<Option<R>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue poisoned").pop_front();
                let Some(idx) = next else { break };
                let item = tasks[idx]
                    .lock()
                    .expect("task poisoned")
                    .take()
                    .expect("each task is claimed once");
                *slots[idx].lock().expect("slot poisoned") = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("every queued task ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::parallel_map;

    #[test]
    fn parallel_map_returns_results_in_item_order() {
        let expected: Vec<i64> = (0..100).map(|i| i * i).collect();
        for threads in [1, 3, 16] {
            assert_eq!(
                parallel_map((0..100).collect(), threads, |i: i64| i * i),
                expected
            );
        }
        assert_eq!(parallel_map(Vec::<i64>::new(), 4, |i| i), Vec::<i64>::new());
    }
}
