//! # trail-sim: deterministic discrete-event simulation kernel
//!
//! This crate is the bottom layer of the Trail reproduction (Chiueh & Huang,
//! *Track-Based Disk Logging*, DSN 2002). Every latency the paper reports is
//! a time measurement on mechanical disk hardware; the reproduction replaces
//! wall-clock time with a **virtual clock** so that the same measurements are
//! exact, deterministic, and crash-injectable.
//!
//! The crate provides:
//!
//! - [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time.
//! - [`Simulator`] — a single-threaded event executor; components share
//!   state through `Rc<RefCell<_>>` and communicate by scheduling closures.
//! - [`LatencySummary`], [`BusyMeter`], [`Counter`] — the measurement
//!   collectors used by every experiment harness.
//! - [`rng`] — seeded small RNG for reproducible workloads.
//!
//! # Examples
//!
//! A "device" that completes requests after a fixed service time:
//!
//! ```
//! use std::cell::RefCell;
//! use std::rc::Rc;
//! use trail_sim::{LatencySummary, SimDuration, Simulator};
//!
//! let mut sim = Simulator::new();
//! let lat = Rc::new(RefCell::new(LatencySummary::new()));
//!
//! for i in 0..10u64 {
//!     let lat = Rc::clone(&lat);
//!     sim.schedule_in(SimDuration::from_millis(i), move |sim| {
//!         let issued = sim.now();
//!         let lat = Rc::clone(&lat);
//!         sim.schedule_in(SimDuration::from_micros(1400), move |sim| {
//!             lat.borrow_mut().record(sim.now() - issued);
//!         });
//!     });
//! }
//! sim.run();
//! assert_eq!(lat.borrow().count(), 10);
//! assert_eq!(lat.borrow().mean().as_millis_f64(), 1.4);
//! ```

// Unsafe code is denied crate-wide with one audited exception: the
// `payload` module's inline closure storage (see its module docs for the
// invariants). Everything else must stay safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod completion;
mod event;
mod fault;
mod parallel;
#[allow(unsafe_code)]
mod payload;
mod queue;
mod stats;
mod time;

pub use completion::{Cancelled, Completion, CompletionId, CompletionSink, Delivered};
pub use event::{thread_events_executed, EventFn, EventId, Simulator};
pub use fault::{
    Fault, FaultClock, FaultKind, FaultPlan, FaultPlanParseError, FaultSink, FaultTarget,
};
pub use parallel::parallel_map;
pub use payload::INLINE_EVENT_BYTES;
pub use stats::{BusyMeter, Counter, LatencySummary};
pub use time::{SimDuration, SimTime};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Creates a small, fast, seeded RNG for reproducible workload generation.
///
/// All workload generators in the reproduction take explicit seeds so that
/// every experiment is replayable bit-for-bit.
///
/// # Examples
///
/// ```
/// use rand::Rng;
///
/// let mut a = trail_sim::rng(42);
/// let mut b = trail_sim::rng(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    #[test]
    fn rng_is_deterministic_across_calls() {
        use rand::Rng;
        let xs: Vec<u32> = (0..4).map(|_| super::rng(7).gen()).collect();
        assert!(xs.windows(2).all(|w| w[0] == w[1]));
    }
}
