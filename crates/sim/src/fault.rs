//! The fault plane: declarative fault schedules and the clock that arms
//! them.
//!
//! Crash experiments used to reach for layer-specific hooks (cut this
//! disk's power here, fail that RAID member there). The fault plane
//! replaces those with one schedule type, [`FaultPlan`]: a deterministic,
//! serializable list of [`Fault`]s, each naming an instant (relative to
//! arming), a [`FaultTarget`] and a [`FaultKind`]. Layers that own
//! faultable hardware register a [`FaultSink`] on the stack's
//! [`FaultClock`]; arming the clock schedules one simulator event per
//! fault, and when the event fires every registered sink is offered the
//! fault in registration order.
//!
//! The plan is pure data — it can be built in code, round-tripped through
//! the compact text form ([`FaultPlan::encode`] / `FromStr`), stored in a
//! scenario config, or swept by a campaign driver. Determinism follows
//! from the simulator: the same plan armed at the same instant against the
//! same stack replays bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use trail_sim::{Fault, FaultKind, FaultPlan, FaultTarget, SimDuration};
//!
//! let mut plan = FaultPlan::power_cut_at(SimDuration::from_millis(120));
//! plan.push(Fault {
//!     at: SimDuration::from_millis(40),
//!     target: FaultTarget::Member { volume: 0, member: 1 },
//!     kind: FaultKind::Fail,
//! });
//! let text = plan.encode();
//! assert_eq!(text, "@120000000 system cut; @40000000 vol0.m1 fail");
//! assert_eq!(text.parse::<FaultPlan>().unwrap(), plan);
//! ```

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::str::FromStr;

use crate::event::Simulator;
use crate::time::SimDuration;

/// What a fault is aimed at.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultTarget {
    /// Every device in the stack (whole-system faults, e.g. a machine
    /// power cut).
    System,
    /// Data disk `i`, in stack device order. In volume-backed stacks this
    /// addresses the flattened member-disk list.
    Data(usize),
    /// Log disk `i`, in instance order (`0` for single-log stacks).
    Log(usize),
    /// One member of one RAID volume — the layout-aware address, which
    /// also marks the volume degraded.
    Member {
        /// Volume index in stack order.
        volume: usize,
        /// Member index within the volume.
        member: usize,
    },
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTarget::System => write!(f, "system"),
            FaultTarget::Data(i) => write!(f, "data{i}"),
            FaultTarget::Log(i) => write!(f, "log{i}"),
            FaultTarget::Member { volume, member } => write!(f, "vol{volume}.m{member}"),
        }
    }
}

/// What happens when a fault fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Power loss: sectors whose media transfer already finished persist,
    /// the rest of any in-flight command is lost, and the device rejects
    /// commands until powered back on.
    PowerCut,
    /// Permanent whole-device failure: nothing of an in-flight command
    /// persists and the device never comes back.
    Fail,
    /// The next `count` commands submitted to the target are rejected
    /// with a transient I/O error (no mechanical side effects).
    TransientError {
        /// Number of commands to reject.
        count: u32,
    },
    /// The next `count` commands complete `extra` late — injected
    /// controller overhead at the front of each command.
    LatencySpike {
        /// Extra service time per affected command.
        extra: SimDuration,
        /// Number of commands to slow down.
        count: u32,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::PowerCut => write!(f, "cut"),
            FaultKind::Fail => write!(f, "fail"),
            FaultKind::TransientError { count } => write!(f, "err*{count}"),
            FaultKind::LatencySpike { extra, count } => {
                write!(f, "slow+{}*{count}", extra.as_nanos())
            }
        }
    }
}

/// One scheduled fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fault {
    /// When the fault fires, relative to [`FaultClock::arm`].
    pub at: SimDuration,
    /// What it is aimed at.
    pub target: FaultTarget,
    /// What happens.
    pub kind: FaultKind,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} {} {}", self.at.as_nanos(), self.target, self.kind)
    }
}

/// A deterministic, serializable schedule of faults.
///
/// The text form is `;`-separated faults, each
/// `@<offset_ns> <target> <kind>` with targets `system`, `data<i>`,
/// `log<i>`, `vol<v>.m<m>` and kinds `cut`, `fail`, `err*<count>`,
/// `slow+<extra_ns>*<count>`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults. Faults armed for the same instant fire in
    /// this order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Appends a fault to the schedule.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// Builder-style [`push`](FaultPlan::push).
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.push(fault);
        self
    }

    /// A whole-system power cut `after` the plan is armed.
    pub fn power_cut_at(after: SimDuration) -> FaultPlan {
        FaultPlan::new().with(Fault {
            at: after,
            target: FaultTarget::System,
            kind: FaultKind::PowerCut,
        })
    }

    /// A permanent failure of `member` of `volume`, `after` the plan is
    /// armed.
    pub fn member_fail(volume: usize, member: usize, after: SimDuration) -> FaultPlan {
        FaultPlan::new().with(Fault {
            at: after,
            target: FaultTarget::Member { volume, member },
            kind: FaultKind::Fail,
        })
    }

    /// Renders the plan in its compact text form (see the type docs for
    /// the grammar). `encode` and `FromStr` round-trip exactly.
    pub fn encode(&self) -> String {
        self.faults
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

/// Error parsing a [`FaultPlan`] from its text form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlanParseError(String);

impl fmt::Display for FaultPlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.0)
    }
}

impl std::error::Error for FaultPlanParseError {}

fn parse_target(s: &str) -> Result<FaultTarget, FaultPlanParseError> {
    let bad = || FaultPlanParseError(format!("bad target `{s}`"));
    if s == "system" {
        Ok(FaultTarget::System)
    } else if let Some(i) = s.strip_prefix("data") {
        Ok(FaultTarget::Data(i.parse().map_err(|_| bad())?))
    } else if let Some(i) = s.strip_prefix("log") {
        Ok(FaultTarget::Log(i.parse().map_err(|_| bad())?))
    } else if let Some(rest) = s.strip_prefix("vol") {
        let (v, m) = rest.split_once(".m").ok_or_else(bad)?;
        Ok(FaultTarget::Member {
            volume: v.parse().map_err(|_| bad())?,
            member: m.parse().map_err(|_| bad())?,
        })
    } else {
        Err(bad())
    }
}

fn parse_kind(s: &str) -> Result<FaultKind, FaultPlanParseError> {
    let bad = || FaultPlanParseError(format!("bad kind `{s}`"));
    if s == "cut" {
        Ok(FaultKind::PowerCut)
    } else if s == "fail" {
        Ok(FaultKind::Fail)
    } else if let Some(count) = s.strip_prefix("err*") {
        Ok(FaultKind::TransientError {
            count: count.parse().map_err(|_| bad())?,
        })
    } else if let Some(rest) = s.strip_prefix("slow+") {
        let (extra, count) = rest.split_once('*').ok_or_else(bad)?;
        Ok(FaultKind::LatencySpike {
            extra: SimDuration::from_nanos(extra.parse().map_err(|_| bad())?),
            count: count.parse().map_err(|_| bad())?,
        })
    } else {
        Err(bad())
    }
}

impl FromStr for FaultPlan {
    type Err = FaultPlanParseError;

    fn from_str(s: &str) -> Result<FaultPlan, FaultPlanParseError> {
        let mut plan = FaultPlan::new();
        for item in s.split(';') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let mut parts = item.split_whitespace();
            let at = parts
                .next()
                .and_then(|p| p.strip_prefix('@'))
                .and_then(|p| p.parse::<u64>().ok())
                .ok_or_else(|| FaultPlanParseError(format!("bad offset in `{item}`")))?;
            let target = parse_target(
                parts
                    .next()
                    .ok_or_else(|| FaultPlanParseError(format!("missing target in `{item}`")))?,
            )?;
            let kind = parse_kind(
                parts
                    .next()
                    .ok_or_else(|| FaultPlanParseError(format!("missing kind in `{item}`")))?,
            )?;
            if parts.next().is_some() {
                return Err(FaultPlanParseError(format!("trailing tokens in `{item}`")));
            }
            plan.push(Fault {
                at: SimDuration::from_nanos(at),
                target,
                kind,
            });
        }
        Ok(plan)
    }
}

/// A layer that owns faultable hardware.
///
/// `apply` is called at the fault's instant with the simulator positioned
/// at `sim.now()`; the sink returns `true` if the fault addressed
/// something it owns (whole-system faults are typically handled by many
/// sinks at once).
pub trait FaultSink {
    /// Applies `fault` if it addresses this sink; returns whether it did.
    fn apply(&self, sim: &mut Simulator, fault: &Fault) -> bool;
}

#[derive(Default)]
struct ClockInner {
    sinks: Vec<Rc<dyn FaultSink>>,
    armed: u64,
    fired: u64,
    unhandled: u64,
}

/// Arms a [`FaultPlan`] on a simulator and dispatches each fault to the
/// registered [`FaultSink`]s when its instant arrives.
///
/// Sinks registered *after* arming still receive faults that have not yet
/// fired — the sink list is read at fire time — which lets a harness
/// observe a stack's plan (e.g. flip a "crashed" flag on power cut)
/// without owning the arming site.
///
/// A fault no sink claims is counted (see [`FaultClock::unhandled`]) but
/// is not an error: plans are written against stack *shapes*, and a plan
/// naming a RAID member is legal to arm on a stack without volumes.
#[derive(Clone, Default)]
pub struct FaultClock {
    inner: Rc<RefCell<ClockInner>>,
}

impl FaultClock {
    /// A clock with no sinks and nothing armed.
    pub fn new() -> FaultClock {
        FaultClock::default()
    }

    /// Registers a sink. Every subsequently fired fault is offered to it.
    pub fn register(&self, sink: Rc<dyn FaultSink>) {
        self.inner.borrow_mut().sinks.push(sink);
    }

    /// Schedules one simulator event per fault in `plan`, each at
    /// `sim.now() + fault.at`. May be called more than once; plans
    /// accumulate.
    pub fn arm(&self, sim: &mut Simulator, plan: &FaultPlan) {
        for fault in &plan.faults {
            let clock = self.clone();
            let fault = *fault;
            self.inner.borrow_mut().armed += 1;
            sim.schedule_in(fault.at, move |sim| clock.fire(sim, fault));
        }
    }

    fn fire(&self, sim: &mut Simulator, fault: Fault) {
        let sinks: Vec<Rc<dyn FaultSink>> = self.inner.borrow().sinks.clone();
        let mut handled = false;
        for sink in &sinks {
            handled |= sink.apply(sim, &fault);
        }
        let mut inner = self.inner.borrow_mut();
        inner.fired += 1;
        if !handled {
            inner.unhandled += 1;
        }
    }

    /// Faults scheduled so far (across all [`arm`](FaultClock::arm) calls).
    pub fn armed(&self) -> u64 {
        self.inner.borrow().armed
    }

    /// Faults whose instants have arrived.
    pub fn fired(&self) -> u64 {
        self.inner.borrow().fired
    }

    /// Fired faults that no sink claimed.
    pub fn unhandled(&self) -> u64 {
        self.inner.borrow().unhandled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        seen: RefCell<Vec<Fault>>,
        claim: bool,
    }

    impl FaultSink for Recorder {
        fn apply(&self, _sim: &mut Simulator, fault: &Fault) -> bool {
            self.seen.borrow_mut().push(*fault);
            self.claim
        }
    }

    fn sample_plan() -> FaultPlan {
        FaultPlan::power_cut_at(SimDuration::from_millis(5))
            .with(Fault {
                at: SimDuration::from_millis(1),
                target: FaultTarget::Member {
                    volume: 2,
                    member: 1,
                },
                kind: FaultKind::Fail,
            })
            .with(Fault {
                at: SimDuration::from_micros(7),
                target: FaultTarget::Data(3),
                kind: FaultKind::TransientError { count: 4 },
            })
            .with(Fault {
                at: SimDuration::ZERO,
                target: FaultTarget::Log(0),
                kind: FaultKind::LatencySpike {
                    extra: SimDuration::from_micros(250),
                    count: 2,
                },
            })
    }

    #[test]
    fn encode_parse_round_trip() {
        let plan = sample_plan();
        let text = plan.encode();
        assert_eq!(text.parse::<FaultPlan>().unwrap(), plan);
        // And the canonical form is stable.
        assert_eq!(text.parse::<FaultPlan>().unwrap().encode(), text);
    }

    #[test]
    fn parse_accepts_whitespace_and_empty_items() {
        let plan: FaultPlan = " @1000 system cut ;; @2000 vol0.m1 fail ".parse().unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(
            plan.faults[1].target,
            FaultTarget::Member {
                volume: 0,
                member: 1
            }
        );
        assert_eq!("".parse::<FaultPlan>().unwrap(), FaultPlan::new());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "@x system cut",
            "@10 nowhere cut",
            "@10 system melt",
            "@10 system cut extra",
            "@10 vol0 fail",
            "@10 data cut",
            "@10 system slow+abc*2",
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn clock_fires_at_offsets_and_counts_unhandled() {
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_millis(10), |_| {});
        let clock = FaultClock::new();
        let sink = Rc::new(Recorder {
            claim: true,
            ..Recorder::default()
        });
        clock.register(Rc::clone(&sink) as Rc<dyn FaultSink>);
        let deaf = Rc::new(Recorder::default());
        clock.register(Rc::clone(&deaf) as Rc<dyn FaultSink>);
        clock.arm(&mut sim, &sample_plan());
        assert_eq!(clock.armed(), 4);
        sim.run();
        assert_eq!(clock.fired(), 4);
        // Every fault reached both sinks; the claiming sink makes them all
        // handled.
        assert_eq!(sink.seen.borrow().len(), 4);
        assert_eq!(deaf.seen.borrow().len(), 4);
        assert_eq!(clock.unhandled(), 0);
    }

    #[test]
    fn unclaimed_faults_are_tolerated() {
        let mut sim = Simulator::new();
        let clock = FaultClock::new();
        clock.register(Rc::new(Recorder::default()));
        clock.arm(&mut sim, &FaultPlan::member_fail(9, 9, SimDuration::ZERO));
        sim.run();
        assert_eq!(clock.fired(), 1);
        assert_eq!(clock.unhandled(), 1);
    }

    #[test]
    fn late_registration_sees_unfired_faults() {
        let mut sim = Simulator::new();
        let clock = FaultClock::new();
        clock.arm(
            &mut sim,
            &FaultPlan::power_cut_at(SimDuration::from_millis(1)),
        );
        // Registered after arming, before the instant arrives.
        let sink = Rc::new(Recorder {
            claim: true,
            ..Recorder::default()
        });
        clock.register(Rc::clone(&sink) as Rc<dyn FaultSink>);
        sim.run();
        assert_eq!(sink.seen.borrow().len(), 1);
        assert_eq!(clock.unhandled(), 0);
    }
}
