//! Virtual time for the simulation kernel.
//!
//! All latencies in the Trail reproduction are *virtual*: they are computed
//! analytically by the mechanical disk model and advanced by the event
//! executor. [`SimTime`] is an absolute instant (nanoseconds since the start
//! of the simulation) and [`SimDuration`] a span between two instants. Both
//! are thin newtypes over `u64` nanoseconds so that a time is never confused
//! with a span ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in virtual time, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use trail_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(2);
/// assert_eq!(t.as_nanos(), 2_000_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use trail_sim::SimDuration;
///
/// let d = SimDuration::from_micros(1500);
/// assert_eq!(d.as_millis_f64(), 1.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the simulation origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Returns the number of nanoseconds since the simulation origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant expressed in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Returns this instant expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// Returns the span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is later than self"),
        )
    }

    /// Returns the span from `earlier` to `self`, or [`SimDuration::ZERO`]
    /// if `earlier` is later than `self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional milliseconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    pub fn from_millis_f64(millis: f64) -> Self {
        assert!(
            millis.is_finite() && millis >= 0.0,
            "duration must be finite and non-negative, got {millis}"
        );
        SimDuration((millis * 1.0e6).round() as u64)
    }

    /// Creates a span from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1.0e9).round() as u64)
    }

    /// Returns the span in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span in (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1.0e3
    }

    /// Returns the span in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Returns the span in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// Returns `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative floating-point factor,
    /// rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Returns the span minus `other`, or zero if `other` is larger.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("virtual time overflow: instant + duration"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("virtual time underflow: instant - duration"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("virtual duration overflow"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("virtual duration underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                .expect("virtual duration overflow in multiplication"),
        )
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.6} ms)", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} ms", self.as_millis_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({:.6} ms)", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_nanos(10) + SimDuration::from_nanos(5);
        assert_eq!(t.as_nanos(), 15);
    }

    #[test]
    fn duration_since_ordering() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(250);
        assert_eq!(b.duration_since(a).as_nanos(), 150);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "earlier instant is later")]
    fn duration_since_panics_when_reversed() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(250);
        let _ = a.duration_since(b);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_nanos(), 1_500_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_nanos(), 250_000_000);
    }

    #[test]
    fn fractional_views() {
        let d = SimDuration::from_nanos(2_500_000);
        assert_eq!(d.as_millis_f64(), 2.5);
        assert_eq!(d.as_micros_f64(), 2_500.0);
        let t = SimTime::from_nanos(1_500_000_000);
        assert_eq!(t.as_secs_f64(), 1.5);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(4);
        assert_eq!((d * 3).as_millis_f64(), 12.0);
        assert_eq!((d / 2).as_millis_f64(), 2.0);
        assert_eq!(d / SimDuration::from_millis(2), 2.0);
        assert_eq!(d.mul_f64(0.5).as_millis_f64(), 2.0);
        assert_eq!(
            d.saturating_sub(SimDuration::from_millis(10)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total.as_millis_f64(), 10.0);
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let ta = SimTime::from_nanos(1);
        let tb = SimTime::from_nanos(2);
        assert_eq!(ta.max(tb), tb);
        assert_eq!(ta.min(tb), ta);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{:?}", SimTime::ZERO).is_empty());
        assert!(!format!("{}", SimDuration::ZERO).is_empty());
    }
}
