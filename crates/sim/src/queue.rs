//! Slab-backed indexed binary min-heap — the executor's event queue.
//!
//! The heap orders slot indices by `(time, seq)`; the slab owns the event
//! payloads and hands out generation-tagged [`EventId`]s. Three structural
//! invariants hold between calls:
//!
//! - `heap` is a binary min-heap over `(time, seq)` keys: every node's key
//!   is ≤ its children's. `seq` values are unique, so the order is total
//!   and ties on `time` pop in scheduling order (FIFO determinism).
//! - `slots[heap[p]].heap_pos == p` for every heap position `p` — the
//!   back-pointers that make O(log n) removal by id possible.
//! - A slot is either *occupied* (payload present, listed in `heap` once)
//!   or *vacant* (payload `None`, listed in `free` once); its generation
//!   is bumped on every vacate, so a stale [`EventId`] — already fired or
//!   already cancelled, even if the slot was reused — never resolves.
//!
//! Compared to `BinaryHeap` + a cancelled-id side table, `cancel` here is
//! a true O(log n) removal: no dead entries are left behind, `len()` is
//! exact, and a cancel-heavy workload stays loglinear instead of turning
//! quadratic in heap scans.

use crate::event::EventId;
use crate::payload::EventPayload;
use crate::time::SimTime;

struct Slot {
    /// Bumped every time the slot is vacated; half of the [`EventId`].
    generation: u32,
    /// This slot's position in `heap` (meaningless while vacant).
    heap_pos: u32,
    /// Heap key: absolute fire time, then global scheduling sequence.
    key: (SimTime, u64),
    /// The event closure; `None` while the slot is vacant.
    payload: Option<EventPayload>,
}

/// The indexed priority queue. See the module docs for invariants.
pub(crate) struct EventQueue {
    slots: Vec<Slot>,
    free: Vec<u32>,
    heap: Vec<u32>,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            heap: Vec::new(),
        }
    }

    /// Number of pending (scheduled, not yet fired or cancelled) events.
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    /// Fire time of the earliest pending event.
    pub(crate) fn peek_min_time(&self) -> Option<SimTime> {
        self.heap.first().map(|&idx| self.slots[idx as usize].key.0)
    }

    /// Inserts an event. `seq` must be unique across the queue's lifetime
    /// (the simulator's monotonic scheduling counter).
    pub(crate) fn push(&mut self, time: SimTime, seq: u64, payload: EventPayload) -> EventId {
        let idx = match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                slot.key = (time, seq);
                slot.payload = Some(payload);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("event slab overflow");
                self.slots.push(Slot {
                    generation: 0,
                    heap_pos: 0,
                    key: (time, seq),
                    payload: Some(payload),
                });
                idx
            }
        };
        let pos = self.heap.len();
        self.heap.push(idx);
        self.slots[idx as usize].heap_pos = pos as u32;
        self.sift_up(pos);
        EventId::pack(self.slots[idx as usize].generation, idx)
    }

    /// Removes and returns the earliest event.
    pub(crate) fn pop_min(&mut self) -> Option<(SimTime, EventPayload)> {
        let idx = *self.heap.first()?;
        self.remove_heap_pos(0);
        let (time, payload) = self.vacate(idx);
        Some((time, payload))
    }

    /// True O(log n) removal by id. Returns the payload so the caller
    /// controls when its captures are dropped; `None` if the id is stale
    /// (already fired or cancelled — even if the slot was since reused).
    pub(crate) fn cancel(&mut self, id: EventId) -> Option<EventPayload> {
        let (generation, idx) = id.unpack();
        let slot = self.slots.get(idx as usize)?;
        if slot.generation != generation || slot.payload.is_none() {
            return None;
        }
        self.remove_heap_pos(slot.heap_pos as usize);
        let (_, payload) = self.vacate(idx);
        Some(payload)
    }

    /// Takes `idx`'s payload, bumps its generation, and adds it to the
    /// free list. The caller must already have unlinked it from `heap`.
    fn vacate(&mut self, idx: u32) -> (SimTime, EventPayload) {
        let slot = &mut self.slots[idx as usize];
        let payload = slot.payload.take().expect("vacating an empty slot");
        slot.generation = slot.generation.wrapping_add(1);
        let time = slot.key.0;
        self.free.push(idx);
        (time, payload)
    }

    /// Unlinks the heap entry at `pos` by swapping in the last entry and
    /// restoring heap order around it.
    fn remove_heap_pos(&mut self, pos: usize) {
        let last = self.heap.len() - 1;
        self.heap.swap(pos, last);
        self.heap.pop();
        if pos < self.heap.len() {
            self.slots[self.heap[pos] as usize].heap_pos = pos as u32;
            // The moved-in entry may violate order in either direction;
            // exactly one of these does work.
            self.sift_down(pos);
            self.sift_up(pos);
        }
    }

    fn key_at(&self, pos: usize) -> (SimTime, u64) {
        self.slots[self.heap[pos] as usize].key
    }

    fn swap_heap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.slots[self.heap[a] as usize].heap_pos = a as u32;
        self.slots[self.heap[b] as usize].heap_pos = b as u32;
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.key_at(pos) >= self.key_at(parent) {
                break;
            }
            self.swap_heap(pos, parent);
            pos = parent;
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let left = 2 * pos + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let smallest_child =
                if right < self.heap.len() && self.key_at(right) < self.key_at(left) {
                    right
                } else {
                    left
                };
            if self.key_at(pos) <= self.key_at(smallest_child) {
                break;
            }
            self.swap_heap(pos, smallest_child);
            pos = smallest_child;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn noop() -> EventPayload {
        EventPayload::new(|_| {})
    }

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 0, noop());
        q.push(t(10), 1, noop());
        q.push(t(10), 2, noop());
        q.push(t(20), 3, noop());
        let order: Vec<SimTime> = std::iter::from_fn(|| q.pop_min().map(|(tm, _)| tm)).collect();
        assert_eq!(order, vec![t(10), t(10), t(20), t(30)]);
    }

    #[test]
    fn cancel_removes_and_len_is_exact() {
        let mut q = EventQueue::new();
        let a = q.push(t(10), 0, noop());
        let b = q.push(t(20), 1, noop());
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a).is_some());
        assert_eq!(q.len(), 1, "no dead entry may linger");
        assert!(q.cancel(a).is_none(), "double cancel is stale");
        assert_eq!(q.peek_min_time(), Some(t(20)));
        assert!(q.cancel(b).is_some());
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop_min().map(|(tm, _)| tm), None);
    }

    #[test]
    fn reused_slot_does_not_resolve_stale_id() {
        let mut q = EventQueue::new();
        let a = q.push(t(10), 0, noop());
        q.pop_min().expect("one event");
        // The next push reuses slot 0; the stale id must still miss.
        let b = q.push(t(20), 1, noop());
        assert!(q.cancel(a).is_none());
        assert!(q.cancel(b).is_some());
    }

    #[test]
    fn interior_cancel_keeps_heap_order() {
        let mut q = EventQueue::new();
        let ids: Vec<EventId> = (0..64).map(|i| q.push(t(1000 - i), i, noop())).collect();
        // Cancel every third event, then drain and check monotonic order.
        for id in ids.iter().step_by(3) {
            assert!(q.cancel(*id).is_some());
        }
        let mut last = None;
        let mut popped = 0;
        while let Some((tm, _)) = q.pop_min() {
            if let Some(prev) = last {
                assert!(tm >= prev, "heap order violated");
            }
            last = Some(tm);
            popped += 1;
        }
        assert_eq!(popped, 64 - 22);
    }
}
