//! The discrete-event executor.
//!
//! [`Simulator`] owns a virtual clock and a priority queue of scheduled
//! events. Components of the storage stack (disks, drivers, workload
//! generators) are shared via `Rc<RefCell<_>>`; events are boxed closures
//! that receive `&mut Simulator` so they can read the clock and schedule
//! further events. Execution is single-threaded and fully deterministic:
//! events at equal timestamps run in scheduling order.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

use crate::completion::{Completion, CompletionSink, Delivered};
use crate::time::{SimDuration, SimTime};

/// A boxed event callback, run exactly once when its time arrives.
pub type EventFn = Box<dyn FnOnce(&mut Simulator)>;

/// Identifies a scheduled event so that it can be cancelled.
///
/// # Examples
///
/// ```
/// use trail_sim::{SimDuration, Simulator};
///
/// let mut sim = Simulator::new();
/// let id = sim.schedule_in(SimDuration::from_millis(1), Box::new(|_| {}));
/// assert!(sim.cancel(id));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

struct Scheduled {
    time: SimTime,
    seq: u64,
    f: EventFn,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. Ties on time break by scheduling order for determinism.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic single-threaded discrete-event simulator.
///
/// # Examples
///
/// ```
/// use std::cell::Cell;
/// use std::rc::Rc;
/// use trail_sim::{SimDuration, Simulator};
///
/// let mut sim = Simulator::new();
/// let fired = Rc::new(Cell::new(false));
/// let flag = Rc::clone(&fired);
/// sim.schedule_in(
///     SimDuration::from_micros(250),
///     Box::new(move |sim| {
///         assert_eq!(sim.now().as_nanos(), 250_000);
///         flag.set(true);
///     }),
/// );
/// sim.run();
/// assert!(fired.get());
/// ```
pub struct Simulator {
    now: SimTime,
    queue: BinaryHeap<Scheduled>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    executed: u64,
    sink: CompletionSink,
}

impl Simulator {
    /// Creates a simulator with an empty event queue at time zero.
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            executed: 0,
            sink: CompletionSink::new(),
        }
    }

    /// Mints a [`Completion`] token from the simulator's master sink.
    ///
    /// The `handler` fires exactly once — with `Ok(value)` after
    /// [`Completion::complete`], or `Err(Cancelled)` after
    /// [`Completion::cancel`] or a drop while armed.
    pub fn completion<T: 'static>(
        &self,
        handler: impl FnOnce(&mut Simulator, Delivered<T>) + 'static,
    ) -> Completion<T> {
        self.sink.completion(handler)
    }

    /// The simulator's master [`CompletionSink`] (cheap clone; components
    /// may hold one to mint internal completions without a `&Simulator`).
    pub fn completions(&self) -> CompletionSink {
        self.sink.clone()
    }

    /// Converts completions dropped-while-armed into scheduled
    /// `Err(Cancelled)` deliveries. Returns `true` if any were parked.
    fn flush_orphans(&mut self) -> bool {
        let orphans = self.sink.take_orphans();
        let any = !orphans.is_empty();
        for f in orphans {
            self.schedule_now(f);
        }
        any
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Returns the number of events currently scheduled (including any that
    /// have been cancelled but not yet popped).
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `f` to run at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at(&mut self, at: SimTime, f: EventFn) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled { time: at, seq, f });
        EventId(seq)
    }

    /// Schedules `f` to run `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, f: EventFn) -> EventId {
        let at = self.now + delay;
        self.schedule_at(at, f)
    }

    /// Schedules `f` to run at the current time, after already-queued events
    /// with the same timestamp.
    pub fn schedule_now(&mut self, f: EventFn) -> EventId {
        self.schedule_at(self.now, f)
    }

    /// Cancels a scheduled event.
    ///
    /// Returns `true` if the event had not yet run (or been cancelled).
    /// Cancelling an already-executed event returns `false` and has no
    /// other effect.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        // We cannot cheaply tell "already run" from "still queued", so track
        // both via the cancellation set: entries are removed when popped.
        if self.queue.iter().any(|s| s.seq == id.0) {
            self.cancelled.insert(id.0)
        } else {
            false
        }
    }

    /// Executes the next pending event, advancing the clock to its time.
    ///
    /// Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.flush_orphans();
        while let Some(ev) = self.queue.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.time >= self.now, "event queue went backwards");
            self.now = ev.time;
            self.executed += 1;
            (ev.f)(self);
            return true;
        }
        false
    }

    /// Runs until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs events with timestamps `<= until`, then advances the clock to
    /// `until` (even if the queue drained earlier or later events remain).
    pub fn run_until(&mut self, until: SimTime) {
        loop {
            self.flush_orphans();
            let next_time = loop {
                match self.queue.peek() {
                    Some(ev) if self.cancelled.contains(&ev.seq) => {
                        let ev = self.queue.pop().expect("peeked event vanished");
                        self.cancelled.remove(&ev.seq);
                    }
                    Some(ev) => break Some(ev.time),
                    None => break None,
                }
            };
            match next_time {
                Some(t) if t <= until => {
                    self.step();
                }
                _ => break,
            }
        }
        if until > self.now {
            self.now = until;
        }
    }

    /// Runs events for a span of `dur` from the current time.
    pub fn run_for(&mut self, dur: SimDuration) {
        let until = self.now + dur;
        self.run_until(until);
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Simulator::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (delay, tag) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let order = Rc::clone(&order);
            sim.schedule_in(
                SimDuration::from_nanos(delay),
                Box::new(move |_| order.borrow_mut().push(tag)),
            );
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut sim = Simulator::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..5 {
            let order = Rc::clone(&order);
            sim.schedule_at(
                SimTime::from_nanos(100),
                Box::new(move |_| order.borrow_mut().push(tag)),
            );
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut sim = Simulator::new();
        sim.schedule_in(
            SimDuration::from_millis(5),
            Box::new(|sim| assert_eq!(sim.now(), SimTime::from_nanos(5_000_000))),
        );
        sim.run();
        assert_eq!(sim.now(), SimTime::from_nanos(5_000_000));
        assert_eq!(sim.events_executed(), 1);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Simulator::new();
        let hits = Rc::new(RefCell::new(0u32));
        fn chain(sim: &mut Simulator, hits: Rc<RefCell<u32>>, remaining: u32) {
            if remaining == 0 {
                return;
            }
            *hits.borrow_mut() += 1;
            sim.schedule_in(
                SimDuration::from_nanos(1),
                Box::new(move |sim| chain(sim, hits, remaining - 1)),
            );
        }
        let h = Rc::clone(&hits);
        sim.schedule_now(Box::new(move |sim| chain(sim, h, 10)));
        sim.run();
        assert_eq!(*hits.borrow(), 10);
        // The 10th increment (at t=9) schedules a final no-op event at t=10.
        assert_eq!(sim.now(), SimTime::from_nanos(10));
    }

    #[test]
    fn cancelled_events_do_not_run() {
        let mut sim = Simulator::new();
        let fired = Rc::new(RefCell::new(false));
        let f = Rc::clone(&fired);
        let id = sim.schedule_in(
            SimDuration::from_millis(1),
            Box::new(move |_| *f.borrow_mut() = true),
        );
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel must report false");
        sim.run();
        assert!(!*fired.borrow());
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn cancel_of_executed_event_is_false() {
        let mut sim = Simulator::new();
        let id = sim.schedule_now(Box::new(|_| {}));
        sim.run();
        assert!(!sim.cancel(id));
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let mut sim = Simulator::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for ms in [1u64, 2, 3, 4] {
            let log = Rc::clone(&log);
            sim.schedule_in(
                SimDuration::from_millis(ms),
                Box::new(move |_| log.borrow_mut().push(ms)),
            );
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(2));
        assert_eq!(*log.borrow(), vec![1, 2]);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(2));
        assert_eq!(sim.events_pending(), 2);
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn run_until_advances_clock_even_with_no_events() {
        let mut sim = Simulator::new();
        sim.run_until(SimTime::from_nanos(777));
        assert_eq!(sim.now(), SimTime::from_nanos(777));
    }

    #[test]
    fn run_for_is_relative() {
        let mut sim = Simulator::new();
        sim.run_for(SimDuration::from_millis(1));
        sim.run_for(SimDuration::from_millis(1));
        assert_eq!(sim.now().as_millis_f64(), 2.0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_millis(1), Box::new(|_| {}));
        sim.run();
        sim.schedule_at(SimTime::ZERO, Box::new(|_| {}));
    }
}
