//! The discrete-event executor.
//!
//! [`Simulator`] owns a virtual clock and an indexed priority queue of
//! scheduled events. Components of the storage stack (disks, drivers,
//! workload generators) are shared via `Rc<RefCell<_>>`; events are
//! closures that receive `&mut Simulator` so they can read the clock and
//! schedule further events. Execution is single-threaded and fully
//! deterministic: events at equal timestamps run in scheduling order.
//!
//! The hot path is allocation-light: closures at or below
//! [`INLINE_EVENT_BYTES`](crate::INLINE_EVENT_BYTES) bytes live inline in
//! the queue's slab (no box per event), and slab slots are recycled so a
//! steady-state schedule→fire loop touches no allocator at all. See
//! DESIGN.md §"Executor performance".

use std::cell::Cell;
use std::fmt;

use crate::completion::{Completion, CompletionSink, Delivered};
use crate::payload::EventPayload;
use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

thread_local! {
    static THREAD_EXECUTED: Cell<u64> = const { Cell::new(0) };
}

/// Total events executed by every [`Simulator`] on the current thread.
///
/// The counter is monotonic and never resets; measure a workload by taking
/// the difference around it. Because a `Simulator` is single-threaded, the
/// delta observed by the thread that ran a simulation is exact, which lets
/// harnesses attribute event counts to scenarios without plumbing the
/// simulator out of every helper.
pub fn thread_events_executed() -> u64 {
    THREAD_EXECUTED.with(Cell::get)
}

/// A boxed event callback.
///
/// Scheduling no longer requires boxing — [`Simulator::schedule_at`] takes
/// any `FnOnce(&mut Simulator)` and stores small closures inline — but the
/// alias remains for code that must name a concrete event type (e.g. to
/// store heterogeneous callbacks in a collection).
pub type EventFn = Box<dyn FnOnce(&mut Simulator)>;

/// Identifies a scheduled event so that it can be cancelled.
///
/// Ids are generation-tagged: once the event fires or is cancelled, the id
/// goes stale and [`Simulator::cancel`] returns `false` for it forever,
/// even after its internal storage is recycled for a new event.
///
/// # Examples
///
/// ```
/// use trail_sim::{SimDuration, Simulator};
///
/// let mut sim = Simulator::new();
/// let id = sim.schedule_in(SimDuration::from_millis(1), |_| {});
/// assert!(sim.cancel(id));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    /// Builds an id from a slab slot index and its generation.
    pub(crate) fn pack(generation: u32, slot: u32) -> EventId {
        EventId(u64::from(generation) << 32 | u64::from(slot))
    }

    /// Splits the id back into `(generation, slot)`.
    pub(crate) fn unpack(self) -> (u32, u32) {
        ((self.0 >> 32) as u32, self.0 as u32)
    }
}

/// A deterministic single-threaded discrete-event simulator.
///
/// # Examples
///
/// ```
/// use std::cell::Cell;
/// use std::rc::Rc;
/// use trail_sim::{SimDuration, Simulator};
///
/// let mut sim = Simulator::new();
/// let fired = Rc::new(Cell::new(false));
/// let flag = Rc::clone(&fired);
/// sim.schedule_in(SimDuration::from_micros(250), move |sim| {
///     assert_eq!(sim.now().as_nanos(), 250_000);
///     flag.set(true);
/// });
/// sim.run();
/// assert!(fired.get());
/// ```
pub struct Simulator {
    now: SimTime,
    queue: EventQueue,
    next_seq: u64,
    executed: u64,
    sink: CompletionSink,
}

impl Simulator {
    /// Creates a simulator with an empty event queue at time zero.
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            next_seq: 0,
            executed: 0,
            sink: CompletionSink::new(),
        }
    }

    /// Mints a [`Completion`] token from the simulator's master sink.
    ///
    /// The `handler` fires exactly once — with `Ok(value)` after
    /// [`Completion::complete`], or `Err(Cancelled)` after
    /// [`Completion::cancel`] or a drop while armed.
    pub fn completion<T: 'static>(
        &self,
        handler: impl FnOnce(&mut Simulator, Delivered<T>) + 'static,
    ) -> Completion<T> {
        self.sink.completion(handler)
    }

    /// The simulator's master [`CompletionSink`] (cheap clone; components
    /// may hold one to mint internal completions without a `&Simulator`).
    pub fn completions(&self) -> CompletionSink {
        self.sink.clone()
    }

    /// Converts completions dropped-while-armed into scheduled
    /// `Err(Cancelled)` deliveries. Returns `true` if any were parked.
    fn flush_orphans(&mut self) -> bool {
        let orphans = self.sink.take_orphans();
        let any = !orphans.is_empty();
        for f in orphans {
            self.schedule_now(f);
        }
        any
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Returns the number of events currently scheduled. Exact: cancelled
    /// events are removed from the queue immediately and never counted.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `f` to run at absolute time `at`.
    ///
    /// Small closures (≤ [`INLINE_EVENT_BYTES`](crate::INLINE_EVENT_BYTES)
    /// bytes) are stored inline without allocating; boxing at the call
    /// site is never required.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut Simulator) + 'static,
    ) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(at, seq, EventPayload::new(f))
    }

    /// Schedules `f` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut Simulator) + 'static,
    ) -> EventId {
        let at = self.now + delay;
        self.schedule_at(at, f)
    }

    /// Schedules `f` to run at the current time, after already-queued events
    /// with the same timestamp.
    pub fn schedule_now(&mut self, f: impl FnOnce(&mut Simulator) + 'static) -> EventId {
        self.schedule_at(self.now, f)
    }

    /// Cancels a scheduled event, removing it from the queue in O(log n).
    ///
    /// Returns `true` if the event had not yet run (or been cancelled).
    /// Cancelling an already-executed event returns `false` and has no
    /// other effect. The cancelled closure (and anything it captured) is
    /// dropped before this returns.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id).is_some()
    }

    /// Executes the next pending event, advancing the clock to its time.
    ///
    /// Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.flush_orphans();
        match self.queue.pop_min() {
            Some((time, payload)) => {
                debug_assert!(time >= self.now, "event queue went backwards");
                self.now = time;
                self.executed += 1;
                THREAD_EXECUTED.with(|c| c.set(c.get() + 1));
                payload.invoke(self);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs events with timestamps `<= until`, then advances the clock to
    /// `until` (even if the queue drained earlier or later events remain).
    pub fn run_until(&mut self, until: SimTime) {
        loop {
            self.flush_orphans();
            match self.queue.peek_min_time() {
                Some(t) if t <= until => {
                    self.step();
                }
                _ => break,
            }
        }
        if until > self.now {
            self.now = until;
        }
    }

    /// Runs events for a span of `dur` from the current time.
    pub fn run_for(&mut self, dur: SimDuration) {
        let until = self.now + dur;
        self.run_until(until);
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Simulator::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (delay, tag) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let order = Rc::clone(&order);
            sim.schedule_in(SimDuration::from_nanos(delay), move |_| {
                order.borrow_mut().push(tag)
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut sim = Simulator::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..5 {
            let order = Rc::clone(&order);
            sim.schedule_at(SimTime::from_nanos(100), move |_| {
                order.borrow_mut().push(tag)
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn boxed_eventfn_call_sites_still_compile() {
        // Pre-existing call sites pass `Box::new(...)`; `Box<dyn FnOnce>`
        // is itself `FnOnce`, so the generic API accepts it unchanged.
        let mut sim = Simulator::new();
        let hits = Rc::new(RefCell::new(0u32));
        let h = Rc::clone(&hits);
        sim.schedule_now(Box::new(move |_sim: &mut Simulator| {
            *h.borrow_mut() += 1;
        }) as EventFn);
        sim.run();
        assert_eq!(*hits.borrow(), 1);
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_millis(5), |sim| {
            assert_eq!(sim.now(), SimTime::from_nanos(5_000_000))
        });
        sim.run();
        assert_eq!(sim.now(), SimTime::from_nanos(5_000_000));
        assert_eq!(sim.events_executed(), 1);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Simulator::new();
        let hits = Rc::new(RefCell::new(0u32));
        fn chain(sim: &mut Simulator, hits: Rc<RefCell<u32>>, remaining: u32) {
            if remaining == 0 {
                return;
            }
            *hits.borrow_mut() += 1;
            sim.schedule_in(SimDuration::from_nanos(1), move |sim| {
                chain(sim, hits, remaining - 1)
            });
        }
        let h = Rc::clone(&hits);
        sim.schedule_now(move |sim| chain(sim, h, 10));
        sim.run();
        assert_eq!(*hits.borrow(), 10);
        // The 10th increment (at t=9) schedules a final no-op event at t=10.
        assert_eq!(sim.now(), SimTime::from_nanos(10));
    }

    #[test]
    fn cancelled_events_do_not_run() {
        let mut sim = Simulator::new();
        let fired = Rc::new(RefCell::new(false));
        let f = Rc::clone(&fired);
        let id = sim.schedule_in(SimDuration::from_millis(1), move |_| *f.borrow_mut() = true);
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel must report false");
        sim.run();
        assert!(!*fired.borrow());
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn cancel_of_executed_event_is_false() {
        let mut sim = Simulator::new();
        let id = sim.schedule_now(|_| {});
        sim.run();
        assert!(!sim.cancel(id));
    }

    #[test]
    fn cancel_of_executed_event_is_false_even_after_slot_reuse() {
        // Regression: the executed event's storage slot is recycled by the
        // next schedule; the stale id must not cancel the new tenant.
        let mut sim = Simulator::new();
        let stale = sim.schedule_now(|_| {});
        sim.run();
        let fired = Rc::new(RefCell::new(false));
        let f = Rc::clone(&fired);
        let fresh = sim.schedule_in(SimDuration::from_millis(1), move |_| *f.borrow_mut() = true);
        assert!(!sim.cancel(stale), "stale id must miss the recycled slot");
        sim.run();
        assert!(*fired.borrow(), "new tenant must be unaffected");
        assert!(!sim.cancel(fresh), "fresh id is stale after firing");
    }

    #[test]
    fn events_pending_excludes_cancelled() {
        // Regression: the BinaryHeap-era queue counted cancelled-but-
        // unpopped entries; the indexed queue removes them eagerly.
        let mut sim = Simulator::new();
        let keep = sim.schedule_in(SimDuration::from_millis(1), |_| {});
        let drop_me = sim.schedule_in(SimDuration::from_millis(2), |_| {});
        assert_eq!(sim.events_pending(), 2);
        assert!(sim.cancel(drop_me));
        assert_eq!(sim.events_pending(), 1, "cancelled event still counted");
        assert!(sim.cancel(keep));
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn cancel_drops_captures_immediately() {
        // The cancelled closure's captures must be released at cancel time
        // (not parked until the event's timestamp would have arrived).
        let mut sim = Simulator::new();
        let payload = Rc::new(());
        let probe = Rc::downgrade(&payload);
        let id = sim.schedule_in(SimDuration::from_secs(3600), move |_| {
            let _keep = &payload;
        });
        assert!(probe.upgrade().is_some());
        assert!(sim.cancel(id));
        assert!(
            probe.upgrade().is_none(),
            "captures must drop at cancel time"
        );
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let mut sim = Simulator::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for ms in [1u64, 2, 3, 4] {
            let log = Rc::clone(&log);
            sim.schedule_in(SimDuration::from_millis(ms), move |_| {
                log.borrow_mut().push(ms)
            });
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(2));
        assert_eq!(*log.borrow(), vec![1, 2]);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(2));
        assert_eq!(sim.events_pending(), 2);
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn run_until_advances_clock_even_with_no_events() {
        let mut sim = Simulator::new();
        sim.run_until(SimTime::from_nanos(777));
        assert_eq!(sim.now(), SimTime::from_nanos(777));
    }

    #[test]
    fn run_for_is_relative() {
        let mut sim = Simulator::new();
        sim.run_for(SimDuration::from_millis(1));
        sim.run_for(SimDuration::from_millis(1));
        assert_eq!(sim.now().as_millis_f64(), 2.0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_millis(1), |_| {});
        sim.run();
        sim.schedule_at(SimTime::ZERO, |_| {});
    }
}
