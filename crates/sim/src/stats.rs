//! Measurement helpers: latency summaries, busy-time accounting, counters.
//!
//! Every experiment in the paper reports either a latency distribution
//! (Figures 3 and 4), a total elapsed/busy time (Tables 1 and 2), or a count
//! (Table 3). These small collectors are shared by all benches and tests.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// An online collection of duration samples with summary statistics.
///
/// Samples are retained so that exact percentiles can be computed; the
/// experiments in this repository collect at most a few hundred thousand
/// samples, which is cheap to keep.
///
/// # Examples
///
/// ```
/// use trail_sim::{LatencySummary, SimDuration};
///
/// let mut s = LatencySummary::new();
/// for ms in [1u64, 2, 3, 4] {
///     s.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(s.mean().as_millis_f64(), 2.5);
/// assert_eq!(s.max().as_millis_f64(), 4.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LatencySummary {
    samples: Vec<SimDuration>,
    sorted: bool,
}

impl LatencySummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn record(&mut self, sample: SimDuration) {
        self.samples.push(sample);
        self.sorted = false;
    }

    /// Returns the number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns the sum of all samples.
    pub fn total(&self) -> SimDuration {
        self.samples.iter().copied().sum()
    }

    /// Returns the arithmetic mean, or the **zero sentinel** if empty (use
    /// [`try_mean`](Self::try_mean) to distinguish "empty" from "all-zero
    /// samples").
    pub fn mean(&self) -> SimDuration {
        self.try_mean().unwrap_or(SimDuration::ZERO)
    }

    /// Returns the arithmetic mean, or `None` if no samples were recorded.
    pub fn try_mean(&self) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        Some(SimDuration::from_nanos(
            (self
                .samples
                .iter()
                .map(|d| d.as_nanos() as u128)
                .sum::<u128>()
                / self.samples.len() as u128) as u64,
        ))
    }

    /// Returns the smallest sample, or the **zero sentinel** if empty (use
    /// [`try_min`](Self::try_min) to distinguish).
    pub fn min(&self) -> SimDuration {
        self.try_min().unwrap_or(SimDuration::ZERO)
    }

    /// Returns the smallest sample, or `None` if no samples were recorded.
    pub fn try_min(&self) -> Option<SimDuration> {
        self.samples.iter().copied().min()
    }

    /// Returns the largest sample, or the **zero sentinel** if empty (use
    /// [`try_max`](Self::try_max) to distinguish).
    pub fn max(&self) -> SimDuration {
        self.try_max().unwrap_or(SimDuration::ZERO)
    }

    /// Returns the largest sample, or `None` if no samples were recorded.
    pub fn try_max(&self) -> Option<SimDuration> {
        self.samples.iter().copied().max()
    }

    /// Returns the `p`-th percentile (0.0ᅳ100.0) by nearest-rank, or the
    /// **zero sentinel** if empty (use
    /// [`try_percentile`](Self::try_percentile) to distinguish). On a
    /// single-sample set every percentile is that sample.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=100.0`.
    pub fn percentile(&mut self, p: f64) -> SimDuration {
        self.try_percentile(p).unwrap_or(SimDuration::ZERO)
    }

    /// Returns the `p`-th percentile (0.0ᅳ100.0) by nearest-rank, or `None`
    /// if no samples were recorded.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=100.0`.
    pub fn try_percentile(&mut self, p: f64) -> Option<SimDuration> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        Some(self.samples[rank.saturating_sub(1)])
    }

    /// Returns the sample standard deviation in milliseconds, or zero for
    /// fewer than two samples.
    pub fn stddev_millis(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean().as_millis_f64();
        let var = self
            .samples
            .iter()
            .map(|d| {
                let x = d.as_millis_f64() - mean;
                x * x
            })
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }

    /// Iterates over the recorded samples in insertion order (or sorted
    /// order if a percentile has been computed).
    pub fn iter(&self) -> std::slice::Iter<'_, SimDuration> {
        self.samples.iter()
    }

    /// Merges another summary's samples into this one.
    pub fn merge(&mut self, other: &LatencySummary) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

impl Extend<SimDuration> for LatencySummary {
    fn extend<T: IntoIterator<Item = SimDuration>>(&mut self, iter: T) {
        self.samples.extend(iter);
        self.sorted = false;
    }
}

impl FromIterator<SimDuration> for LatencySummary {
    fn from_iter<T: IntoIterator<Item = SimDuration>>(iter: T) -> Self {
        let mut s = LatencySummary::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3}ms min={:.3}ms max={:.3}ms",
            self.count(),
            self.mean().as_millis_f64(),
            self.min().as_millis_f64(),
            self.max().as_millis_f64(),
        )
    }
}

/// Accumulates the busy time of a resource (e.g. "disk I/O time for logging",
/// Table 2 row 2).
///
/// # Examples
///
/// ```
/// use trail_sim::{BusyMeter, SimDuration, SimTime};
///
/// let mut m = BusyMeter::new();
/// m.start(SimTime::from_nanos(100));
/// m.stop(SimTime::from_nanos(300));
/// assert_eq!(m.busy_time().as_nanos(), 200);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BusyMeter {
    busy: SimDuration,
    since: Option<SimTime>,
    intervals: u64,
}

impl BusyMeter {
    /// Creates an idle meter with zero accumulated busy time.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the resource busy from `now`.
    ///
    /// # Panics
    ///
    /// Panics if the meter is already running.
    pub fn start(&mut self, now: SimTime) {
        assert!(self.since.is_none(), "BusyMeter::start while already busy");
        self.since = Some(now);
    }

    /// Marks the resource idle at `now`, accumulating the elapsed interval.
    ///
    /// # Panics
    ///
    /// Panics if the meter is not running or `now` precedes the start.
    pub fn stop(&mut self, now: SimTime) {
        let since = self.since.take().expect("BusyMeter::stop while idle");
        self.busy += now.duration_since(since);
        self.intervals += 1;
    }

    /// Returns `true` if the resource is currently marked busy.
    pub fn is_busy(&self) -> bool {
        self.since.is_some()
    }

    /// Returns the total accumulated busy time (excluding a still-open
    /// interval).
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Returns the number of completed busy intervals.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Returns busy time as a fraction of `elapsed` (0.0ᅳ1.0 for a single
    /// resource).
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.busy / elapsed
        }
    }
}

/// A monotonically increasing event counter. Saturates at `u64::MAX`
/// instead of wrapping, so a runaway count can never masquerade as a
/// small one.
///
/// # Examples
///
/// ```
/// use trail_sim::Counter;
///
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one (saturating).
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n` (saturating).
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Returns the current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_stats() {
        let mut s = LatencySummary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), SimDuration::ZERO);
        for ms in [5u64, 1, 3] {
            s.record(SimDuration::from_millis(ms));
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean().as_millis_f64(), 3.0);
        assert_eq!(s.min().as_millis_f64(), 1.0);
        assert_eq!(s.max().as_millis_f64(), 5.0);
        assert_eq!(s.total().as_millis_f64(), 9.0);
    }

    #[test]
    fn summary_percentiles() {
        let mut s: LatencySummary = (1..=100).map(SimDuration::from_millis).collect();
        assert_eq!(s.percentile(50.0).as_millis_f64(), 50.0);
        assert_eq!(s.percentile(99.0).as_millis_f64(), 99.0);
        assert_eq!(s.percentile(100.0).as_millis_f64(), 100.0);
        assert_eq!(s.percentile(0.0).as_millis_f64(), 1.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        let mut s = LatencySummary::new();
        s.record(SimDuration::from_millis(1));
        let _ = s.percentile(101.0);
    }

    #[test]
    fn summary_stddev() {
        let mut s = LatencySummary::new();
        s.record(SimDuration::from_millis(2));
        assert_eq!(s.stddev_millis(), 0.0);
        s.record(SimDuration::from_millis(4));
        assert!((s.stddev_millis() - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn summary_merge() {
        let mut a: LatencySummary = [1u64, 2]
            .iter()
            .map(|&m| SimDuration::from_millis(m))
            .collect();
        let b: LatencySummary = [3u64, 4]
            .iter()
            .map(|&m| SimDuration::from_millis(m))
            .collect();
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.mean().as_millis_f64(), 2.5);
    }

    #[test]
    fn busy_meter_accumulates() {
        let mut m = BusyMeter::new();
        m.start(SimTime::from_nanos(0));
        m.stop(SimTime::from_nanos(100));
        m.start(SimTime::from_nanos(200));
        m.stop(SimTime::from_nanos(250));
        assert_eq!(m.busy_time().as_nanos(), 150);
        assert_eq!(m.intervals(), 2);
        assert!(!m.is_busy());
        assert_eq!(m.utilization(SimDuration::from_nanos(300)), 0.5);
    }

    #[test]
    #[should_panic(expected = "already busy")]
    fn busy_meter_double_start_panics() {
        let mut m = BusyMeter::new();
        m.start(SimTime::ZERO);
        m.start(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "while idle")]
    fn busy_meter_stop_idle_panics() {
        let mut m = BusyMeter::new();
        m.stop(SimTime::ZERO);
    }

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(10);
        assert_eq!(c.get(), 11);
        assert_eq!(c.to_string(), "11");
    }

    #[test]
    fn empty_summary_is_fully_defined() {
        let mut s = LatencySummary::new();
        assert_eq!(s.mean(), SimDuration::ZERO);
        assert_eq!(s.min(), SimDuration::ZERO);
        assert_eq!(s.max(), SimDuration::ZERO);
        assert_eq!(s.total(), SimDuration::ZERO);
        assert_eq!(s.stddev_millis(), 0.0);
        for p in [0.0, 50.0, 99.9, 100.0] {
            assert_eq!(s.percentile(p), SimDuration::ZERO);
            assert_eq!(s.try_percentile(p), None);
        }
        assert_eq!(s.try_mean(), None);
        assert_eq!(s.try_min(), None);
        assert_eq!(s.try_max(), None);
    }

    #[test]
    fn single_sample_summary_is_fully_defined() {
        let mut s = LatencySummary::new();
        let only = SimDuration::from_millis(7);
        s.record(only);
        assert_eq!(s.mean(), only);
        assert_eq!(s.min(), only);
        assert_eq!(s.max(), only);
        assert_eq!(s.stddev_millis(), 0.0);
        for p in [0.0, 50.0, 99.9, 100.0] {
            assert_eq!(s.percentile(p), only, "p{p} of a single sample");
            assert_eq!(s.try_percentile(p), Some(only));
        }
        assert_eq!(s.try_mean(), Some(only));
        assert_eq!(s.try_min(), Some(only));
        assert_eq!(s.try_max(), Some(only));
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let mut c = Counter::new();
        c.add(u64::MAX - 1);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX, "incr saturates");
        c.add(1_000);
        assert_eq!(c.get(), u64::MAX, "add saturates");
    }
}
