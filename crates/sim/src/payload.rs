//! Event payload storage with a small-closure fast path.
//!
//! The executor fires millions of short-lived closures; boxing each one
//! costs an allocator round-trip on the hottest path in the repository.
//! [`EventPayload`] stores closures up to [`INLINE_EVENT_BYTES`] bytes
//! (and alignment ≤ 16) inline in the queue's slab slot instead. Larger
//! closures fall back to one `Box`, whose thin-enough handle is then
//! itself stored inline — so the queue sees a single fixed-size payload
//! type either way.
//!
//! This is the crate's only unsafe module. The invariants are local:
//!
//! - `buf` holds a valid, initialized value of the closure type `F` that
//!   `call`/`drop_fn` were monomorphized for, from construction until
//!   exactly one of [`EventPayload::invoke`] (which moves `F` out) or
//!   `Drop` (which drops it in place) runs.
//! - `F: 'static`, so erasing its type cannot outlive captured borrows.
//! - Fit is checked before every write: `size_of::<F>()` ≤ the buffer,
//!   `align_of::<F>()` ≤ the buffer's alignment.

use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};

use crate::event::Simulator;

/// Closures up to this many bytes are stored inline in the event slab;
/// larger ones pay one heap allocation.
pub const INLINE_EVENT_BYTES: usize = 80;

#[repr(C, align(16))]
struct Buf {
    bytes: MaybeUninit<[u8; INLINE_EVENT_BYTES]>,
}

/// A type-erased `FnOnce(&mut Simulator)`, stored inline when small.
pub(crate) struct EventPayload {
    buf: Buf,
    /// Moves the closure out of `buf` and calls it. `unsafe`: requires
    /// `buf` to hold the initialized `F` this was monomorphized for, and
    /// must be called at most once.
    call: unsafe fn(*mut u8, &mut Simulator),
    /// Drops the closure in place (the cancel path). Same requirement.
    drop_fn: unsafe fn(*mut u8),
}

const fn fits<F>() -> bool {
    size_of::<F>() <= INLINE_EVENT_BYTES && align_of::<F>() <= align_of::<Buf>()
}

unsafe fn call_impl<F: FnOnce(&mut Simulator)>(p: *mut u8, sim: &mut Simulator) {
    // SAFETY: caller guarantees `p` holds an initialized `F` and never
    // touches it again; `read` moves it out so it is consumed exactly once.
    let f = unsafe { p.cast::<F>().read() };
    f(sim);
}

unsafe fn drop_impl<F>(p: *mut u8) {
    // SAFETY: caller guarantees `p` holds an initialized `F` and never
    // touches it again.
    unsafe { p.cast::<F>().drop_in_place() }
}

impl EventPayload {
    /// Wraps a closure, inline when it fits and boxed otherwise.
    pub(crate) fn new<F: FnOnce(&mut Simulator) + 'static>(f: F) -> Self {
        if fits::<F>() {
            Self::store(f)
        } else {
            // A boxed trait object is two words — always fits inline, and
            // `Box<dyn FnOnce>` is itself `FnOnce`.
            Self::store(Box::new(f) as Box<dyn FnOnce(&mut Simulator)>)
        }
    }

    fn store<F: FnOnce(&mut Simulator) + 'static>(f: F) -> Self {
        // `new` dispatches here only when `F` fits (directly, or as the
        // two-word boxed fallback). A const assert would be stronger but
        // trips monomorphization of the dead branch in `new`.
        debug_assert!(fits::<F>(), "closure must fit the inline buffer");
        let mut buf = Buf {
            bytes: MaybeUninit::uninit(),
        };
        // SAFETY: the const assertion above proves `F` fits the buffer in
        // both size and alignment.
        unsafe { buf.bytes.as_mut_ptr().cast::<F>().write(f) };
        EventPayload {
            buf,
            call: call_impl::<F>,
            drop_fn: drop_impl::<F>,
        }
    }

    /// Runs the stored closure, consuming the payload.
    pub(crate) fn invoke(self, sim: &mut Simulator) {
        let call = self.call;
        // Suppress Drop: `call` moves the closure out of the buffer, so
        // running `drop_fn` afterwards would double-drop it.
        let mut this = ManuallyDrop::new(self);
        // SAFETY: the buffer was initialized in `store` for exactly this
        // monomorphization of `call`, and `Drop` is suppressed above so
        // the closure is consumed exactly once.
        unsafe { (call)(this.buf.bytes.as_mut_ptr().cast(), sim) }
    }
}

impl Drop for EventPayload {
    fn drop(&mut self) {
        // SAFETY: reaching Drop means `invoke` never ran (it suppresses
        // Drop), so the buffer still holds the initialized closure.
        unsafe { (self.drop_fn)(self.buf.bytes.as_mut_ptr().cast()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn small_closure_invokes() {
        let hit = Rc::new(Cell::new(0u32));
        let h = Rc::clone(&hit);
        let p = EventPayload::new(move |_sim: &mut Simulator| h.set(h.get() + 1));
        let mut sim = Simulator::new();
        p.invoke(&mut sim);
        assert_eq!(hit.get(), 1);
    }

    #[test]
    fn large_closure_falls_back_to_box_and_invokes() {
        let big = [7u8; 4 * INLINE_EVENT_BYTES];
        let sum = Rc::new(Cell::new(0u64));
        let s = Rc::clone(&sum);
        let p = EventPayload::new(move |_sim: &mut Simulator| {
            s.set(big.iter().map(|&b| u64::from(b)).sum());
        });
        let mut sim = Simulator::new();
        p.invoke(&mut sim);
        assert_eq!(sum.get(), 7 * 4 * INLINE_EVENT_BYTES as u64);
    }

    #[test]
    fn dropping_without_invoke_drops_captures_once() {
        struct CountsDrops(Rc<Cell<u32>>);
        impl Drop for CountsDrops {
            fn drop(&mut self) {
                self.0.set(self.0.get() + 1);
            }
        }
        let drops = Rc::new(Cell::new(0u32));
        let guard = CountsDrops(Rc::clone(&drops));
        let p = EventPayload::new(move |_sim: &mut Simulator| {
            let _keep = &guard;
            unreachable!("never invoked");
        });
        drop(p);
        assert_eq!(drops.get(), 1);

        // And the boxed fallback path.
        let guard = CountsDrops(Rc::clone(&drops));
        let big = [0u8; 4 * INLINE_EVENT_BYTES];
        let p = EventPayload::new(move |_sim: &mut Simulator| {
            let _keep = (&guard, &big);
            unreachable!("never invoked");
        });
        drop(p);
        assert_eq!(drops.get(), 2);
    }

    #[test]
    fn already_boxed_eventfn_is_accepted() {
        let hit = Rc::new(Cell::new(false));
        let h = Rc::clone(&hit);
        let boxed: crate::EventFn = Box::new(move |_sim| h.set(true));
        let p = EventPayload::new(boxed);
        let mut sim = Simulator::new();
        p.invoke(&mut sim);
        assert!(hit.get());
    }
}
