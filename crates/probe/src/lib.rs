//! # trail-probe: disk timing calibration
//!
//! Trail's head-position prediction (paper §3.1) needs three quantities the
//! drive's mode pages do not report: the **rotation period**, the **track
//! skew** actually in effect, and **δ** — the command-processing overhead
//! expressed in sectors, "an empirically derived value to compensate for
//! the command processing overhead and other inherent overhead".
//!
//! This crate reproduces the paper's calibration methodology as *timed
//! experiments against the device interface only*: no function here peeks
//! at the simulator's internal spindle phase. The formatting tool runs
//! these probes once and stores the results in the log-disk header.
//!
//! - [`measure_rotation_period`] — back-to-back reads of one sector are
//!   spaced exactly one revolution apart;
//! - [`measure_track_skew`] — the phase difference between sector 0 of two
//!   adjacent tracks, recovered from completion timestamps;
//! - [`calibrate_delta`] — the paper's experiment: single-sector writes at
//!   increasing offsets δ from a reference point; the smallest δ that does
//!   not pay a full rotation is the calibration result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::rc::Rc;

use trail_disk::{Disk, DiskCommand, DiskError, DiskResult, SECTOR_SIZE};
use trail_sim::{Delivered, SimDuration, Simulator};

/// Runs one disk command to completion, returning its result.
///
/// This is the offline-calibration idiom: the probe owns the simulation, so
/// draining the event queue is exactly "wait for the interrupt". Do not use
/// it while other actors have events scheduled — they would run too.
///
/// # Errors
///
/// Propagates submission errors from [`Disk::submit`].
///
/// # Panics
///
/// Panics if the command never completes (e.g. power was cut).
pub fn run_blocking(
    sim: &mut Simulator,
    disk: &Disk,
    cmd: DiskCommand,
) -> Result<DiskResult, DiskError> {
    let slot: Rc<RefCell<Option<DiskResult>>> = Rc::new(RefCell::new(None));
    let out = Rc::clone(&slot);
    let done = sim.completion(move |_, res: Delivered<DiskResult>| {
        if let Ok(res) = res {
            *out.borrow_mut() = Some(res);
        }
    });
    disk.submit(sim, cmd, done)?;
    sim.run();
    let res = slot.borrow_mut().take();
    Ok(res.expect("calibration command did not complete"))
}

/// Measures the spindle rotation period by timing `samples` back-to-back
/// reads of the same sector.
///
/// After a read of sector *s* completes, the head has just passed *s*; the
/// next read of *s* must wait out the rest of the revolution, so
/// consecutive completions are spaced exactly one period apart (as long as
/// the command overhead is below one revolution).
///
/// # Errors
///
/// Propagates submission errors.
///
/// # Panics
///
/// Panics if `samples` is zero.
///
/// # Examples
///
/// ```
/// use trail_sim::Simulator;
/// use trail_disk::{profiles, Disk};
///
/// let mut sim = Simulator::new();
/// let disk = Disk::new("log", profiles::seagate_st41601n());
/// let period = trail_probe::measure_rotation_period(&mut sim, &disk, 5)?;
/// assert!((period.as_millis_f64() - 11.111).abs() < 0.01);
/// # Ok::<(), trail_disk::DiskError>(())
/// ```
pub fn measure_rotation_period(
    sim: &mut Simulator,
    disk: &Disk,
    samples: usize,
) -> Result<SimDuration, DiskError> {
    assert!(samples > 0, "need at least one sample");
    let lba = 0;
    let mut last = run_blocking(sim, disk, DiskCommand::Read { lba, count: 1 })?.completed;
    let mut periods = Vec::with_capacity(samples);
    for _ in 0..samples {
        let done = run_blocking(sim, disk, DiskCommand::Read { lba, count: 1 })?.completed;
        periods.push(done.duration_since(last));
        last = done;
    }
    periods.sort_unstable();
    Ok(periods[periods.len() / 2])
}

/// Measures the rotational skew (in sectors) between `track` and
/// `track + 1`, using only completion timestamps.
///
/// Reads sector 0 of each track back to back; the fractional-revolution
/// part of the completion spacing, corrected for the known rotation
/// period, is the angular offset between the two tracks' sector 0.
///
/// # Errors
///
/// Propagates submission errors; also returns [`DiskError::OutOfRange`] if
/// `track + 1` does not exist.
pub fn measure_track_skew(
    sim: &mut Simulator,
    disk: &Disk,
    track: u64,
    rotation_period: SimDuration,
) -> Result<u32, DiskError> {
    let geometry = disk.geometry();
    if track + 1 >= geometry.total_tracks() {
        return Err(DiskError::OutOfRange);
    }
    let spt = geometry.spt_of_track(track + 1);
    let a = run_blocking(
        sim,
        disk,
        DiskCommand::Read {
            lba: geometry.track_first_lba(track),
            count: 1,
        },
    )?;
    let b = run_blocking(
        sim,
        disk,
        DiskCommand::Read {
            lba: geometry.track_first_lba(track + 1),
            count: 1,
        },
    )?;
    let spacing = b.completed.duration_since(a.completed).as_nanos();
    let period = rotation_period.as_nanos();
    let frac = (spacing % period) as f64 / period as f64;
    Ok(((frac * f64::from(spt)).round() as u32) % spt)
}

/// One data point of the δ-calibration experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeltaSample {
    /// The sector offset tried.
    pub delta: u32,
    /// The measured single-sector write latency at that offset.
    pub latency: SimDuration,
}

/// The result of the paper's δ-calibration experiment.
#[derive(Clone, Debug)]
pub struct DeltaCalibration {
    /// Latency measured for every offset tried, in increasing δ order.
    pub samples: Vec<DeltaSample>,
    /// The smallest δ whose write did not pay a full rotation.
    pub minimal: u32,
    /// `minimal` plus a safety margin covering write-after-write delay and
    /// spindle-speed deviation — the value the Trail driver should use.
    pub recommended: u32,
}

/// Safety margin added on top of the minimal measured δ: one sector for
/// the prediction formula's floor, one for the write-after-write command
/// delay, and one so that the write-after-write case keeps a full sector
/// of slack against floating-point phase rounding.
pub const DELTA_SAFETY_MARGIN: u32 = 3;

/// Runs the paper's δ-calibration experiment on `track`.
///
/// For each candidate δ, the probe takes a reference point by reading
/// sector 0 of `track` (so the head has just passed it), immediately issues
/// a single-sector write to sector δ of the same track, and measures the
/// latency. If δ under-compensates for the command overhead, the target
/// sector has already passed and the write pays a full revolution; the
/// smallest δ that avoids this is the calibration result (paper §3.1: "the
/// smallest δ value that does not incur a full rotation delay").
///
/// The probe writes zeros into the calibration track; run it before the
/// log disk is put into service (the formatter does).
///
/// # Errors
///
/// Propagates submission errors.
///
/// # Examples
///
/// ```
/// use trail_sim::Simulator;
/// use trail_disk::{profiles, Disk};
///
/// let mut sim = Simulator::new();
/// let disk = Disk::new("log", profiles::seagate_st41601n());
/// let cal = trail_probe::calibrate_delta(&mut sim, &disk, 0)?;
/// // The ST41601N-class profile has ~1.2 ms of write overhead ≈ 10 sectors;
/// // the paper reports δ < 15 for this drive.
/// assert!(cal.minimal < 15, "delta {} too large", cal.minimal);
/// # Ok::<(), trail_disk::DiskError>(())
/// ```
pub fn calibrate_delta(
    sim: &mut Simulator,
    disk: &Disk,
    track: u64,
) -> Result<DeltaCalibration, DiskError> {
    let geometry = disk.geometry();
    let spt = geometry.spt_of_track(track);
    let base = geometry.track_first_lba(track);
    let mut samples = Vec::new();
    let mut minimal = None;
    // A write that avoids the full-rotation penalty completes well under
    // one revolution; use three quarters as the discriminator.
    let period = measure_rotation_period(sim, disk, 3)?;
    let threshold = period.mul_f64(0.75);
    for delta in 0..spt {
        // Reference point: head has just passed sector 0 of the track.
        run_blocking(
            sim,
            disk,
            DiskCommand::Read {
                lba: base,
                count: 1,
            },
        )?;
        let target = base + u64::from(delta % spt);
        let res = run_blocking(
            sim,
            disk,
            DiskCommand::Write {
                lba: target,
                data: vec![0u8; SECTOR_SIZE],
            },
        )?;
        let latency = res.completed.duration_since(res.issued);
        samples.push(DeltaSample { delta, latency });
        if minimal.is_none() && latency < threshold {
            minimal = Some(delta);
        }
    }
    let minimal = minimal.unwrap_or(0);
    Ok(DeltaCalibration {
        samples,
        minimal,
        recommended: (minimal + DELTA_SAFETY_MARGIN).min(spt.saturating_sub(1)),
    })
}

/// Estimates the fixed per-write command overhead as the best observed
/// single-sector write latency minus the transfer time, sweeping `samples`
/// target offsets on `track` from a fixed reference point (the same
/// technique as [`calibrate_delta`], so one offset is guaranteed to land
/// within a sector of the overhead).
///
/// # Errors
///
/// Propagates submission errors.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn estimate_write_overhead(
    sim: &mut Simulator,
    disk: &Disk,
    track: u64,
    samples: u32,
) -> Result<SimDuration, DiskError> {
    assert!(samples > 0, "need at least one sample");
    let geometry = disk.geometry();
    let spt = geometry.spt_of_track(track);
    let base = geometry.track_first_lba(track);
    let mut best = SimDuration::MAX;
    for i in 0..samples {
        // Reference point: head just passed sector 0 of the track.
        run_blocking(
            sim,
            disk,
            DiskCommand::Read {
                lba: base,
                count: 1,
            },
        )?;
        let lba = base + u64::from(i % spt);
        let res = run_blocking(
            sim,
            disk,
            DiskCommand::Write {
                lba,
                data: vec![0u8; SECTOR_SIZE],
            },
        )?;
        best = best.min(res.completed.duration_since(res.issued));
    }
    let transfer = disk.mechanics().sector_time(spt);
    Ok(best.saturating_sub(transfer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trail_disk::profiles;

    fn setup() -> (Simulator, Disk) {
        (
            Simulator::new(),
            Disk::new("log", profiles::seagate_st41601n()),
        )
    }

    #[test]
    fn rotation_period_matches_spindle() {
        let (mut sim, disk) = setup();
        let measured = measure_rotation_period(&mut sim, &disk, 7).unwrap();
        let truth = disk.mechanics().rotation_period;
        let err = measured.as_nanos().abs_diff(truth.as_nanos());
        assert!(err <= 2, "rotation estimate off by {err} ns");
    }

    #[test]
    fn rotation_period_on_tiny_disk() {
        let mut sim = Simulator::new();
        let disk = Disk::new("t", profiles::tiny_test_disk());
        let measured = measure_rotation_period(&mut sim, &disk, 5).unwrap();
        assert_eq!(measured, disk.mechanics().rotation_period);
    }

    #[test]
    fn track_skew_recovers_geometry_value() {
        let (mut sim, disk) = setup();
        let period = disk.mechanics().rotation_period;
        let geometry = disk.geometry();
        // Tracks 0 -> 1: same cylinder, pure track skew.
        let skew = measure_track_skew(&mut sim, &disk, 0, period).unwrap();
        assert_eq!(skew, geometry.track_skew());
        // Crossing a cylinder boundary (track heads-1 -> heads): track
        // skew + cylinder skew.
        let hb = u64::from(geometry.heads()) - 1;
        let skew_cyl = measure_track_skew(&mut sim, &disk, hb, period).unwrap();
        assert_eq!(skew_cyl, geometry.track_skew() + geometry.cyl_skew());
    }

    #[test]
    fn track_skew_rejects_last_track() {
        let (mut sim, disk) = setup();
        let period = disk.mechanics().rotation_period;
        let last = disk.geometry().total_tracks() - 1;
        assert_eq!(
            measure_track_skew(&mut sim, &disk, last, period),
            Err(DiskError::OutOfRange)
        );
    }

    #[test]
    fn delta_calibration_finds_overhead_in_sectors() {
        let (mut sim, disk) = setup();
        let cal = calibrate_delta(&mut sim, &disk, 0).unwrap();
        let mech = disk.mechanics();
        let spt = disk.geometry().spt_of_track(0);
        // Expected: ceil(write_overhead / sector_time) plus head-just-past-
        // sector-0 geometry; must be in the ballpark of 10-12 and below the
        // paper's bound of 15 for this drive class.
        let overhead_sectors = (mech.write_overhead.as_nanos() as f64
            / mech.sector_time(spt).as_nanos() as f64)
            .ceil() as u32;
        assert!(
            cal.minimal >= overhead_sectors.saturating_sub(1)
                && cal.minimal <= overhead_sectors + 2,
            "minimal delta {} vs overhead {} sectors",
            cal.minimal,
            overhead_sectors
        );
        assert!(cal.minimal < 15, "paper: delta < 15 on the ST41601N");
        assert_eq!(cal.recommended, cal.minimal + DELTA_SAFETY_MARGIN);
        // Under-compensated deltas pay (almost) a full rotation.
        let under = &cal.samples[(cal.minimal.saturating_sub(2)) as usize];
        let over = &cal.samples[cal.minimal as usize];
        assert!(
            under.latency > over.latency + mech.rotation_period.mul_f64(0.5),
            "under-compensated delta must cost ~a rotation: under {} over {}",
            under.latency,
            over.latency
        );
        // All deltas were tried.
        assert_eq!(cal.samples.len() as u32, spt);
    }

    #[test]
    fn well_compensated_write_latency_matches_paper_anchor() {
        // With a calibrated delta, a single-sector write should land near
        // 1.4 ms on the log-disk profile (paper §5.1).
        let (mut sim, disk) = setup();
        let cal = calibrate_delta(&mut sim, &disk, 0).unwrap();
        let best = cal
            .samples
            .iter()
            .map(|s| s.latency)
            .min()
            .expect("samples nonempty");
        let ms = best.as_millis_f64();
        assert!(
            (1.2..1.6).contains(&ms),
            "calibrated single-sector write took {ms} ms, expected ~1.4"
        );
    }

    #[test]
    fn write_overhead_estimate_close_to_model() {
        let (mut sim, disk) = setup();
        let est = estimate_write_overhead(&mut sim, &disk, 5, 40).unwrap();
        let truth = disk.mechanics().write_overhead;
        // The estimate includes residual rotation of the luckiest write, so
        // it upper-bounds the true overhead within a couple sector times.
        assert!(est >= truth, "estimate {est} below true overhead {truth}");
        assert!(
            est <= truth
                + disk.mechanics().sector_time(90) * 3
                + disk.mechanics().write_after_write,
            "estimate {est} too far above {truth}"
        );
    }
}
