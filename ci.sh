#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), full test suite.
# The workspace builds offline against the vendored stand-in crates.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test =="
cargo test --workspace --offline -q

echo "== completion-token API gate =="
# The Completion<T> token in trail-sim is the one completion primitive;
# no layer may reintroduce a bespoke boxed-closure completion typedef.
if grep -rn --include='*.rs' 'Box<dyn FnOnce' crates src \
    | grep -v '^crates/sim/' \
    | grep -v 'EventFn\|schedule_at\|schedule_in'; then
  echo "found a bespoke Box<dyn FnOnce> completion callback outside trail-sim" >&2
  exit 1
fi

echo "== target-factory gate =="
# StackBuilder::build_target in the umbrella crate is the one way to
# construct a replay/bench stack; no crate may grow a private factory or
# boot MultiTrail by hand again.
if grep -rn --include='*.rs' \
    'fn build_target\|struct MultiStack\|fn prealloc\|MultiTrail::start' \
    crates/trace crates/bench; then
  echo "found a private stack factory outside the umbrella crate" >&2
  exit 1
fi

echo "== run_all --quick smoke =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release --offline -p trail-bench --bin run_all -- \
  --quick --out-dir "$smoke_dir" >/dev/null
for name in micro table1 fig3 fig4 ablation fs_compare table2 table3 track_util \
             replay_synthetic overload_sweep replay_tpcc replaystream serve serve_sweep \
             raid recovery; do
  test -s "$smoke_dir/BENCH_$name.json" \
    || { echo "run_all --quick did not produce BENCH_$name.json" >&2; exit 1; }
done

echo "== fault-plane gate =="
# FaultPlan on the stack's FaultClock is the one way harnesses schedule
# faults; the retired ad-hoc hooks must not creep back in. (The volume's
# fail_member primitive stays — it is what the plane's sink drives — and
# the ReplayOptions::fail_member shim lives in trail-trace only, folded
# into the plan at replay time.)
if grep -rn --include='*.rs' \
    'schedule_member_failure\|fail_member\|FailMember' \
    crates/bench crates/serve src examples; then
  echo "found an ad-hoc fault hook outside the fault plane" >&2
  exit 1
fi

echo "== serve_fleet determinism gate (byte-identical across runs) =="
serve_a="$smoke_dir/serve_a"; serve_b="$smoke_dir/serve_b"
mkdir -p "$serve_a" "$serve_b"
cargo run --release --offline -p trail-bench --bin serve_fleet -- \
  --quick --out-dir "$serve_a" >/dev/null
cargo run --release --offline -p trail-bench --bin serve_fleet -- \
  --quick --out-dir "$serve_b" >/dev/null
cmp -s "$serve_a/BENCH_serve.json" "$serve_b/BENCH_serve.json" \
  || { echo "BENCH_serve.json is not byte-identical across runs" >&2; exit 1; }
# The run_all smoke above ran the same scenario through the threaded
# runner; its artifact must match the standalone binary's byte for byte.
cmp -s "$serve_a/BENCH_serve.json" "$smoke_dir/BENCH_serve.json" \
  || { echo "BENCH_serve.json differs between serve_fleet and run_all" >&2; exit 1; }

echo "== raid_sweep gate (deterministic, degraded mode, per-member stats) =="
raid_a="$smoke_dir/raid_a"; raid_b="$smoke_dir/raid_b"
mkdir -p "$raid_a" "$raid_b"
cargo run --release --offline -p trail-bench --bin raid_sweep -- \
  --quick --out-dir "$raid_a" >/dev/null
cargo run --release --offline -p trail-bench --bin raid_sweep -- \
  --quick --out-dir "$raid_b" >/dev/null
cmp -s "$raid_a/BENCH_raid.json" "$raid_b/BENCH_raid.json" \
  || { echo "BENCH_raid.json is not byte-identical across runs" >&2; exit 1; }
cmp -s "$raid_a/BENCH_raid.json" "$smoke_dir/BENCH_raid.json" \
  || { echo "BENCH_raid.json differs between raid_sweep and run_all" >&2; exit 1; }
# Degraded-mode rows and per-member latency breakdowns must be present.
for field in degraded_reads members small_write_speedup; do
  grep -q "\"$field\"" "$raid_a/BENCH_raid.json" \
    || { echo "BENCH_raid.json lacks $field" >&2; exit 1; }
done
# The headline claim: Trail-fronted RAID-5 must beat the standard stack
# by at least 2x on small-write mean latency at recorded load.
speedup="$(grep -o '"small_write_speedup":[0-9.]*' "$raid_a/BENCH_raid.json" \
  | cut -d: -f2)"
awk -v s="$speedup" 'BEGIN { exit !(s >= 2.0) }' \
  || { echo "RAID-5 small-write speedup $speedup is below 2x" >&2; exit 1; }

echo "== crash campaign gate (deterministic, zero violations, monotone curve) =="
camp_a="$smoke_dir/camp_a"; camp_b="$smoke_dir/camp_b"
mkdir -p "$camp_a" "$camp_b"
cargo run --release --offline -p trail-bench --bin crash_campaign -- \
  --quick --out-dir "$camp_a" >/dev/null
cargo run --release --offline -p trail-bench --bin crash_campaign -- \
  --quick --out-dir "$camp_b" >/dev/null
cmp -s "$camp_a/BENCH_recovery.json" "$camp_b/BENCH_recovery.json" \
  || { echo "BENCH_recovery.json is not byte-identical across runs" >&2; exit 1; }
cmp -s "$camp_a/BENCH_recovery.json" "$smoke_dir/BENCH_recovery.json" \
  || { echo "BENCH_recovery.json differs between crash_campaign and run_all" >&2; exit 1; }
# Every sampled crash point must satisfy the durability contract (the
# scenario itself asserts monotonicity of the recovery-time curve).
grep -q '"violations":0,' "$camp_a/BENCH_recovery.json" \
  || { echo "crash campaign reported durability-contract violations" >&2; exit 1; }
for field in crash_points_total curve mean_total_ms mean_active_log_sectors; do
  grep -q "\"$field\"" "$camp_a/BENCH_recovery.json" \
    || { echo "BENCH_recovery.json lacks $field" >&2; exit 1; }
done
# The quick campaign still samples a real fleet of crash points.
points="$(grep -o '"crash_points_total":[0-9]*' "$camp_a/BENCH_recovery.json" \
  | cut -d: -f2)"
[ "$points" -ge 64 ] \
  || { echo "quick crash campaign sampled only $points crash points" >&2; exit 1; }

echo "== perf_suite --quick gate (fields present, event counts deterministic) =="
perf_a="$smoke_dir/perf_a"; perf_b="$smoke_dir/perf_b"
mkdir -p "$perf_a" "$perf_b"
cargo run --release --offline -p trail-bench --bin perf_suite -- \
  --quick --out-dir "$perf_a" >/dev/null
cargo run --release --offline -p trail-bench --bin perf_suite -- \
  --quick --out-dir "$perf_b" >/dev/null
for field in wall_ms events_per_sec events_executed; do
  grep -q "\"$field\"" "$perf_a/BENCH_simperf.json" \
    || { echo "BENCH_simperf.json lacks $field" >&2; exit 1; }
done
# events_executed is virtual-time: two runs must agree exactly, even
# though the wall-clock fields differ run to run.
counts_a="$(grep -o '"events_executed":[0-9]*' "$perf_a/BENCH_simperf.json")"
counts_b="$(grep -o '"events_executed":[0-9]*' "$perf_b/BENCH_simperf.json")"
[ -n "$counts_a" ] && [ "$counts_a" = "$counts_b" ] \
  || { echo "perf_suite event counts drifted between runs" >&2; exit 1; }

echo "== trace_tool smoke (generate -> replay, codec round-trip) =="
trace_tool() {
  cargo run --release --offline -p trail-bench --bin trace_tool -- "$@"
}
trace_tool generate --out "$smoke_dir/smoke.trace" --quick \
  --requests 120 --streams 2 --spatial zipf >/dev/null
trace_tool inspect "$smoke_dir/smoke.trace" >/dev/null
trace_tool replay "$smoke_dir/smoke.trace" --quick --target trail \
  --out-dir "$smoke_dir" >/dev/null
test -s "$smoke_dir/BENCH_replay_trail.json" \
  || { echo "trace_tool replay did not produce BENCH_replay_trail.json" >&2; exit 1; }
trace_tool convert "$smoke_dir/smoke.trace" "$smoke_dir/smoke.jsonl" >/dev/null
trace_tool convert "$smoke_dir/smoke.jsonl" "$smoke_dir/smoke2.trace" >/dev/null
cmp -s "$smoke_dir/smoke.trace" "$smoke_dir/smoke2.trace" \
  || { echo "trace codec binary->jsonl->binary round trip is not byte-identical" >&2; exit 1; }

echo "== streaming replay gate (10^6-record chunked trace, byte-identical) =="
# Generate a million-record chunked trace and stream it through the
# bounded-memory replay engine twice. The arrival rate is sustainable
# (20 ms mean IAT over 2 devices) so the open-loop queue stays bounded;
# everything in the artifact is virtual-time, so the two runs must agree
# byte for byte.
trace_tool generate --out "$smoke_dir/big.trace" \
  --requests 1000000 --devices 2 --streams 4 --mean-iat-us 20000 \
  --seed 42 >/dev/null
stream_a="$smoke_dir/stream_a"; stream_b="$smoke_dir/stream_b"
mkdir -p "$stream_a" "$stream_b"
cargo run --release --offline -p trail-bench --bin replay_stream -- \
  --trace "$smoke_dir/big.trace" --target trail_multi2 \
  --out-dir "$stream_a" >/dev/null
# Second run cross-checks the in-memory oracle: the whole trace decoded
# up front must produce the byte-identical report the streamed run did.
cargo run --release --offline -p trail-bench --bin replay_stream -- \
  --trace "$smoke_dir/big.trace" --target trail_multi2 --oracle \
  --out-dir "$stream_b" >/dev/null
cmp -s "$stream_a/BENCH_replaystream.json" "$stream_b/BENCH_replaystream.json" \
  || { echo "BENCH_replaystream.json is not byte-identical across runs" >&2; exit 1; }
grep -q '"requests":1000000' "$stream_a/BENCH_replaystream.json" \
  || { echo "streaming replay gate must cover 10^6 records" >&2; exit 1; }
for field in records_per_sec peak_resident_records latency_fingerprint; do
  grep -q "\"$field\"" "$stream_a/BENCH_replaystream.json" \
    || { echo "BENCH_replaystream.json lacks $field" >&2; exit 1; }
done

echo "== compressed + sharded replay gate (delta <= 60%, thread-count byte-identity) =="
# Delta-compress the million-record trace and require the promised
# ratio on the synthetic Poisson workload.
trace_tool convert "$smoke_dir/big.trace" "$smoke_dir/big_delta.trace" \
  --compress >/dev/null
raw_bytes=$(wc -c < "$smoke_dir/big.trace")
delta_bytes=$(wc -c < "$smoke_dir/big_delta.trace")
awk -v d="$delta_bytes" -v r="$raw_bytes" 'BEGIN { exit !(d * 10 <= r * 6) }' \
  || { echo "delta trace is $delta_bytes bytes, more than 60% of $raw_bytes raw" >&2; exit 1; }
# Round-tripping back to raw chunks must reproduce the original bytes.
trace_tool convert "$smoke_dir/big_delta.trace" "$smoke_dir/big_raw2.trace" \
  --raw >/dev/null
cmp -s "$smoke_dir/big.trace" "$smoke_dir/big_raw2.trace" \
  || { echo "delta->raw conversion does not reproduce the original trace" >&2; exit 1; }
# Sharded replay of the compressed trace at 1, 2, and 4 worker threads:
# the merged artifact depends on the shard count, never the thread
# count, so all three must be byte-identical.
for t in 1 2 4; do
  mkdir -p "$smoke_dir/shard_t$t"
  cargo run --release --offline -p trail-bench --bin replay_stream -- \
    --trace "$smoke_dir/big_delta.trace" --target trail_multi2 \
    --shards 4 --threads "$t" --out-dir "$smoke_dir/shard_t$t" >/dev/null
done
cmp -s "$smoke_dir/shard_t1/BENCH_replaystream.json" "$smoke_dir/shard_t2/BENCH_replaystream.json" \
  || { echo "sharded artifact differs between 1 and 2 threads" >&2; exit 1; }
cmp -s "$smoke_dir/shard_t1/BENCH_replaystream.json" "$smoke_dir/shard_t4/BENCH_replaystream.json" \
  || { echo "sharded artifact differs between 1 and 4 threads" >&2; exit 1; }
# The chunk encoding is storage, not semantics: a sharded replay of the
# raw trace must produce the same latency fingerprint.
mkdir -p "$smoke_dir/shard_raw"
cargo run --release --offline -p trail-bench --bin replay_stream -- \
  --trace "$smoke_dir/big.trace" --target trail_multi2 \
  --shards 4 --threads 2 --out-dir "$smoke_dir/shard_raw" >/dev/null
fp_delta=$(grep -o '"latency_fingerprint":"[0-9a-f]*"' "$smoke_dir/shard_t1/BENCH_replaystream.json")
fp_raw=$(grep -o '"latency_fingerprint":"[0-9a-f]*"' "$smoke_dir/shard_raw/BENCH_replaystream.json")
[ -n "$fp_delta" ] && [ "$fp_delta" = "$fp_raw" ] \
  || { echo "raw and delta sharded replays disagree on the fingerprint" >&2; exit 1; }

echo "== replay_giga gate (10^7-record slice: generate -> compress -> replay) =="
giga_dir="$smoke_dir/giga"
giga_out="$(cargo run --release --offline -p trail-bench --bin replay_giga -- \
  --records 10000000 --out-dir "$giga_dir")"
echo "$giga_out" | sed 's/^/   /'
grep -q '"requests":10000000' "$giga_dir/BENCH_replaystream.json" \
  || { echo "replay_giga slice must cover 10^7 records" >&2; exit 1; }
for field in compression_ratio trace_bytes_raw shards; do
  grep -q "\"$field\"" "$giga_dir/BENCH_replaystream.json" \
    || { echo "replay_giga artifact lacks $field" >&2; exit 1; }
done
# The >= 2x sharded speedup criterion is a wall-clock property and only
# meaningful with real cores under the shards; assert it when this
# machine has at least 4, otherwise record the measurement and move on.
speedup=$(echo "$giga_out" | grep -o 'speedup: [0-9.]*' | grep -o '[0-9.]*')
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -ge 4 ]; then
  awk -v s="$speedup" 'BEGIN { exit !(s >= 2.0) }' \
    || { echo "sharded replay speedup $speedup < 2.0x on $cores cores" >&2; exit 1; }
else
  echo "   (speedup ${speedup}x measured on $cores core(s); >=2x gate needs >=4 cores, skipped)"
fi

echo "== trace_tool blkparse import smoke (import -> inspect -> replay) =="
trace_tool import crates/trace/tests/data/sample.blkparse \
  --out "$smoke_dir/import.trace" >/dev/null
# Capture before grepping: `grep -q` exits at first match, and the
# resulting EPIPE would fail the gate under pipefail.
inspect_out="$(trace_tool inspect "$smoke_dir/import.trace")"
grep -q 'streams:  4' <<<"$inspect_out" \
  || { echo "imported fixture should carry 4 CPU streams" >&2; exit 1; }
trace_tool replay "$smoke_dir/import.trace" --quick --target trail_multi2 \
  --out-dir "$smoke_dir" >/dev/null
grep -q '"streams"' "$smoke_dir/BENCH_replay_trail_multi2.json" \
  || { echo "replay of imported trace lacks per-stream metrics" >&2; exit 1; }

echo "CI gate passed."
