#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), full test suite.
# The workspace builds offline against the vendored stand-in crates.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test =="
cargo test --workspace --offline -q

echo "CI gate passed."
