//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of the proptest 1.x API that the workspace's
//! property tests use: the [`strategy::Strategy`] trait with `prop_map`
//! / `prop_flat_map` / `boxed`, range and tuple strategies, [`strategy::Just`],
//! [`strategy::Union`] (backing `prop_oneof!`), `any::<T>()`,
//! [`collection::vec`], [`test_runner::ProptestConfig`], and the
//! `proptest!` / `prop_assert*!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the case number and the
//!   assertion message, not a minimized input. Re-running is cheap
//!   because generation is fully deterministic.
//! * **Deterministic generation.** Every test function draws from a
//!   SplitMix64 stream with a fixed seed, so failures reproduce exactly
//!   across runs and machines — the same property the rest of this
//!   simulation workspace relies on.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A default configuration overridden to run `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property is false for this input: the test fails.
        Fail(String),
        /// The input is outside the property's domain: skip the case.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a `Fail` from any message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a `Reject` from any message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Deterministic SplitMix64 source feeding all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator used by the `proptest!` runner.
        pub fn deterministic() -> Self {
            TestRng::from_seed(0x7261_696C_5F70_7470) // "rail_ptp"
        }

        /// A generator seeded explicitly (used by nested strategies).
        pub fn from_seed(state: u64) -> Self {
            TestRng { state }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u128) -> u128 {
            debug_assert!(n > 0);
            let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            wide % n
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a
    /// strategy is just a deterministic sampler over a [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Derives a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among same-typed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "Union requires at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u128) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Types with a canonical "whole domain" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    ((self.start as u128).wrapping_add(rng.below(span))) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128).wrapping_sub(start as u128) + 1;
                    ((start as u128).wrapping_add(rng.below(span))) as $t
                }
            }
        )*};
    }

    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u128 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::collection::SizeRange;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares deterministic property tests.
///
/// Supports the same surface the workspace uses: an optional
/// `#![proptest_config(...)]` header and one or more
/// `fn name(pattern in strategy, ...) { body }` items. Each body runs
/// once per generated case; `prop_assert*!` failures and
/// `TestCaseError::Fail` abort with the case number, `Reject` skips the
/// case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat_param in $s:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    let ($($p,)+) = (
                        $($crate::strategy::Strategy::generate(&($s), &mut __rng),)+
                    );
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => continue,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => panic!("proptest case {} failed: {}", __case, __msg),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @run ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// `assert!` that fails the current proptest case instead of panicking
/// directly (so the runner can attach the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Skips the current case when its input falls outside the property's
/// domain.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_respect_bounds() {
        let mut rng = TestRng::deterministic();
        let s = crate::collection::vec(0u32..10, 3..=5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_covers_all_branches() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::deterministic();
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn flat_map_threads_rng() {
        let s =
            (1u32..5).prop_flat_map(|n| crate::collection::vec(Just(n), n as usize..=n as usize));
        let mut rng = TestRng::deterministic();
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert_eq!(v.len(), v[0] as usize);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, (a, b) in (0u8..4, 0u8..4)) {
            prop_assert!(x < 100);
            prop_assert_ne!(a as u16 + 256, b as u16);
            prop_assert_eq!(a as u16 * 2, a as u16 + a as u16);
        }
    }
}
