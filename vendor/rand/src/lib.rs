//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this crate re-implements exactly the subset of the rand 0.8 API the
//! workspace uses: [`SeedableRng::seed_from_u64`], the [`rngs::SmallRng`]
//! and [`rngs::StdRng`] generator types, and the [`Rng`] extension trait
//! with `gen`, `gen_range`, and `gen_bool`. All generators are
//! deterministic: the same seed always yields the same stream, which is a
//! requirement of the simulation harness (every experiment is replayable
//! bit-for-bit).
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a
//! 64-bit state advanced by a Weyl sequence and finalized by a
//! variance-tested avalanche mix. It is statistically strong enough for
//! workload generation and property tests, and is a single pure function
//! of the seed.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of every generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next value in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator (the rand
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let off = u128::from(rng.next_u64()) % span;
                ((self.start as u128).wrapping_add(off)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let off = u128::from(rng.next_u64()) % span;
                ((start as u128).wrapping_add(off)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// The "standard" generator; here an alias-quality wrapper over the
    /// same deterministic SplitMix64 core.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng(SmallRng);

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng(SmallRng::seed_from_u64(state))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = rng.gen_range(5u32..5);
    }
}
