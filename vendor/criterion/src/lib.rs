//! Offline vendored stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the minimal benchmarking API the workspace's bench target
//! uses: [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! It is a smoke harness, not a statistics engine: each benchmark runs a
//! short warm-up plus a fixed number of timed iterations and prints the
//! mean wall-clock time per iteration. That keeps `cargo bench` useful
//! for spotting order-of-magnitude regressions while staying dependency
//! free. Set `CRITERION_STUB_ITERS` to change the iteration count.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How much setup output to hold per batch in [`Bencher::iter_batched`].
/// The stub runs one setup per iteration regardless, so the variants
/// only exist for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
    /// A fixed number of batches.
    NumBatches(u64),
    /// A fixed number of iterations per batch.
    NumIterations(u64),
}

/// Times one benchmark routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up pass, untimed.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Runs `routine` over fresh state from `setup`, timing only the
    /// routine.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut timed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            timed += start.elapsed();
        }
        self.elapsed = timed;
    }
}

/// The benchmark registry / runner.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let iters = std::env::var("CRITERION_STUB_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Criterion { iters }
    }
}

impl Criterion {
    /// Runs one named benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters.max(1),
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.elapsed.as_nanos() / u128::from(b.iters.max(1));
        println!("bench {name:<40} {mean:>12} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routines() {
        let mut calls = 0u64;
        Criterion { iters: 4 }.bench_function("counting", |b| b.iter(|| calls += 1));
        // One warm-up call plus the timed iterations.
        assert_eq!(calls, 5);
    }

    #[test]
    fn iter_batched_pairs_setup_with_routine() {
        let mut sum = 0u64;
        Criterion { iters: 3 }.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |x| sum += x, BatchSize::LargeInput)
        });
        assert_eq!(sum, 8);
    }
}
