//! The headline invariant, property-tested across random workloads and
//! crash instants: **every acknowledged synchronous write survives a power
//! failure**, end to end through the full stack.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use proptest::prelude::*;
use rand::Rng;
use trail::prelude::*;

/// Runs a random workload on tiny disks, crashes at `crash_ms`, recovers,
/// and checks the ledger. Returns an error message on violation.
fn crash_round_trip(seed: u64, crash_ms: u64, n_writes: usize) -> Result<(), String> {
    let mut sim = Simulator::new();
    let log = Disk::new("log", trail::disk::profiles::tiny_test_disk());
    let data: Vec<Disk> = (0..2)
        .map(|i| Disk::new(format!("d{i}"), trail::disk::profiles::tiny_test_disk()))
        .collect();
    format_log_disk(&mut sim, &log, FormatOptions::default()).map_err(|e| e.to_string())?;
    let (trail, _) =
        TrailDriver::start(&mut sim, log.clone(), data.clone(), TrailConfig::default())
            .map_err(|e| e.to_string())?;

    // Ledger: per block, the ordered list of tags written and the last
    // acknowledged tag.
    type WriteLedger = Rc<RefCell<HashMap<(usize, u64), Vec<u8>>>>;
    let writes: WriteLedger = Rc::new(RefCell::new(HashMap::new()));
    let acked: Rc<RefCell<HashMap<(usize, u64), u8>>> = Rc::new(RefCell::new(HashMap::new()));
    let mut rng = trail_sim::rng(seed);
    let t0 = sim.now();
    for i in 0..n_writes {
        let dev = rng.gen_range(0..2usize);
        let lba = rng.gen_range(0..48u64);
        let tag = (i % 251 + 1) as u8;
        writes.borrow_mut().entry((dev, lba)).or_default().push(tag);
        let acked = Rc::clone(&acked);
        let trail2 = trail.clone();
        let when = t0 + SimDuration::from_micros(rng.gen_range(0..(n_writes as u64 * 400)));
        sim.schedule_at(when.max(sim.now()), move |sim| {
            let mut buf = vec![tag; SECTOR_SIZE];
            buf[0] = tag ^ 0xA5;
            let done = sim.completion(move |_, del: Delivered<IoDone>| {
                if del.is_ok() {
                    acked.borrow_mut().insert((dev, lba), tag);
                }
            });
            trail2
                .write(sim, dev, lba, buf, done)
                .expect("write accepted");
        });
    }
    sim.run_until(t0 + SimDuration::from_millis(crash_ms));
    log.power_cut(sim.now());
    for d in &data {
        d.power_cut(sim.now());
    }
    drop(trail);

    log.power_on();
    for d in &data {
        d.power_on();
    }
    let mut sim2 = Simulator::new();
    let (_trail2, boot) = TrailDriver::start(&mut sim2, log, data.clone(), TrailConfig::default())
        .map_err(|e| e.to_string())?;
    if boot.recovered.is_none() {
        return Err("dirty disk must trigger recovery".into());
    }

    for (&(dev, lba), &acked_tag) in acked.borrow().iter() {
        let history = &writes.borrow()[&(dev, lba)];
        let pos = history
            .iter()
            .position(|&t| t == acked_tag)
            .expect("acked tag was issued");
        let on_disk = data[dev].peek_sector(lba);
        let ok = history[pos..].iter().any(|&t| {
            let mut expect = [t; SECTOR_SIZE];
            expect[0] = t ^ 0xA5;
            on_disk[..] == expect[..]
        });
        if !ok {
            return Err(format!(
                "dev {dev} lba {lba}: acked tag {acked_tag}, disk holds {:?}",
                &on_disk[..3]
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn acked_writes_always_survive(
        seed in any::<u64>(),
        crash_ms in 1u64..200,
        n_writes in 20usize..250,
    ) {
        crash_round_trip(seed, crash_ms, n_writes)
            .map_err(TestCaseError::fail)?;
    }
}
