//! Regression tests pinning the paper's §5.1 measured anchors: if a code
//! change breaks the latency story, these fail before any bench is run.

use std::cell::RefCell;
use std::rc::Rc;

use rand::Rng;
use trail::prelude::*;

fn testbed() -> (Simulator, TrailDriver, Disk) {
    let mut sim = Simulator::new();
    let log = Disk::new("log", profiles::seagate_st41601n());
    let data = Disk::new("data0", profiles::wd_caviar_10gb());
    format_log_disk(&mut sim, &log, FormatOptions::default()).expect("format");
    let (trail, _) = TrailDriver::start(&mut sim, log.clone(), vec![data], TrailConfig::default())
        .expect("boot");
    log.reset_stats();
    (sim, trail, log)
}

/// Runs `n` sparse random writes of `bytes`, returning mean latency in ms.
fn sparse_writes(n: usize, bytes: usize) -> (f64, f64) {
    let (mut sim, trail, log) = testbed();
    let lat = Rc::new(RefCell::new(trail_sim::LatencySummary::new()));
    let mut rng = trail_sim::rng(5);
    for _ in 0..n {
        let l = Rc::clone(&lat);
        let lba = rng.gen_range(0..18_000_000u64);
        let done = sim.completion(move |_, done: Delivered<IoDone>| {
            l.borrow_mut().record(done.expect("delivered").latency());
        });
        trail
            .write(&mut sim, 0, lba, vec![1u8; bytes], done)
            .expect("write");
        trail.run_until_quiescent(&mut sim);
        sim.run_for(SimDuration::from_millis(5));
    }
    let mean = lat.borrow().mean().as_millis_f64();
    let rot = log.with_stats(|s| s.rotation_waits.mean().as_millis_f64());
    (mean, rot)
}

#[test]
fn one_sector_write_is_about_1_4_ms() {
    // Paper §5.1: "the synchronous write latency for a one-sector write
    // request is consistently around 1.40 msec". Ours carries the +2
    // sector calibration margin, so allow up to 2.0.
    let (mean, _) = sparse_writes(100, 512);
    assert!(
        (1.2..2.0).contains(&mean),
        "one-sector sync write mean {mean} ms, expected ~1.4-1.9"
    );
}

#[test]
fn four_kb_write_is_a_few_ms() {
    // Abstract: "A 4-KByte disk write takes less than 1.5 msec" — with
    // media-rate transfer (8 sectors ≈ 1.0 ms) plus ~1.25 ms overhead the
    // physically consistent bound is ~3 ms; see EXPERIMENTS.md.
    let (mean, _) = sparse_writes(100, 4096);
    assert!(
        (2.0..3.6).contains(&mean),
        "4-KB sync write mean {mean} ms, expected ~2.3-3"
    );
}

#[test]
fn residual_rotation_is_an_order_of_magnitude_below_average() {
    // Paper §5.1: average rotational latency reduced below 0.5 ms,
    // against a 5.5 ms disk average.
    let (_, rot) = sparse_writes(150, 512);
    assert!(
        rot < 0.5,
        "mean residual rotational latency {rot} ms, expected < 0.5"
    );
}

#[test]
fn trail_beats_standard_by_5x_or_more_on_small_writes() {
    // Paper: up to 11.85x. Demand at least 5x on 1-KB sparse writes.
    let (trail_mean, _) = sparse_writes(100, 1024);
    // Standard subsystem: same workload straight at the data disk.
    let mut sim = Simulator::new();
    let disk = Disk::new("data", profiles::wd_caviar_10gb());
    let drv = StandardDriver::new(disk);
    let lat = Rc::new(RefCell::new(trail_sim::LatencySummary::new()));
    let mut rng = trail_sim::rng(5);
    for _ in 0..100 {
        let l = Rc::clone(&lat);
        let lba = rng.gen_range(0..18_000_000u64);
        let done = sim.completion(move |_, done: Delivered<IoDone>| {
            l.borrow_mut().record(done.expect("delivered").latency());
        });
        drv.submit(&mut sim, IoRequest::write(lba, vec![1u8; 1024]), done)
            .expect("write");
        sim.run();
    }
    let std_mean = lat.borrow().mean().as_millis_f64();
    assert!(
        std_mean / trail_mean >= 5.0,
        "speedup only {:.2}x (trail {trail_mean} ms vs standard {std_mean} ms)",
        std_mean / trail_mean
    );
}

#[test]
fn reposition_cost_is_about_1_5_ms() {
    // Paper §5.1: the repositioning overhead "typical value is 1.5 msec".
    // Measure it as the latency difference between a write that triggers
    // no reposition and the driver's post-write reposition read, via the
    // every-write policy: total per clustered cycle ≈ write + reposition.
    let mut sim = Simulator::new();
    let log = Disk::new("log", profiles::seagate_st41601n());
    let data = Disk::new("data0", profiles::wd_caviar_10gb());
    format_log_disk(&mut sim, &log, FormatOptions::default()).expect("format");
    let config = TrailConfig {
        reposition_every_write: true,
        ..TrailConfig::default()
    };
    let (trail, _) = TrailDriver::start(&mut sim, log, vec![data], config).expect("boot");
    // Clustered chain of 40 one-sector writes: each cycle = write +
    // reposition, so cycle time ≈ 1.4 + ~1.6 ≈ 3.0 ms (paper: "Trail can
    // complete a one-sector synchronous disk write within 3.0 msec").
    let start = sim.now();
    let done = Rc::new(std::cell::Cell::new(0u32));
    fn chain(sim: &mut Simulator, trail: TrailDriver, done: Rc<std::cell::Cell<u32>>, i: u64) {
        if i == 40 {
            return;
        }
        let t2 = trail.clone();
        let d2 = Rc::clone(&done);
        let token = sim.completion(move |sim: &mut Simulator, _: Delivered<IoDone>| {
            d2.set(d2.get() + 1);
            chain(sim, t2, d2, i + 1);
        });
        trail
            .write(sim, 0, i * 4, vec![2u8; SECTOR_SIZE], token)
            .expect("write");
    }
    chain(&mut sim, trail.clone(), Rc::clone(&done), 0);
    while done.get() < 40 {
        assert!(sim.step(), "writes stalled");
    }
    let per_cycle = sim.now().duration_since(start).as_millis_f64() / 40.0;
    // Our calibrated δ carries a +2-sector safety margin on both the write
    // and the repositioning read (~0.5 ms/cycle over the paper's 3.0 ms),
    // plus the modeled write-after-write delay.
    assert!(
        (2.5..4.3).contains(&per_cycle),
        "write+reposition cycle {per_cycle} ms, paper says ~3.0"
    );
}
