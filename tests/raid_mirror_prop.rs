//! RAID-1 under Trail, property-tested across random workloads and crash
//! instants: after a power cut and log-replay recovery, the two mirror
//! members are **byte-identical** and every acknowledged write is on
//! both of them. Recovery replays the un-checkpointed log tail through
//! the volume, so even a write-back that reached only one mirror before
//! the cut converges.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use proptest::prelude::*;
use rand::Rng;
use trail::blockio::SharedBlockDevice;
use trail::prelude::*;

fn mirror_target(disks: &[Disk]) -> (RaidVolume, SharedBlockDevice) {
    let members: Vec<StandardDriver> = disks
        .iter()
        .map(|d| StandardDriver::new(d.clone()))
        .collect();
    let vol = RaidVolume::new(
        "mirror",
        VolumeLayout::Raid1 {
            read_policy: ReadPolicy::RoundRobin,
        },
        members,
    );
    let target = Rc::new(vol.clone()) as SharedBlockDevice;
    (vol, target)
}

fn mirror_crash_round_trip(seed: u64, crash_ms: u64, n_writes: usize) -> Result<(), String> {
    let mut sim = Simulator::new();
    let log = Disk::new("log", trail::disk::profiles::tiny_test_disk());
    let members: Vec<Disk> = (0..2)
        .map(|i| Disk::new(format!("m{i}"), trail::disk::profiles::tiny_test_disk()))
        .collect();
    format_log_disk(&mut sim, &log, FormatOptions::default()).map_err(|e| e.to_string())?;
    let (vol, target) = mirror_target(&members);
    let (trail, _) = TrailDriver::start_with_targets(
        &mut sim,
        log.clone(),
        vec![target],
        TrailConfig::default(),
    )
    .map_err(|e| e.to_string())?;

    let acked: Rc<RefCell<HashMap<u64, u8>>> = Rc::new(RefCell::new(HashMap::new()));
    let history: Rc<RefCell<HashMap<u64, Vec<u8>>>> = Rc::new(RefCell::new(HashMap::new()));
    let mut rng = trail_sim::rng(seed);
    let t0 = sim.now();
    for i in 0..n_writes {
        let lba = rng.gen_range(0..48u64);
        let tag = (i % 251 + 1) as u8;
        history.borrow_mut().entry(lba).or_default().push(tag);
        let acked = Rc::clone(&acked);
        let trail2 = trail.clone();
        let when = t0 + SimDuration::from_micros(rng.gen_range(0..(n_writes as u64 * 400)));
        sim.schedule_at(when.max(sim.now()), move |sim| {
            let buf = vec![tag; SECTOR_SIZE];
            let done = sim.completion(move |_, del: Delivered<IoDone>| {
                if del.is_ok() {
                    acked.borrow_mut().insert(lba, tag);
                }
            });
            trail2
                .write(sim, 0, lba, buf, done)
                .expect("write accepted");
        });
    }
    sim.run_until(t0 + SimDuration::from_millis(crash_ms));
    log.power_cut(sim.now());
    for m in &members {
        m.power_cut(sim.now());
    }
    drop(trail);
    drop(vol);

    log.power_on();
    for m in &members {
        m.power_on();
    }
    let mut sim2 = Simulator::new();
    let (vol2, target2) = mirror_target(&members);
    let (_trail2, boot) =
        TrailDriver::start_with_targets(&mut sim2, log, vec![target2], TrailConfig::default())
            .map_err(|e| e.to_string())?;
    if boot.recovered.is_none() {
        return Err("dirty disk must trigger recovery".into());
    }

    // Every acknowledged write (or a later one to the same block) must
    // be present — checked on each mirror independently.
    for (&lba, &acked_tag) in acked.borrow().iter() {
        let history = &history.borrow()[&lba];
        let pos = history
            .iter()
            .position(|&t| t == acked_tag)
            .expect("acked tag was issued");
        for (m, disk) in members.iter().enumerate() {
            let on_disk = disk.peek_sector(lba);
            let ok = history[pos..]
                .iter()
                .any(|&t| on_disk[..] == [t; SECTOR_SIZE][..]);
            if !ok {
                return Err(format!(
                    "mirror {m} lba {lba}: acked tag {acked_tag}, holds {:?}",
                    &on_disk[..3]
                ));
            }
        }
    }

    // And the mirrors must agree byte for byte across the whole volume.
    for lba in 0..vol2.capacity_sectors() {
        if members[0].peek_sector(lba)[..] != members[1].peek_sector(lba)[..] {
            return Err(format!("mirrors diverge at lba {lba} after recovery"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn raid1_mirrors_identical_after_crash_recovery(
        seed in any::<u64>(),
        crash_ms in 1u64..200,
        n_writes in 20usize..180,
    ) {
        mirror_crash_round_trip(seed, crash_ms, n_writes)
            .map_err(TestCaseError::fail)?;
    }
}
