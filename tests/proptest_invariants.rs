//! Property-based tests over the core data structures and the end-to-end
//! durability invariant.

use proptest::prelude::*;

use trail::core::format::{build_record, restore_payload, PayloadSector, RecordHeader};
use trail::core::{HeadPredictor, TrackPool};
use trail::db::Page;
use trail::disk::{DiskGeometry, SectorBuf, Zone, SECTOR_SIZE};
use trail::sim::{SimDuration, SimTime};

fn arb_geometry() -> impl Strategy<Value = DiskGeometry> {
    (
        1u32..8,
        proptest::collection::vec((1u32..40, 4u32..120), 1..4),
        0u32..16,
        0u32..16,
    )
        .prop_map(|(heads, zones, track_skew, cyl_skew)| {
            DiskGeometry::new(
                heads,
                zones
                    .into_iter()
                    .map(|(cylinders, spt)| Zone { cylinders, spt })
                    .collect(),
                track_skew,
                cyl_skew,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LBA -> CHS -> LBA is the identity everywhere on the disk.
    #[test]
    fn geometry_round_trips(geometry in arb_geometry(), frac in 0.0f64..1.0) {
        let lba = ((geometry.total_sectors() - 1) as f64 * frac) as u64;
        let chs = geometry.lba_to_chs(lba).expect("in range");
        prop_assert_eq!(geometry.chs_to_lba(chs), Some(lba));
        // Track accessors agree with the address mapping.
        let track = geometry.track_index(chs);
        prop_assert!(geometry.track_first_lba(track) <= lba);
        prop_assert!(
            lba < geometry.track_first_lba(track) + u64::from(geometry.spt_of_track(track))
        );
    }

    /// Sector angles are a bijection per track (skew is a rotation).
    #[test]
    fn sector_angles_are_distinct(geometry in arb_geometry(), tfrac in 0.0f64..1.0) {
        let track = ((geometry.total_tracks() - 1) as f64 * tfrac) as u64;
        let spt = geometry.spt_of_track(track);
        let mut seen = std::collections::HashSet::new();
        for s in 0..spt {
            let a = geometry.sector_angle(track, s);
            prop_assert!((0.0..1.0).contains(&a));
            // Quantized to a sector index, each angle is unique.
            prop_assert!(seen.insert((a * f64::from(spt)).round() as u32 % spt));
        }
    }

    /// Write records survive encode -> raw sectors -> decode -> restore.
    #[test]
    fn record_format_round_trips(
        payload_bytes in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), SECTOR_SIZE),
            1..=32
        ),
        epoch in any::<u64>(),
        seq in any::<u64>(),
        header_lba in 0u32..1_000_000,
    ) {
        let payload: Vec<PayloadSector> = payload_bytes
            .iter()
            .enumerate()
            .map(|(i, bytes)| PayloadSector {
                data_major: (i % 3) as u8,
                data_minor: 0,
                data_lba: i as u32 * 8,
                data: bytes[..].try_into().expect("sector-sized"),
            })
            .collect();
        let (header, raw) =
            build_record(epoch, seq, Some(7), 3, 1, header_lba, &payload).expect("builds");
        let hsec: SectorBuf = raw[..SECTOR_SIZE].try_into().expect("sector");
        let parsed = RecordHeader::decode(&hsec).expect("valid").expect("is header");
        prop_assert_eq!(&parsed, &header);
        prop_assert_eq!(parsed.entries.len(), payload.len());
        for (i, entry) in parsed.entries.iter().enumerate() {
            let mut sector: SectorBuf = raw
                [(i + 1) * SECTOR_SIZE..(i + 2) * SECTOR_SIZE]
                .try_into()
                .expect("sector");
            restore_payload(entry, &mut sector);
            prop_assert_eq!(&sector[..], &payload_bytes[i][..]);
        }
        // The checksum covers the on-disk payload: flipping any byte in it
        // must be detected.
        let flip = (epoch as usize % (payload.len() * SECTOR_SIZE)) + SECTOR_SIZE;
        let mut torn = raw.clone();
        torn[flip] ^= 0xFF;
        let torn_payload = &torn[SECTOR_SIZE..];
        prop_assert_ne!(
            trail::core::format::fnv1a(torn_payload),
            header.payload_checksum
        );
    }

    /// The predictor's same-track output is always a sector on the
    /// reference's track, regardless of elapsed time.
    #[test]
    fn predictor_stays_on_track(
        ref_lba in 0u64..3_000_000,
        elapsed_ns in 0u64..1_000_000_000,
        delta in 0u32..32,
    ) {
        let p = trail::disk::profiles::seagate_st41601n();
        let total = p.geometry.total_sectors();
        let ref_lba = ref_lba % total;
        let mut predictor =
            HeadPredictor::new(p.geometry.clone(), p.mech.rotation_period, delta);
        predictor.set_reference(SimTime::ZERO, ref_lba);
        let t1 = SimTime::ZERO + SimDuration::from_nanos(elapsed_ns);
        let predicted = predictor.predict_same_track(t1).expect("has reference");
        prop_assert_eq!(
            p.geometry.track_of_lba(predicted),
            p.geometry.track_of_lba(ref_lba)
        );
    }

    /// TrackPool against a reference model: FIFO reclamation, exact free
    /// counts, no lost tracks.
    #[test]
    fn track_pool_matches_model(ops in proptest::collection::vec(0u8..3, 1..200)) {
        let first = 2u64;
        let last = 17u64;
        let mut pool = TrackPool::new(first, last);
        // Model: queue of (track, outstanding) in allocation order.
        let mut model: std::collections::VecDeque<(u64, u32)> = Default::default();
        for op in ops {
            match op {
                0 => {
                    let expected_full = model.len() as u64 > last - first;
                    match pool.allocate_next() {
                        Some(t) => {
                            prop_assert!(!expected_full);
                            model.push_back((t, 0));
                        }
                        None => prop_assert!(expected_full),
                    }
                }
                1 => {
                    if let Some(entry) = model.back_mut() {
                        pool.add_record(entry.0);
                        entry.1 += 1;
                    }
                }
                _ => {
                    // Commit a record on the oldest track that has one.
                    if let Some(pos) = model.iter().position(|&(_, n)| n > 0) {
                        let track = model[pos].0;
                        pool.commit_record(track);
                        model[pos].1 -= 1;
                        // FIFO reclaim in the model (keep the newest track).
                        while model.len() > 1 && model.front().is_some_and(|&(_, n)| n == 0) {
                            model.pop_front();
                        }
                    }
                }
            }
            prop_assert_eq!(pool.active_tracks(), model.len() as u64);
        }
    }

    /// Slotted pages against a HashMap model.
    #[test]
    fn page_matches_model(
        ops in proptest::collection::vec((0u8..3, 1usize..200), 1..60)
    ) {
        let mut page = Page::new();
        let mut model: std::collections::HashMap<u16, Vec<u8>> = Default::default();
        let mut slots: Vec<u16> = Vec::new();
        for (i, (op, len)) in ops.into_iter().enumerate() {
            let value = vec![(i % 251) as u8; len];
            match op {
                0 => {
                    if let Some(slot) = page.insert(&value) {
                        model.insert(slot, value);
                        slots.push(slot);
                    }
                }
                1 => {
                    if let Some(&slot) = slots.get(i % slots.len().max(1)) {
                        let updated = page.update(slot, &value);
                        if updated {
                            model.insert(slot, value);
                        }
                    }
                }
                _ => {
                    if let Some(&slot) = slots.get(i % slots.len().max(1)) {
                        if page.delete(slot) {
                            model.remove(&slot);
                        }
                    }
                }
            }
            for (&slot, expect) in &model {
                prop_assert_eq!(page.get(slot), Some(&expect[..]));
            }
        }
        prop_assert_eq!(page.live_records(), model.len());
    }
}
