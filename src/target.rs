//! The one factory for replayable experiment targets.
//!
//! Benchmarks and the trace-replay engine drive the same five stacks —
//! the standard subsystem, Trail, a Trail array, and the two file
//! systems over either block stack. [`TargetKind`] names a stack,
//! [`StackBuilder::build_target`] constructs it (formats, boots, mounts,
//! preallocates), and [`BuiltTarget`] is the result: a simulator, the
//! block stack for recorder/tap installation, and a [`TargetDrive`]
//! describing how requests are addressed to it. Keeping construction
//! here means a scenario in `trail-bench` and a replay in `trail-trace`
//! measure *exactly* the same stack.
//!
//! ```
//! use trail::{StackBuilder, TargetKind};
//!
//! let t = StackBuilder::new()
//!     .data_disks(2)
//!     .build_target(TargetKind::Trail)?;
//! assert_eq!(t.stack.devices(), 2);
//! # Ok::<(), trail::TargetError>(())
//! ```

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

use trail_core::{TrailConfig, TrailError};
use trail_db::BlockStack;
use trail_fs::{FileHandle, FileSystem, FsError, LfsConfig, FS_BLOCK_SIZE};
use trail_sim::{Delivered, Simulator};

use crate::scenario::{BuiltStack, StackBuilder};

/// Which stack a workload is driven against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetKind {
    /// The standard disk subsystem: per-disk C-LOOK drivers, no log.
    Standard,
    /// The Trail driver over one log disk (the paper's subsystem).
    Trail,
    /// A Trail array over several log disks (paper §6).
    TrailMulti {
        /// Number of log disks (at least 1).
        logs: usize,
    },
    /// An ext2-like file system per device.
    Ext2 {
        /// Mount over Trail (`true`) or the standard stack.
        trail: bool,
    },
    /// A log-structured file system per device.
    Lfs {
        /// Mount over Trail (`true`) or the standard stack.
        trail: bool,
    },
    /// A RAID volume per device (`trail-volume`), driven directly or
    /// fronted by Trail. Trail-fronted RAID-5 is the headline
    /// composition: the log absorbs synchronous small writes at track
    /// speed while the parity read-modify-write cost moves into
    /// background write-backs.
    Raid {
        /// The array layout.
        layout: trail_volume::VolumeLayout,
        /// Member disks per volume.
        members: usize,
        /// Front the volumes with Trail (`true`) or drive them directly.
        trail: bool,
    },
    /// Per-stream RAID: a Trail array (`logs` log disks) routed by
    /// [`trail_core::LogRouting::StreamAffinity`], each instance owning
    /// its **own** volume set — every stream's data lands on its own
    /// member disks.
    RaidPerStream {
        /// The array layout (per instance).
        layout: trail_volume::VolumeLayout,
        /// Member disks per volume.
        members: usize,
        /// Log disks / Trail instances (at least 1).
        logs: usize,
    },
}

impl TargetKind {
    /// A short stable label (`"standard"`, `"trail"`, `"trail_multi2"`,
    /// `"ext2"`, `"ext2_trail"`, …) for reports and file names.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            TargetKind::Standard => "standard".to_string(),
            TargetKind::Trail => "trail".to_string(),
            TargetKind::TrailMulti { logs } => format!("trail_multi{logs}"),
            TargetKind::Ext2 { trail: false } => "ext2".to_string(),
            TargetKind::Ext2 { trail: true } => "ext2_trail".to_string(),
            TargetKind::Lfs { trail: false } => "lfs".to_string(),
            TargetKind::Lfs { trail: true } => "lfs_trail".to_string(),
            TargetKind::Raid {
                layout,
                members,
                trail,
            } => {
                let front = if *trail { "_trail" } else { "" };
                format!("{}x{members}{front}", layout.label())
            }
            TargetKind::RaidPerStream {
                layout,
                members,
                logs,
            } => format!("{}x{members}_ps{logs}", layout.label()),
        }
    }
}

/// Why a target could not be built.
#[derive(Debug)]
pub enum TargetError {
    /// Building the block stack failed.
    Build(TrailError),
    /// Mounting or preparing a file-system target failed.
    Fs(FsError),
    /// Preallocating the workload file did not complete.
    Prealloc(String),
}

impl fmt::Display for TargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetError::Build(e) => write!(f, "building the target stack failed: {e:?}"),
            TargetError::Fs(e) => write!(f, "preparing the file-system target failed: {e:?}"),
            TargetError::Prealloc(why) => {
                write!(f, "preallocating the workload file failed: {why}")
            }
        }
    }
}

impl std::error::Error for TargetError {}

/// How a built target is addressed.
pub enum TargetDrive {
    /// Submit straight to the block stack; `capacity[dev]` is the
    /// device's total sectors (so an admissible starting LBA is
    /// `lba % (capacity - sectors + 1)`).
    Block {
        /// Per-device capacity in sectors, in device order.
        capacity: Vec<u64>,
    },
    /// Submit through one mounted file system (and preallocated file)
    /// per device.
    Fs {
        /// `(file system, workload file)` per device, in device order.
        mounts: Vec<(Rc<dyn FileSystem>, FileHandle)>,
        /// Size of each preallocated file, in file-system blocks.
        file_blocks: u64,
    },
}

/// A ready-to-drive target produced by [`StackBuilder::build_target`].
pub struct BuiltTarget {
    /// The simulator (virtual time, already past format/boot/mount).
    pub sim: Simulator,
    /// The block stack underneath — for recorder/tap installation and
    /// block-addressed submission.
    pub stack: Rc<dyn BlockStack>,
    /// How to address requests to this target.
    pub drive: TargetDrive,
    /// The RAID volumes, for [`TargetKind::Raid`] and
    /// [`TargetKind::RaidPerStream`] targets (device order,
    /// instance-major for per-stream; see
    /// [`BuiltStack::volumes`](crate::BuiltStack::volumes)). Exposes
    /// member failure injection and per-member statistics. Empty for
    /// every other kind.
    pub volumes: Vec<trail_volume::RaidVolume>,
    /// The fault clock the scenario's plan was armed on (see
    /// [`BuiltStack::fault_clock`](crate::BuiltStack::fault_clock)).
    pub fault_clock: trail_sim::FaultClock,
}

impl StackBuilder {
    /// Sets the size, in 4-KB blocks, of the per-device file that
    /// file-system targets drive requests into (default 1024, raised to
    /// at least 64).
    #[must_use]
    pub fn fs_file_blocks(mut self, blocks: u32) -> Self {
        self.fs_file_blocks = Some(blocks);
        self
    }

    /// Builds the stack `kind` names, ready to drive: disks formatted,
    /// drivers booted, file systems mounted and their workload files
    /// preallocated, disk statistics reset. The builder's disk profiles,
    /// scheduler, and seed apply; its log-device selection is overridden
    /// by `kind`.
    ///
    /// # Errors
    ///
    /// [`TargetError`] when formatting, boot, mounting, or
    /// preallocation fails.
    pub fn build_target(self, kind: TargetKind) -> Result<BuiltTarget, TargetError> {
        let file_blocks = self.fs_file_blocks.unwrap_or(1024).max(64);
        let builder = match kind {
            TargetKind::Standard
            | TargetKind::Ext2 { trail: false }
            | TargetKind::Lfs { trail: false } => self.standard(),
            TargetKind::Trail
            | TargetKind::Ext2 { trail: true }
            | TargetKind::Lfs { trail: true } => self.trail_default(),
            TargetKind::TrailMulti { logs } => self.trail_multi(logs, TrailConfig::default()),
            TargetKind::Raid {
                layout,
                members,
                trail,
            } => {
                let b = if trail {
                    self.trail_default()
                } else {
                    self.standard()
                };
                b.volumes(layout, members)
            }
            TargetKind::RaidPerStream {
                layout,
                members,
                logs,
            } => self
                .trail_multi(logs, TrailConfig::default())
                .volumes(layout, members)
                .per_instance_volumes(),
        };
        let mut built = builder.build().map_err(TargetError::Build)?;
        if let TargetKind::RaidPerStream { .. } = kind {
            built
                .multi
                .as_ref()
                .expect("per-stream RAID builds a Trail array")
                .set_routing(trail_core::LogRouting::StreamAffinity);
        }
        match kind {
            TargetKind::Standard
            | TargetKind::Trail
            | TargetKind::TrailMulti { .. }
            | TargetKind::Raid { .. }
            | TargetKind::RaidPerStream { .. } => {
                let capacity = if built.volumes.is_empty() {
                    built
                        .data_disks
                        .iter()
                        .map(|d| d.geometry().total_sectors())
                        .collect()
                } else {
                    // Per-instance sets are identical in shape; the first
                    // `devices` volumes describe the logical address space.
                    built.volumes[..built.stack.devices()]
                        .iter()
                        .map(trail_volume::RaidVolume::capacity_sectors)
                        .collect()
                };
                let BuiltStack {
                    sim,
                    stack,
                    volumes,
                    fault_clock,
                    ..
                } = built;
                Ok(BuiltTarget {
                    sim,
                    stack,
                    drive: TargetDrive::Block { capacity },
                    volumes,
                    fault_clock,
                })
            }
            TargetKind::Ext2 { .. } | TargetKind::Lfs { .. } => {
                let ndisks = built.data_disks.len();
                let mut mounts = Vec::with_capacity(ndisks);
                for dev in 0..ndisks {
                    let fs: Rc<dyn FileSystem> = match kind {
                        TargetKind::Ext2 { .. } => Rc::new(
                            built
                                .extfs(dev, file_blocks + 256)
                                .map_err(TargetError::Fs)?,
                        ),
                        _ => Rc::new(built.lfs(dev, LfsConfig::default())),
                    };
                    let file = fs.create("replay").map_err(TargetError::Fs)?;
                    prealloc(&mut built.sim, &fs, file, file_blocks)?;
                    mounts.push((fs, file));
                }
                let BuiltStack {
                    sim,
                    stack,
                    fault_clock,
                    ..
                } = built;
                Ok(BuiltTarget {
                    sim,
                    stack,
                    drive: TargetDrive::Fs {
                        mounts,
                        file_blocks: u64::from(file_blocks),
                    },
                    volumes: Vec::new(),
                    fault_clock,
                })
            }
        }
    }
}

/// Synchronously writes the whole workload file once so later reads and
/// overwrites land on allocated, on-disk blocks.
fn prealloc(
    sim: &mut Simulator,
    fs: &Rc<dyn FileSystem>,
    file: FileHandle,
    blocks: u32,
) -> Result<(), TargetError> {
    let outcome: Rc<Cell<Option<bool>>> = Rc::new(Cell::new(None));
    let seen = Rc::clone(&outcome);
    let done = sim.completion(move |_, d: Delivered<Result<(), FsError>>| {
        seen.set(Some(matches!(d, Ok(Ok(())))));
    });
    fs.write(
        sim,
        file,
        0,
        vec![0u8; blocks as usize * FS_BLOCK_SIZE],
        true,
        done,
    )
    .map_err(TargetError::Fs)?;
    while outcome.get().is_none() {
        if !sim.step() {
            return Err(TargetError::Prealloc("simulation stalled".to_string()));
        }
    }
    if outcome.get() != Some(true) {
        return Err(TargetError::Prealloc(
            "preallocation write failed".to_string(),
        ));
    }
    while fs.pending_work() > 0 {
        if !sim.step() {
            return Err(TargetError::Prealloc("drain stalled".to_string()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_target_kind_builds() {
        for kind in [
            TargetKind::Standard,
            TargetKind::Trail,
            TargetKind::TrailMulti { logs: 2 },
            TargetKind::Ext2 { trail: false },
            TargetKind::Lfs { trail: true },
        ] {
            let t = StackBuilder::new()
                .data_disks(1)
                .fs_file_blocks(64)
                .build_target(kind)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(t.stack.devices(), 1, "{kind:?}");
            match (&kind, &t.drive) {
                (
                    TargetKind::Standard | TargetKind::Trail | TargetKind::TrailMulti { .. },
                    TargetDrive::Block { capacity },
                ) => assert_eq!(capacity.len(), 1),
                (
                    TargetKind::Ext2 { .. } | TargetKind::Lfs { .. },
                    TargetDrive::Fs {
                        mounts,
                        file_blocks,
                    },
                ) => {
                    assert_eq!(mounts.len(), 1);
                    assert_eq!(*file_blocks, 64);
                }
                _ => panic!("{kind:?} built the wrong drive shape"),
            }
        }
    }

    #[test]
    fn labels_are_stable() {
        use trail_volume::VolumeLayout;
        assert_eq!(TargetKind::Standard.label(), "standard");
        assert_eq!(TargetKind::TrailMulti { logs: 3 }.label(), "trail_multi3");
        assert_eq!(TargetKind::Ext2 { trail: true }.label(), "ext2_trail");
        assert_eq!(TargetKind::Lfs { trail: false }.label(), "lfs");
        assert_eq!(
            TargetKind::Raid {
                layout: VolumeLayout::Raid5 { chunk_sectors: 8 },
                members: 4,
                trail: false,
            }
            .label(),
            "raid5x4"
        );
        assert_eq!(
            TargetKind::Raid {
                layout: VolumeLayout::Raid0 { chunk_sectors: 8 },
                members: 3,
                trail: true,
            }
            .label(),
            "raid0x3_trail"
        );
        assert_eq!(
            TargetKind::RaidPerStream {
                layout: VolumeLayout::Raid5 { chunk_sectors: 8 },
                members: 3,
                logs: 2,
            }
            .label(),
            "raid5x3_ps2"
        );
    }

    #[test]
    fn raid_targets_build_and_expose_volumes() {
        use trail_disk::profiles;
        use trail_volume::VolumeLayout;
        let layout = VolumeLayout::Raid5 { chunk_sectors: 8 };
        for (kind, want_volumes) in [
            (
                TargetKind::Raid {
                    layout,
                    members: 3,
                    trail: false,
                },
                1,
            ),
            (
                TargetKind::Raid {
                    layout,
                    members: 3,
                    trail: true,
                },
                1,
            ),
            (
                TargetKind::RaidPerStream {
                    layout,
                    members: 3,
                    logs: 2,
                },
                2,
            ),
        ] {
            let t = StackBuilder::new()
                .data_disks(1)
                .data_profile(profiles::tiny_test_disk())
                .log_profile(profiles::tiny_test_disk())
                .build_target(kind)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(t.volumes.len(), want_volumes, "{kind:?}");
            let TargetDrive::Block { capacity } = &t.drive else {
                panic!("{kind:?} should be block-addressed");
            };
            assert_eq!(capacity[0], t.volumes[0].capacity_sectors(), "{kind:?}");
        }
    }
}
