//! One construction path for every experiment stack.
//!
//! Every harness used to assemble its simulator, disks, drivers, file
//! system, and database by hand, each with slightly different boilerplate.
//! A [`Scenario`] is the declarative description of a stack — disk
//! profiles, scheduler policy, Trail-vs-standard log device, seed — and
//! [`StackBuilder`] is the fluent way to put one together. [`build`]
//! yields a [`BuiltStack`] whose disks have clean statistics (format and
//! boot noise is reset), ready for measurement; file systems and a
//! database engine mount on top with one call each.
//!
//! [`build`]: StackBuilder::build
//!
//! ```
//! use trail::{Scenario, StackBuilder};
//!
//! // The paper's testbed: one SCSI log disk over three IDE data disks.
//! let mut built = StackBuilder::new().data_disks(3).trail_default().build()?;
//! assert!(built.trail.is_some());
//!
//! // The baseline for the same experiment: no log disk, C-LOOK driver.
//! let base = StackBuilder::new().data_disks(3).standard().build()?;
//! assert!(base.trail.is_none());
//! # Ok::<(), trail::core::TrailError>(())
//! ```

use std::rc::Rc;

use trail_blockio::{Clook, Fifo, Priority, Scheduler, SharedBlockDevice, StandardDriver};
use trail_core::{
    format_log_disk, FormatOptions, MultiTrail, TrailConfig, TrailDriver, TrailError,
};
use trail_db::{
    BlockStack, Database, DbConfig, MultiTrailStack, StandardStack, TrailStack, VolumeStack,
};
use trail_disk::profiles::{self, DriveProfile};
use trail_disk::{Disk, DiskRole};
use trail_fs::{ExtFs, FsError, Lfs, LfsConfig};
use trail_sim::{FaultClock, FaultPlan, Simulator};
use trail_volume::{RaidVolume, VolumeLayout};

/// Which log device fronts the data disks.
#[derive(Clone, Debug)]
pub enum LogDevice {
    /// Trail: a dedicated log disk absorbs synchronous writes (the
    /// paper's subsystem).
    Trail {
        /// Driver configuration (threshold, batching, δ policy…).
        config: TrailConfig,
    },
    /// A Trail array (paper §6): one Trail instance per log disk, routed
    /// by [`trail_core::LogRouting`], sharing the data disks.
    TrailMulti {
        /// Number of log disks (raised to at least 1).
        logs: usize,
        /// Driver configuration shared by every instance.
        config: TrailConfig,
    },
    /// The standard disk subsystem: writes pay full seek + rotation at
    /// their target addresses.
    Standard,
}

/// Which request scheduler the per-disk drivers run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedulerKind {
    /// First-in, first-out.
    Fifo,
    /// C-LOOK elevator (Linux-of-the-era default).
    Clook,
}

impl SchedulerKind {
    fn instantiate(self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Fifo => Box::new(Fifo::default()),
            SchedulerKind::Clook => Box::new(Clook::default()),
        }
    }
}

/// A RAID volume layer under the stack: each logical device becomes a
/// `trail-volume` array over its own set of member disks instead of one
/// raw disk.
#[derive(Clone, Copy, Debug)]
pub struct VolumeSpec {
    /// The array layout (linear, RAID-0/1/5).
    pub layout: VolumeLayout,
    /// Member disks per volume (must satisfy the layout's minimum).
    pub members: usize,
    /// With [`LogDevice::TrailMulti`]: give every Trail instance its
    /// **own** volume set instead of sharing one, so each routed stream's
    /// data lands on its own member disks (per-stream target devices).
    /// Coherent because routing is deterministic: a block — or, under
    /// stream affinity, a stream — always reaches the same instance and
    /// therefore the same array.
    pub per_instance: bool,
}

/// A declarative description of an experiment stack.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Base RNG seed for whatever workload runs on the stack. The stack
    /// itself is deterministic; this is carried along so a scenario fully
    /// names an experiment.
    pub seed: u64,
    /// Number of data disks.
    pub data_disks: usize,
    /// The data-disk model.
    pub data_profile: DriveProfile,
    /// The log-disk model (used only with [`LogDevice::Trail`]).
    pub log_profile: DriveProfile,
    /// Request scheduling on the standard per-disk drivers.
    pub scheduler: SchedulerKind,
    /// Read-vs-write priority on the standard per-disk drivers.
    pub priority: Priority,
    /// Trail or the baseline.
    pub log_device: LogDevice,
    /// When set, each device is a RAID volume over `members` disks of
    /// [`data_profile`](Scenario::data_profile) instead of one raw disk.
    pub volume: Option<VolumeSpec>,
    /// The fault schedule armed on the built stack. Offsets are relative
    /// to the end of [`build`](Scenario::build) (post-format, post-boot,
    /// stats reset) — the instant measurements start.
    pub faults: FaultPlan,
}

impl Default for Scenario {
    /// The paper's testbed: three WD-Caviar-class IDE data disks behind a
    /// Trail driver on an ST41601N-class SCSI log disk.
    fn default() -> Self {
        Scenario {
            seed: 0,
            data_disks: 3,
            data_profile: profiles::wd_caviar_10gb(),
            log_profile: profiles::seagate_st41601n(),
            scheduler: SchedulerKind::Clook,
            priority: Priority::None,
            log_device: LogDevice::Trail {
                config: TrailConfig::default(),
            },
            volume: None,
            faults: FaultPlan::new(),
        }
    }
}

impl Scenario {
    /// Builds the stack this scenario describes.
    ///
    /// # Errors
    ///
    /// Propagates log-disk format or Trail boot failures.
    pub fn build(&self) -> Result<BuiltStack, TrailError> {
        if let Some(spec) = self.volume {
            return self.build_with_volumes(spec);
        }
        let mut sim = Simulator::new();
        let data_disks: Vec<Disk> = (0..self.data_disks)
            .map(|i| Disk::new(format!("data{i}"), self.data_profile.clone()))
            .collect();
        let (stack, trail, multi, log_disks): (Rc<dyn BlockStack>, _, _, Vec<Disk>) = match &self
            .log_device
        {
            LogDevice::Trail { config } => {
                let log = Disk::new("trail-log", self.log_profile.clone());
                format_log_disk(&mut sim, &log, FormatOptions::default())?;
                let (drv, _) =
                    TrailDriver::start(&mut sim, log.clone(), data_disks.clone(), *config)?;
                (
                    Rc::new(TrailStack::new(drv.clone(), self.data_disks)),
                    Some(drv),
                    None,
                    vec![log],
                )
            }
            LogDevice::TrailMulti { logs, config } => {
                let logs_disks: Vec<Disk> = (0..(*logs).max(1))
                    .map(|i| Disk::new(format!("log{i}"), self.log_profile.clone()))
                    .collect();
                for log in &logs_disks {
                    format_log_disk(&mut sim, log, FormatOptions::default())?;
                }
                let (array, _) =
                    MultiTrail::start(&mut sim, logs_disks.clone(), data_disks.clone(), *config)?;
                (
                    Rc::new(MultiTrailStack::new(array.clone(), self.data_disks)),
                    None,
                    Some(array),
                    logs_disks,
                )
            }
            LogDevice::Standard => (
                Rc::new(StandardStack::with_policy(
                    data_disks.clone(),
                    || self.scheduler.instantiate(),
                    self.priority,
                )),
                None,
                None,
                Vec::new(),
            ),
        };
        // Formatting runs the δ-calibration sweep, whose under-compensated
        // probes pay full rotations by design; start measurements clean.
        for log in &log_disks {
            log.reset_stats();
        }
        for d in &data_disks {
            d.reset_stats();
        }
        let log_disk = match &self.log_device {
            LogDevice::Trail { .. } => log_disks.first().cloned(),
            _ => None,
        };
        let fault_clock = self.arm_faults(&mut sim, &data_disks, &log_disks, &[]);
        Ok(BuiltStack {
            seed: self.seed,
            sim,
            data_disks,
            log_disk,
            log_disks,
            trail,
            multi,
            volumes: Vec::new(),
            stack,
            fault_clock,
        })
    }

    /// Registers every device on a fresh [`FaultClock`] and arms the
    /// scenario's [`faults`](Scenario::faults) plan. This runs at the very
    /// end of [`build`](Scenario::build), after boot noise is reset, so
    /// fault offsets are relative to the instant measurements start.
    fn arm_faults(
        &self,
        sim: &mut Simulator,
        data_disks: &[Disk],
        log_disks: &[Disk],
        volumes: &[RaidVolume],
    ) -> FaultClock {
        let clock = FaultClock::new();
        for (i, d) in data_disks.iter().enumerate() {
            clock.register(d.fault_sink(DiskRole::Data(i)));
        }
        for (i, d) in log_disks.iter().enumerate() {
            clock.register(d.fault_sink(DiskRole::Log(i)));
        }
        for (i, v) in volumes.iter().enumerate() {
            clock.register(v.fault_sink(i));
        }
        clock.arm(sim, &self.faults);
        clock
    }

    /// Builds the volume-layer variant: each device is a
    /// [`RaidVolume`] over `spec.members` fresh member disks.
    fn build_with_volumes(&self, spec: VolumeSpec) -> Result<BuiltStack, TrailError> {
        let mut sim = Simulator::new();
        let mut data_disks: Vec<Disk> = Vec::new();
        // One volume per logical device; `tag` distinguishes per-instance
        // sets under a Trail array.
        let make_set = |tag: &str, data_disks: &mut Vec<Disk>| -> Vec<RaidVolume> {
            (0..self.data_disks)
                .map(|dev| {
                    let members: Vec<StandardDriver> = (0..spec.members)
                        .map(|m| {
                            let d =
                                Disk::new(format!("data{dev}{tag}m{m}"), self.data_profile.clone());
                            data_disks.push(d.clone());
                            StandardDriver::with_policy(
                                d,
                                self.scheduler.instantiate(),
                                self.priority,
                            )
                        })
                        .collect();
                    RaidVolume::new(&format!("vol{dev}{tag}"), spec.layout, members)
                })
                .collect()
        };
        let shared = |vols: &[RaidVolume]| -> Vec<SharedBlockDevice> {
            vols.iter()
                .map(|v| Rc::new(v.clone()) as SharedBlockDevice)
                .collect()
        };
        let (stack, trail, multi, volumes, log_disks): (
            Rc<dyn BlockStack>,
            _,
            _,
            Vec<RaidVolume>,
            Vec<Disk>,
        ) = match &self.log_device {
            LogDevice::Trail { config } => {
                let volumes = make_set("", &mut data_disks);
                let log = Disk::new("trail-log", self.log_profile.clone());
                format_log_disk(&mut sim, &log, FormatOptions::default())?;
                let (drv, _) = TrailDriver::start_with_targets(
                    &mut sim,
                    log.clone(),
                    shared(&volumes),
                    *config,
                )?;
                (
                    Rc::new(TrailStack::new(drv.clone(), self.data_disks)),
                    Some(drv),
                    None,
                    volumes,
                    vec![log],
                )
            }
            LogDevice::TrailMulti { logs, config } => {
                let logs = (*logs).max(1);
                let logs_disks: Vec<Disk> = (0..logs)
                    .map(|i| Disk::new(format!("log{i}"), self.log_profile.clone()))
                    .collect();
                for log in &logs_disks {
                    format_log_disk(&mut sim, log, FormatOptions::default())?;
                }
                let (volumes, targets): (Vec<RaidVolume>, Vec<Vec<SharedBlockDevice>>) =
                    if spec.per_instance {
                        // Instance-major: volumes[i * devices + dev] is
                        // instance i's array for device dev.
                        let mut volumes = Vec::new();
                        let mut targets = Vec::new();
                        for i in 0..logs {
                            let set = make_set(&format!("i{i}"), &mut data_disks);
                            targets.push(shared(&set));
                            volumes.extend(set);
                        }
                        (volumes, targets)
                    } else {
                        let volumes = make_set("", &mut data_disks);
                        let targets = (0..logs).map(|_| shared(&volumes)).collect();
                        (volumes, targets)
                    };
                let (array, _) =
                    MultiTrail::start_with_targets(&mut sim, logs_disks.clone(), targets, *config)?;
                (
                    Rc::new(MultiTrailStack::new(array.clone(), self.data_disks)),
                    None,
                    Some(array),
                    volumes,
                    logs_disks,
                )
            }
            LogDevice::Standard => {
                let volumes = make_set("", &mut data_disks);
                (
                    Rc::new(VolumeStack::new(shared(&volumes))),
                    None,
                    None,
                    volumes,
                    Vec::new(),
                )
            }
        };
        for log in &log_disks {
            log.reset_stats();
        }
        for d in &data_disks {
            d.reset_stats();
        }
        let log_disk = match &self.log_device {
            LogDevice::Trail { .. } => log_disks.first().cloned(),
            _ => None,
        };
        let fault_clock = self.arm_faults(&mut sim, &data_disks, &log_disks, &volumes);
        Ok(BuiltStack {
            seed: self.seed,
            sim,
            data_disks,
            log_disk,
            log_disks,
            trail,
            multi,
            volumes,
            stack,
            fault_clock,
        })
    }
}

/// Fluent construction of a [`Scenario`].
#[derive(Clone, Debug, Default)]
pub struct StackBuilder {
    scenario: Scenario,
    /// File size for file-system targets; see
    /// [`fs_file_blocks`](StackBuilder::fs_file_blocks) in `target.rs`.
    pub(crate) fs_file_blocks: Option<u32>,
}

impl StackBuilder {
    /// Starts from the paper's default testbed (see [`Scenario::default`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the workload seed carried by the scenario.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Sets the number of data disks.
    #[must_use]
    pub fn data_disks(mut self, n: usize) -> Self {
        self.scenario.data_disks = n;
        self
    }

    /// Sets the data-disk model.
    #[must_use]
    pub fn data_profile(mut self, profile: DriveProfile) -> Self {
        self.scenario.data_profile = profile;
        self
    }

    /// Sets the log-disk model.
    #[must_use]
    pub fn log_profile(mut self, profile: DriveProfile) -> Self {
        self.scenario.log_profile = profile;
        self
    }

    /// Sets the per-disk scheduler for the standard stack.
    #[must_use]
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scenario.scheduler = kind;
        self
    }

    /// Sets read-vs-write priority for the standard stack.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.scenario.priority = priority;
        self
    }

    /// Fronts the data disks with a Trail log device.
    #[must_use]
    pub fn trail(mut self, config: TrailConfig) -> Self {
        self.scenario.log_device = LogDevice::Trail { config };
        self
    }

    /// Fronts the data disks with a default-configured Trail log device.
    #[must_use]
    pub fn trail_default(self) -> Self {
        self.trail(TrailConfig::default())
    }

    /// Fronts the data disks with a Trail array of `logs` log disks
    /// (raised to at least 1).
    #[must_use]
    pub fn trail_multi(mut self, logs: usize, config: TrailConfig) -> Self {
        self.scenario.log_device = LogDevice::TrailMulti { logs, config };
        self
    }

    /// Uses the standard disk subsystem (no log device).
    #[must_use]
    pub fn standard(mut self) -> Self {
        self.scenario.log_device = LogDevice::Standard;
        self
    }

    /// Backs every device with a RAID volume of `members` member disks
    /// instead of one raw disk (see [`VolumeSpec`]).
    #[must_use]
    pub fn volumes(mut self, layout: VolumeLayout, members: usize) -> Self {
        self.scenario.volume = Some(VolumeSpec {
            layout,
            members,
            per_instance: false,
        });
        self
    }

    /// With [`trail_multi`](StackBuilder::trail_multi) volumes: each Trail
    /// instance gets its own volume set (per-stream target devices).
    ///
    /// # Panics
    ///
    /// Panics if called before [`volumes`](StackBuilder::volumes).
    #[must_use]
    pub fn per_instance_volumes(mut self) -> Self {
        self.scenario
            .volume
            .as_mut()
            .expect("per_instance_volumes requires volumes(..) first")
            .per_instance = true;
        self
    }

    /// Arms a fault schedule on the built stack (see [`Scenario::faults`]).
    /// Offsets are relative to the end of `build`.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.scenario.faults = plan;
        self
    }

    /// The scenario described so far.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Builds the stack.
    ///
    /// # Errors
    ///
    /// Propagates log-disk format or Trail boot failures.
    pub fn build(self) -> Result<BuiltStack, TrailError> {
        self.scenario.build()
    }
}

/// A running stack produced by [`StackBuilder::build`].
pub struct BuiltStack {
    /// The scenario's workload seed, carried through for the harness.
    pub seed: u64,
    /// The simulator (virtual time).
    pub sim: Simulator,
    /// The data disks, in device order.
    pub data_disks: Vec<Disk>,
    /// The Trail log disk, when the scenario runs on a single-log Trail.
    pub log_disk: Option<Disk>,
    /// All log disks, in instance order (one for [`LogDevice::Trail`],
    /// several for [`LogDevice::TrailMulti`], none for
    /// [`LogDevice::Standard`]).
    pub log_disks: Vec<Disk>,
    /// The Trail driver, when the scenario runs on a single-log Trail.
    pub trail: Option<TrailDriver>,
    /// The Trail array, when the scenario runs on
    /// [`LogDevice::TrailMulti`].
    pub multi: Option<MultiTrail>,
    /// The RAID volumes, when the scenario has a [`VolumeSpec`] — in
    /// device order; with per-instance volumes, instance-major
    /// (`volumes[i * devices + dev]`). Empty otherwise. Their member
    /// disks are [`data_disks`](BuiltStack::data_disks).
    pub volumes: Vec<RaidVolume>,
    /// The block stack (Trail, Trail array, or standard) the upper layers
    /// submit to.
    pub stack: Rc<dyn BlockStack>,
    /// The fault clock the scenario's [`FaultPlan`] was armed on, with
    /// every disk and volume registered. Harnesses may register extra
    /// sinks (e.g. a crash-campaign flag) before the faults fire, and can
    /// inspect [`fired`](FaultClock::fired) /
    /// [`unhandled`](FaultClock::unhandled) afterwards.
    pub fault_clock: FaultClock,
}

impl BuiltStack {
    /// Installs a workload-capture tap on the stack (see
    /// [`trail_blockio::SubmitTap`]): every request submitted through
    /// [`BuiltStack::stack`] — directly, through a mounted file system, or
    /// through the database engine — is reported to the tap at its arrival
    /// instant, which is how `trail-trace` records a scenario's workload.
    pub fn set_tap(&self, tap: trail_blockio::TapHandle) {
        self.stack.set_tap(tap);
    }

    /// Formats an ext2-like file system on device `dev` and mounts it.
    ///
    /// # Errors
    ///
    /// Propagates format failures ([`FsError`]).
    pub fn extfs(&mut self, dev: usize, capacity_blocks: u32) -> Result<ExtFs, FsError> {
        ExtFs::format(&mut self.sim, Rc::clone(&self.stack), dev, capacity_blocks)
    }

    /// Mounts a log-structured file system on device `dev`.
    #[must_use]
    pub fn lfs(&self, dev: usize, config: LfsConfig) -> Lfs {
        Lfs::new(Rc::clone(&self.stack), dev, config)
    }

    /// Opens a transactional engine over the stack.
    #[must_use]
    pub fn database(&self, config: DbConfig) -> Database {
        Database::new(Rc::clone(&self.stack), config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trail_fs::FileSystem;

    #[test]
    fn default_scenario_builds_trail() {
        let built = StackBuilder::new().build().expect("build");
        assert!(built.trail.is_some());
        assert!(built.log_disk.is_some());
        assert_eq!(built.data_disks.len(), 3);
        // Boot noise is reset: measurements start clean.
        assert_eq!(built.log_disk.unwrap().with_stats(|s| s.writes), 0);
    }

    #[test]
    fn standard_scenario_has_no_log_device() {
        let built = StackBuilder::new()
            .standard()
            .scheduler(SchedulerKind::Fifo)
            .data_disks(1)
            .seed(7)
            .build()
            .expect("build");
        assert!(built.trail.is_none());
        assert_eq!(built.seed, 7);
    }

    #[test]
    fn armed_fault_plan_cuts_the_whole_stack() {
        use trail_sim::SimDuration;
        let mut built = StackBuilder::new()
            .data_disks(2)
            .data_profile(profiles::tiny_test_disk())
            .log_profile(profiles::tiny_test_disk())
            .faults(FaultPlan::power_cut_at(SimDuration::from_millis(5)))
            .build()
            .expect("build");
        assert_eq!(built.fault_clock.armed(), 1);
        built.sim.run();
        assert_eq!(built.fault_clock.fired(), 1);
        assert_eq!(built.fault_clock.unhandled(), 0);
        assert!(built.data_disks.iter().all(|d| !d.is_powered()));
        assert!(!built.log_disk.as_ref().unwrap().is_powered());
    }

    #[test]
    fn member_fault_degrades_the_volume() {
        use trail_sim::SimDuration;
        let mut built = StackBuilder::new()
            .standard()
            .data_disks(1)
            .data_profile(profiles::tiny_test_disk())
            .volumes(
                VolumeLayout::Raid1 {
                    read_policy: trail_volume::ReadPolicy::RoundRobin,
                },
                2,
            )
            .faults(FaultPlan::member_fail(0, 1, SimDuration::from_millis(2)))
            .build()
            .expect("build");
        built.sim.run();
        assert_eq!(built.fault_clock.unhandled(), 0);
        assert_eq!(built.volumes[0].failed_members(), vec![1]);
    }

    #[test]
    fn filesystems_and_database_mount_on_a_built_stack() {
        let mut built = StackBuilder::new()
            .standard()
            .data_disks(1)
            .build()
            .unwrap();
        let fs = built.extfs(0, 10_000).expect("format extfs");
        let _ = fs.create("x").expect("create");
        let lfs = built.lfs(0, LfsConfig::default());
        let _ = lfs.create("y").expect("create");
    }
}
