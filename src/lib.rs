//! # Trail: track-based disk logging
//!
//! A complete, from-scratch reproduction of Chiueh & Huang, *Track-Based
//! Disk Logging* (DSN 2002) — the **Trail** low-write-latency disk
//! subsystem — together with every substrate it needs: a mechanical-disk
//! simulator, a block I/O layer, disk-timing calibration probes, a
//! Berkeley-DB-like transactional engine, and the TPC-C workload the paper
//! evaluates with.
//!
//! This umbrella crate re-exports the workspace's public APIs under one
//! roof. The layers, bottom to top:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `trail-sim` | deterministic discrete-event simulator, virtual time, measurement collectors |
//! | [`disk`] | `trail-disk` | zoned-geometry rotating-disk model with power-failure injection |
//! | [`blockio`] | `trail-blockio` | request queues, C-LOOK/FIFO schedulers, the baseline driver |
//! | [`probe`] | `trail-probe` | rotation/skew/δ calibration (paper §3.1) |
//! | [`core`] | `trail-core` | **the Trail driver**: head prediction, self-describing log, batching, recovery |
//! | [`db`] | `trail-db` | WAL + group commit + page cache transactional engine |
//! | [`tpcc`] | `trail-tpcc` | the TPC-C workload and closed-loop terminals |
//!
//! # Quickstart
//!
//! ```
//! use trail::prelude::*;
//!
//! // A simulated machine: one SCSI log disk, one IDE data disk.
//! let mut sim = Simulator::new();
//! let log = Disk::new("log", profiles::seagate_st41601n());
//! let data = Disk::new("data", profiles::wd_caviar_10gb());
//!
//! // Format (probes rotation period and calibrates delta), then boot.
//! format_log_disk(&mut sim, &log, FormatOptions::default())?;
//! let (trail, _) = TrailDriver::start(&mut sim, log, vec![data], TrailConfig::default())?;
//!
//! // Synchronous writes are durable in ~1.5 ms instead of ~16 ms. The
//! // completion token is delivered once (or cancelled on teardown).
//! let done = sim.completion(|_, done: Delivered<IoDone>| {
//!     println!("durable after {}", done.expect("delivered").latency());
//! });
//! trail.write(&mut sim, 0, 4096, vec![42; 1024], done)?;
//! trail.run_until_quiescent(&mut sim);
//! trail.shutdown(&mut sim)?;
//! # Ok::<(), trail::core::TrailError>(())
//! ```
//!
//! Or let a [`Scenario`] build the whole testbed in one line:
//!
//! ```
//! use trail::StackBuilder;
//! let built = StackBuilder::new().data_disks(3).trail_default().build()?;
//! assert!(built.trail.is_some());
//! # Ok::<(), trail::core::TrailError>(())
//! ```
//!
//! # Reproducing the paper
//!
//! Every table and figure has a harness binary in `trail-bench`; run the
//! whole suite in parallel with
//! `cargo run --release -p trail-bench --bin run_all`, or one experiment
//! with `cargo run --release -p trail-bench --bin table2`. See
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use trail_blockio as blockio;
pub use trail_core as core;
pub use trail_db as db;
pub use trail_disk as disk;
pub use trail_fs as fs;
pub use trail_probe as probe;
pub use trail_sim as sim;
pub use trail_tpcc as tpcc;
pub use trail_volume as volume;

mod scenario;
mod target;
pub use scenario::{BuiltStack, LogDevice, Scenario, SchedulerKind, StackBuilder, VolumeSpec};
pub use target::{BuiltTarget, TargetDrive, TargetError, TargetKind};

/// The names most programs need, in one import.
pub mod prelude {
    pub use crate::scenario::{
        BuiltStack, LogDevice, Scenario, SchedulerKind, StackBuilder, VolumeSpec,
    };
    pub use crate::target::{BuiltTarget, TargetDrive, TargetError, TargetKind};
    pub use trail_blockio::{
        IoDone, IoKind, IoRequest, StandardDriver, StreamId, SubmitTap, TapHandle,
    };
    pub use trail_core::{
        format_log_disk, read_header, recover, FormatOptions, RecoveryOptions, TrailConfig,
        TrailDriver, TrailError,
    };
    pub use trail_disk::{profiles, Disk, DiskCommand, DiskRole, SECTOR_SIZE};
    pub use trail_sim::{
        Completion, Delivered, Fault, FaultClock, FaultKind, FaultPlan, FaultSink, FaultTarget,
        SimDuration, SimTime, Simulator,
    };
    pub use trail_volume::{RaidVolume, ReadPolicy, VolumeLayout};
}
